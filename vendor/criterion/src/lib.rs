//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the workspace benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `Bencher::iter` — with a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark is warmed up once, then timed over a capped number of
//! iterations, and the mean time per iteration is printed.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
    /// Smoke mode (`cargo bench -- --test`): run each benchmark body once,
    /// skip the timed measurement. Mirrors upstream criterion's `--test`.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmarking group `{name}`");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            measurement_time: self.measurement_time,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            max_iterations: self.sample_size as u64,
            // Smoke mode keeps the warm-up call (one real execution) and
            // skips the timed loop entirely.
            budget: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement_time
            },
        };
        f(&mut bencher);
        if self.test_mode {
            println!("  {}/{id}: smoke ok", self.name);
            return self;
        }
        let per_iter = if bencher.iterations > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        } else {
            f64::NAN
        };
        println!(
            "  {}/{id}: {:.1} ns/iter ({} iterations)",
            self.name, per_iter, bencher.iterations
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    max_iterations: u64,
    budget: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        let mut iterations = 0u64;
        while iterations < self.max_iterations && start.elapsed() < self.budget {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations;
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
