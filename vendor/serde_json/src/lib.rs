//! Offline stand-in for `serde_json`, backed by the vendored `serde` value
//! tree. Supports the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Value`].
//!
//! Mirrors serde_json behaviour where it matters:
//! * `NaN` serializes as `null`,
//! * object key order is preserved,
//! * parsing accepts arbitrary whitespace and the full JSON escape set.
//!
//! One deliberate extension over upstream: infinities serialize as
//! `1e999`/`-1e999` (valid JSON number syntax that saturates back to the
//! right infinity in any IEEE-754 parser) instead of `null`, so values like
//! "relative error before the first failure" survive the checkpoint round
//! trip of `gis_core::sweep` bit for bit.

pub use serde::Value;

/// JSON serialization/parsing error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a value of type `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Parses a JSON string into a value of type `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("null");
    } else if x.is_infinite() {
        // JSON has no infinity literal; `1e999` is valid number *syntax* that
        // every IEEE-754 parser (including this one) saturates back to the
        // infinity of the right sign, so the value survives a round trip.
        // (NaN stays `null` — there is no number-syntax spelling for it — and
        // deserializes back to NaN, matching upstream serde_json readers.)
        out.push_str(if x > 0.0 { "1e999" } else { "-1e999" });
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep the float-ness visible in the output, as serde_json does.
        out.push_str(&format!("{x:.1}"));
    } else {
        let abs = x.abs();
        if abs >= 1e-5 && abs < 1e16 {
            out.push_str(&format!("{x}"));
        } else {
            out.push_str(&format!("{x:e}"));
        }
    }
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{literal}` at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("invalid surrogate".to_string()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("invalid codepoint".to_string()))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error("expected `,` or `]`".to_string())),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error("expected `,` or `}`".to_string())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("x\n\"y\"".to_string())),
            ("count".to_string(), Value::UInt(42)),
            ("neg".to_string(), Value::Int(-3)),
            ("pi".to_string(), Value::Float(3.5)),
            ("tiny".to_string(), Value::Float(2.9e-7)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "list".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Float(0.25)]),
            ),
        ]);
        let compact = to_string(&value).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn nan_becomes_null_and_infinities_round_trip() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "1e999");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "-1e999");
        let back: f64 = from_str("1e999").unwrap();
        assert_eq!(back, f64::INFINITY);
        let back: f64 = from_str("-1e999").unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
        // NaN cannot be spelled as a JSON number; it round-trips via null.
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for x in [1.0e-300, 123456.789, 2.9e-7, 1e22, -0.1] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "round trip of {x} via {json}");
        }
    }
}
