//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`ProptestConfig::with_cases`], range strategies over numeric types,
//! `prop::collection::vec` and `prop::bool::ANY`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with the
//! generated inputs still bound, and the deterministic per-test RNG (seeded
//! from the test name) makes every failure reproducible.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG (xoshiro256++ seeded from the test name).
pub mod test_runner {
    /// Per-test deterministic random number generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator deterministically seeded from `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = hash;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform float in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.uniform()
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_int!(u64, u32, usize, i64, i32);

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    use super::{Strategy, TestRng};

    /// Collection strategies.
    pub mod collection {
        use super::{Strategy, TestRng};

        /// Length specification for [`vec`]: a fixed size or a range of sizes.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            max_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_exclusive: n + 1,
                }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max_exclusive: r.end,
                }
            }
        }

        /// Strategy producing `Vec`s of values drawn from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Creates a strategy for vectors with the given element strategy and
        /// size specification.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max_exclusive - self.size.min) as u64;
                let len = self.size.min
                    + if span > 0 {
                        rng.below(span) as usize
                    } else {
                        0
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::{Strategy, TestRng};

        /// Strategy producing uniformly random booleans.
        pub struct Any;

        /// Uniformly random booleans (mirrors `prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Defines property tests: each function runs `config.cases` times with its
/// arguments freshly drawn from their strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; ) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_tests! { $config; $($rest)* }
    };
}
