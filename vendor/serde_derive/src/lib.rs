//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serialization framework (see `vendor/serde`) whose traits are
//! shaped like serde's but serialize through an owned [`serde::Value`] tree.
//! This proc-macro crate supplies the matching `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implementations.
//!
//! Supported shapes (everything this workspace uses):
//! * structs with named fields,
//! * enums with unit variants (optionally with explicit discriminants),
//! * enums with tuple variants, and
//! * enums with struct variants.
//!
//! Generics, tuple structs and unit structs are rejected with a compile error.
//! The JSON layout matches serde's externally-tagged default: structs are
//! objects, unit variants are strings, and data-carrying variants are
//! single-key objects `{"Variant": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field list of a struct or struct variant.
type Fields = Vec<String>;

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Fields),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Skips `#[...]` attribute pairs starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

/// Consumes tokens of a type (or expression) until a top-level `,`, tracking
/// `<...>` nesting so commas inside generics do not terminate the field.
fn skip_until_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i64 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `name: Type, name: Type, ...` (named fields of a struct or struct
/// variant), returning the field names in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_until_top_level_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the top-level comma-separated items in a tuple variant's payload.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i64 = 0;
    let mut saw_item_after_comma = true;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    saw_item_after_comma = false;
                    count += 1;
                    continue;
                }
                _ => {}
            }
        }
        saw_item_after_comma = true;
    }
    if !saw_item_after_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let kind = match tokens.get(i) {
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
                VariantKind::Unit
            }
            // Explicit discriminant: `Name = expr,`
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                skip_until_top_level_comma(&tokens, &mut i);
                VariantKind::Unit
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
                VariantKind::Struct(fields)
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Parses the derive input down to (type name, body shape).
fn parse_item(input: TokenStream) -> Result<(String, Body), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i)?;
    if kind != "struct" && kind != "enum" {
        return Err(format!("expected `struct` or `enum`, found `{kind}`"));
    }
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive Serialize/Deserialize for generic type `{name}` with the vendored serde stub"
        ));
    }
    let group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => {
            return Err(format!(
                "expected braced body for `{name}` (tuple/unit types unsupported), found {other:?}"
            ))
        }
    };
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(group.stream())?)
    } else {
        Body::Enum(parse_variants(group.stream())?)
    };
    Ok((name, body))
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("f{k}")).collect()
}

fn generate_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => {
            let mut code = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for field in fields {
                code.push_str(&format!(
                    "fields.push((::std::string::String::from({field:?}), ::serde::Serialize::to_value(&self.{field})));\n"
                ));
            }
            code.push_str("::serde::Value::Object(fields)");
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), ::serde::Serialize::to_value(f0))]),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds = tuple_bindings(*n).join(", ");
                        let items = tuple_bindings(*n)
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(vec![{items}]))]),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for field in fields {
                            inner.push_str(&format!(
                                "inner.push((::std::string::String::from({field:?}), ::serde::Serialize::to_value({field})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ {inner} ::serde::Value::Object(vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(inner))]) }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body_code}\n }}\n}}\n"
    )
}

fn generate_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::Struct(fields) => {
            let mut init = String::new();
            for field in fields {
                init.push_str(&format!(
                    "{field}: ::serde::from_field(value, {field:?})?,\n"
                ));
            }
            format!("::std::result::Result::Ok({name} {{\n{init}}})")
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items = (0..*n)
                            .map(|k| format!("::serde::from_index(inner, {k})?"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}({items})),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut init = String::new();
                        for field in fields {
                            init.push_str(&format!(
                                "{field}: ::serde::from_field(inner, {field:?})?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{\n{init}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)),\n}},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(concat!(\"invalid value for enum \", stringify!({name})))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body_code}\n }}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, body)) => generate_serialize(&name, &body)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok((name, body)) => generate_deserialize(&name, &body)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
