//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset of the `rand` API that `gis-stats` consumes: the [`RngCore`],
//! [`SeedableRng`], [`Rng`] traits and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ (Blackman & Vigna), seeded through a
//! SplitMix64 expansion of the 64-bit seed — a high-quality, widely used
//! generator whose statistical properties comfortably exceed what the
//! Box–Muller/Monte Carlo layers above require. Streams are *not* bit-for-bit
//! compatible with upstream `rand`'s ChaCha-based `StdRng`, which only matters
//! to code that hard-codes expected sequences (none in this workspace).

/// Error type for fallible byte-filling (kept for `rand` 0.8 API parity).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core random number generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling distribution, mirroring `rand::distributions::Distribution`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform floats in `[0, 1)`, uniform integers
/// over their full range.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as in rand 0.8.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly, mirroring `rand::Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, bound)` via rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Widening-multiply method (Lemire) with rejection of the biased zone.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Error, RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                s = [0xDEAD_BEEF_CAFE_F00D, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.step().to_le_bytes());
            }
            let tail = chunks.into_remainder();
            if !tail.is_empty() {
                let bytes = self.step().to_le_bytes();
                tail.copy_from_slice(&bytes[..tail.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts = {counts:?}");
        }
    }
}
