//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal serialization framework whose *surface* matches the subset of
//! serde this repository uses: `Serialize`/`Deserialize` traits, the
//! `#[derive(Serialize, Deserialize)]` macros (via the vendored
//! `serde_derive`), and a JSON front end (the vendored `serde_json`).
//!
//! Unlike real serde, serialization goes through an owned [`Value`] tree
//! rather than a streaming `Serializer`; for the small result/report payloads
//! this suite produces, the difference is irrelevant.

/// Re-export of the derive macros under the usual names.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::collections::HashMap;

/// A JSON-like value tree: the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` front end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, mirroring serde_json).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// Error for a missing struct field.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }

    /// Error for an unknown enum variant.
    pub fn unknown_variant(name: &str) -> Self {
        Error(format!("unknown variant `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserializes field `name` of an object value; a missing key falls back to
/// deserializing from `Null` so `Option` fields tolerate absent keys.
pub fn from_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, field_value)) => T::from_value(field_value),
            None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name)),
        },
        _ => Err(Error::custom(format!(
            "expected object while reading field `{name}`"
        ))),
    }
}

/// Deserializes element `index` of an array value (tuple enum payloads).
pub fn from_index<T: Deserialize>(value: &Value, index: usize) -> Result<T, Error> {
    match value {
        Value::Array(items) => match items.get(index) {
            Some(item) => T::from_value(item),
            None => Err(Error::custom(format!("missing tuple element {index}"))),
        },
        _ => Err(Error::custom("expected array for tuple variant")),
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations.
// ---------------------------------------------------------------------------

fn number_as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::UInt(v) => Some(*v as f64),
        Value::Int(v) => Some(*v as f64),
        Value::Float(v) => Some(*v),
        Value::Null => Some(f64::NAN), // serde_json writes non-finite floats as null
        _ => None,
    }
}

fn number_as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(v) => Some(*v),
        Value::Int(v) if *v >= 0 => Some(*v as u64),
        Value::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
            Some(*v as u64)
        }
        _ => None,
    }
}

fn number_as_i64(value: &Value) -> Option<i64> {
    match value {
        Value::UInt(v) if *v <= i64::MAX as u64 => Some(*v as i64),
        Value::Int(v) => Some(*v),
        Value::Float(v) if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 => {
            Some(*v as i64)
        }
        _ => None,
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                number_as_u64(value)
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                number_as_i64(value)
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        number_as_f64(value).ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        number_as_f64(value)
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(value).map(std::sync::Arc::from)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
