//! Umbrella crate for the gradient-importance-sampling SRAM extraction suite.
//!
//! This crate re-exports the member crates of the workspace so that examples
//! and integration tests can refer to a single dependency, mirroring how a
//! downstream user would consume the suite.
//!
//! * [`gis_linalg`] — dense linear algebra kernels.
//! * [`gis_stats`] — distributions, RNG streams and sampling plans.
//! * [`gis_variation`] — process-variation modelling (Pelgrom mismatch, corners).
//! * [`gis_circuit`] — MNA-based transistor-level circuit simulator.
//! * [`gis_sram`] — 6T bitcell testbenches and dynamic metric extraction.
//! * [`gis_core`] — gradient importance sampling and the baseline estimators.
//!
//! # Entry point: the unified estimator API
//!
//! All five extraction methods implement the object-safe
//! [`Estimator`](gis_core::Estimator) trait, and the
//! [`YieldAnalysis`](gis_core::YieldAnalysis) driver runs any set of them on
//! any set of named failure problems with deterministic per-method seeding:
//!
//! ```
//! use sram_highsigma::highsigma::{
//!     standard_estimators, ConvergencePolicy, FailureProblem, LinearLimitState, YieldAnalysis,
//! };
//!
//! let report = YieldAnalysis::new()
//!     .master_seed(7)
//!     .convergence_policy(ConvergencePolicy::with_budget(20_000))
//!     .problem(
//!         "linear-4-sigma",
//!         FailureProblem::from_model(
//!             LinearLimitState::along_first_axis(6, 4.0),
//!             LinearLimitState::spec(),
//!         ),
//!     )
//!     .estimators(standard_estimators())
//!     .run();
//! assert_eq!(report.problems[0].methods.len(), 5);
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use gis_circuit as circuit;
pub use gis_core as highsigma;
pub use gis_linalg as linalg;
pub use gis_sram as sram;
pub use gis_stats as stats;
pub use gis_variation as variation;
