//! Umbrella crate for the gradient-importance-sampling SRAM extraction suite.
//!
//! This crate re-exports the member crates of the workspace so that examples
//! and integration tests can refer to a single dependency, mirroring how a
//! downstream user would consume the suite.
//!
//! * [`gis_linalg`] — dense linear algebra kernels.
//! * [`gis_stats`] — distributions, RNG streams and sampling plans.
//! * [`gis_variation`] — process-variation modelling (Pelgrom mismatch, corners).
//! * [`gis_circuit`] — MNA-based transistor-level circuit simulator.
//! * [`gis_sram`] — 6T bitcell testbenches and dynamic metric extraction.
//! * [`gis_core`] — gradient importance sampling and the baseline estimators.

pub use gis_circuit as circuit;
pub use gis_core as highsigma;
pub use gis_linalg as linalg;
pub use gis_sram as sram;
pub use gis_stats as stats;
pub use gis_variation as variation;
