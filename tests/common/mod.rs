//! Shared float-comparison helpers for the integration tests.
//!
//! Tests must encode *how accurate* a quantity is supposed to be, not just
//! "close enough that today's code passes": an absolute `1e-3`-style bound on
//! a `1e-6`-scale probability silently tolerates a 1000× error, and loose
//! ad-hoc bounds are exactly what allowed the pre-PR-3 `erfc` to sit at
//! ~1.2e-7 accuracy unnoticed. Use [`assert_close_rel`] for quantities with
//! a natural scale, [`assert_ulps`] for values that must match a reference to
//! within floating-point round-off, and [`assert_close_abs`] only where the
//! quantity legitimately has an absolute scale (e.g. a sigma level, whose
//! unit *is* the tolerance).
//!
//! (Not every helper is used by every test binary; integration tests compile
//! this module independently per test crate.)
#![allow(dead_code)]

/// Asserts `|actual − expected| ≤ rel_tol · |expected|`.
///
/// # Panics
///
/// Panics when the bound is violated or `expected` is zero/non-finite (a
/// relative bound against zero is meaningless — use [`assert_close_abs`]).
pub fn assert_close_rel(actual: f64, expected: f64, rel_tol: f64, context: &str) {
    assert!(
        expected.is_finite() && expected != 0.0,
        "{context}: relative comparison needs a finite non-zero reference, got {expected}"
    );
    let rel = (actual - expected).abs() / expected.abs();
    assert!(
        rel <= rel_tol,
        "{context}: {actual:e} vs {expected:e}, relative error {rel:.3e} > {rel_tol:e}"
    );
}

/// Asserts `|actual − expected| ≤ abs_tol` — for quantities whose unit is the
/// natural tolerance scale (sigma levels, normalized margins).
pub fn assert_close_abs(actual: f64, expected: f64, abs_tol: f64, context: &str) {
    let diff = (actual - expected).abs();
    assert!(
        diff <= abs_tol,
        "{context}: {actual} vs {expected}, |diff| {diff:e} > {abs_tol:e}"
    );
}

/// Number of representable `f64` values between `a` and `b` (0 when equal,
/// including `0.0` vs `-0.0`). `u64::MAX` when either is NaN or the values
/// have different signs and are not both (near) zero.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    // Map the bit patterns onto a monotone integer line (sign-magnitude →
    // offset representation), so adjacent floats differ by exactly 1.
    fn ordered(x: f64) -> i128 {
        let bits = x.to_bits() as i64;
        let ordered = if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        };
        ordered as i128
    }
    ordered(a)
        .abs_diff(ordered(b))
        .try_into()
        .unwrap_or(u64::MAX)
}

/// Asserts that `actual` is within `max_ulps` representable values of
/// `expected` — the right bound for quantities pinned against a ~1 ulp
/// reference (libm golden values, bit-reproducibility contracts).
pub fn assert_ulps(actual: f64, expected: f64, max_ulps: u64, context: &str) {
    let ulps = ulp_distance(actual, expected);
    assert!(
        ulps <= max_ulps,
        "{context}: {actual:e} vs {expected:e} differ by {ulps} ulps > {max_ulps}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        assert!(ulp_distance(1.0, 2.0) > 1_000_000);
        assert!(ulp_distance(-1.0, 1.0) == u64::MAX || ulp_distance(-1.0, 1.0) > 1 << 62);
    }

    #[test]
    #[should_panic(expected = "relative error")]
    fn rel_assert_fires() {
        assert_close_rel(1.1, 1.0, 1e-3, "should fire");
    }
}
