//! Cross-method consistency: all five estimators, driven purely through
//! `dyn Estimator`, must agree with the exactly known probabilities of the
//! analytic limit states.
//!
//! This is the integration-level guarantee behind the unified API: a driver
//! that only sees trait objects gets correct estimates from every method, and
//! the `YieldAnalysis` report exposes enough information (convergence flags,
//! diagnostics) to judge each estimate.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    ConvergencePolicy, Estimator, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, LinearLimitState, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, QuadraticLimitState, ScaledSigmaSampling, SphericalSampling,
    SphericalSamplingConfig, SssConfig, YieldAnalysis,
};
use sram_highsigma::stats::RngStream;

/// The five methods with budgets suited to a ~3.5σ analytic validation
/// problem, boxed so the test only ever touches `dyn Estimator`.
fn validation_estimators() -> Vec<Box<dyn Estimator>> {
    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: 60_000,
        batch_size: 1_000,
        target_relative_error: 0.05,
        min_failures: 50,
    };
    vec![
        Box::new(GradientImportanceSampling::new(GisConfig {
            sampling: sampling.clone(),
            ..GisConfig::default()
        })),
        Box::new(MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 3_000_000,
            batch_size: 50_000,
            target_relative_error: 0.05,
            min_failures: 100,
        })),
        Box::new(MinimumNormIs::new(MnisConfig {
            sampling,
            ..MnisConfig::default()
        })),
        Box::new(SphericalSampling::new(SphericalSamplingConfig {
            directions: 4_000,
            target_relative_error: 0.05,
            ..SphericalSamplingConfig::default()
        })),
        Box::new(ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: 30_000,
            ..SssConfig::default()
        })),
    ]
}

/// Per-method accuracy tolerance (relative deviation from the exact value).
/// The boundary-mapping and extrapolation baselines carry a model error on a
/// half-space problem — exactly the weakness the paper's comparison tables
/// document — so their tolerances are wider.
fn tolerance(method: &str) -> f64 {
    match method {
        "gradient-is" => 0.15,
        "monte-carlo" => 0.15,
        "minimum-norm-is" => 0.2,
        "spherical-sampling" => 1.5,
        "scaled-sigma-sampling" => 3.0,
        other => panic!("unexpected method {other}"),
    }
}

#[test]
fn all_five_estimators_recover_the_linear_limit_state_through_dyn_estimator() {
    let limit_state = LinearLimitState::along_first_axis(4, 3.5);
    let exact = limit_state.exact_failure_probability();
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());

    for estimator in validation_estimators() {
        // Everything below goes through the trait object only.
        let estimator: Box<dyn Estimator> = estimator;
        let outcome = estimator.estimate(&problem.fork(), &mut RngStream::from_seed(2024));
        assert_eq!(outcome.result.method, estimator.name());
        // Spherical sampling's estimator variance on a half-space decays too
        // slowly for its stopping rule to fire within the direction budget —
        // the weakness the paper's tables document — so convergence is only
        // required of the other methods.
        if estimator.name() != "spherical-sampling" {
            assert!(
                outcome.result.converged,
                "{} did not converge",
                estimator.name()
            );
        }
        let rel = (outcome.result.failure_probability - exact).abs() / exact;
        assert!(
            rel < tolerance(estimator.name()),
            "{}: estimate {:e} deviates from exact {exact:e} by {rel:.3}",
            estimator.name(),
            outcome.result.failure_probability
        );
    }
}

#[test]
fn is_methods_recover_the_quadratic_limit_state_through_dyn_estimator() {
    // The curved boundary stresses the mean-shift methods' defensive
    // mixtures; spherical/SSS are exercised on the linear state above.
    let limit_state = QuadraticLimitState::new(5, 4.0, 0.06);
    let reference = limit_state.reference_failure_probability();
    let problem = FailureProblem::from_model(limit_state, QuadraticLimitState::spec());

    let methods: Vec<Box<dyn Estimator>> = validation_estimators()
        .into_iter()
        .filter(|e| matches!(e.name(), "gradient-is" | "minimum-norm-is"))
        .collect();
    assert_eq!(methods.len(), 2);
    for estimator in methods {
        let outcome = estimator.estimate(&problem.fork(), &mut RngStream::from_seed(77));
        let rel = (outcome.result.failure_probability - reference).abs() / reference;
        assert!(
            rel < 0.3,
            "{}: curved-boundary estimate {:e} deviates from reference {reference:e} by {rel:.3}",
            estimator.name(),
            outcome.result.failure_probability
        );
    }
}

/// The analytic problem shared by the driver test and its replay step
/// (fresh evaluation counter each call).
fn linear_validation_problem() -> FailureProblem {
    FailureProblem::from_model(
        LinearLimitState::along_first_axis(4, 3.5),
        LinearLimitState::spec(),
    )
}

#[test]
fn yield_analysis_driver_reproduces_the_comparison_end_to_end() {
    let limit_state = LinearLimitState::along_first_axis(4, 3.5);
    let exact = limit_state.exact_failure_probability();

    let report = YieldAnalysis::new()
        .master_seed(20180319)
        .problem(
            "linear-3.5-sigma",
            FailureProblem::from_model(limit_state, LinearLimitState::spec()),
        )
        .estimators(validation_estimators())
        .run();

    let problem_report = report.problem("linear-3.5-sigma").expect("problem ran");
    assert_eq!(problem_report.methods.len(), 5);
    for method in &problem_report.methods {
        let rel = (method.row.failure_probability - exact).abs() / exact;
        assert!(
            rel < tolerance(&method.estimator),
            "{}: driver estimate {:e} deviates from exact {exact:e} by {rel:.3}",
            method.estimator,
            method.row.failure_probability
        );
        // The recorded seed reproduces the outcome in isolation.
        let replay: Vec<Box<dyn Estimator>> = validation_estimators()
            .into_iter()
            .filter(|e| e.name() == method.estimator)
            .collect();
        let replayed = replay[0].estimate(
            &linear_validation_problem(),
            &mut RngStream::from_seed(method.seed),
        );
        assert_eq!(
            replayed.result.failure_probability, method.row.failure_probability,
            "{}: replay from recorded seed diverged",
            method.estimator
        );
    }
}

#[test]
fn uniform_policy_caps_every_method_in_the_driver() {
    let report = YieldAnalysis::new()
        .master_seed(5)
        .convergence_policy(
            ConvergencePolicy::with_budget(8_000)
                .target_relative_error(0.2)
                .min_failures(10),
        )
        .problem(
            "linear-3-sigma",
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(3, 3.0),
                LinearLimitState::spec(),
            ),
        )
        .estimators(validation_estimators())
        .run();
    for method in &report.problems[0].methods {
        assert!(
            method.outcome.result.sampling_evaluations <= 8_000 + 32,
            "{} ignored the policy budget: {}",
            method.estimator,
            method.outcome.result.sampling_evaluations
        );
    }
}
