//! Integration tests of the yield-analysis daemon: the determinism
//! contract (served rows bit-identical to the batch path — fresh, cached,
//! and after a journal-backed restart), the content-addressed cache
//! (identical jobs charged once, seed/policy changes are misses), and
//! concurrent-client multiplexing.
//!
//! The SIGKILL variant of the restart contract lives in
//! `crates/serve/tests/kill_resume.rs` (it needs the daemon binary); here
//! the server runs in-process so the cache and journal state are directly
//! observable.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_serve::{Client, EstimatorSpec, JobSpec, ProblemSpec, Server, ServerConfig};
use sram_highsigma::highsigma::{
    standard_estimators, BenchmarkProblem, ConvergencePolicy, GisConfig,
    GradientImportanceSampling, MonteCarlo, MonteCarloConfig, SweepRunner, YieldAnalysis,
};
use std::path::PathBuf;

const MASTER_SEED: u64 = 20180319;

/// Per-test scratch directory under the system temp dir.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("gis_serve_tests")
        .join(format!("{test}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// Starts an in-process server and returns its address. The server thread
/// exits when a client sends `Shutdown` (or when the test process ends).
fn start_server(config: ServerConfig) -> String {
    let server = Server::bind(config).expect("server binds");
    let addr = server.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || server.run());
    addr
}

fn policy() -> ConvergencePolicy {
    ConvergencePolicy::with_budget(2_000)
        .target_relative_error(0.1)
        .min_failures(10)
}

/// A cheap job: the 7 analytic fast-suite problems under two estimators.
fn fast_job(master_seed: u64) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::Suite {
            suite: "fast".to_string(),
        },
        estimators: vec![
            EstimatorSpec::GradientIs {
                config: GisConfig::default(),
            },
            EstimatorSpec::MonteCarlo {
                config: MonteCarloConfig::default(),
            },
        ],
        master_seed,
        policy: Some(policy()),
        warm_start: None,
        deadline_ms: None,
    }
}

/// The batch-path analysis equivalent to [`fast_job`].
fn fast_batch_analysis(master_seed: u64) -> YieldAnalysis {
    let mut analysis = YieldAnalysis::new()
        .master_seed(master_seed)
        .convergence_policy(policy());
    for problem in BenchmarkProblem::fast_suite() {
        let name = problem.name().to_string();
        analysis = analysis.problem(name, problem.fork());
    }
    analysis
        .estimator(Box::new(GradientImportanceSampling::new(
            GisConfig::default(),
        )))
        .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
}

#[test]
fn served_job_is_bit_identical_to_batch_run() {
    let addr = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("client connects");

    let mut streamed = Vec::new();
    let receipt = client
        .submit(&fast_job(MASTER_SEED), &mut |cell| {
            streamed.push((
                cell.problem.to_string(),
                cell.estimator.to_string(),
                cell.completed_cells,
                cell.total_cells,
                cell.cached,
            ));
        })
        .expect("job runs");

    // 7 fast-suite problems × 2 estimators, streamed in registration
    // order, none cached on a cold server.
    assert_eq!(streamed.len(), 14);
    assert!(streamed.iter().all(|s| s.3 == 14 && !s.4));
    assert_eq!(
        streamed.iter().map(|s| s.2).collect::<Vec<_>>(),
        (1..=14).collect::<Vec<_>>()
    );
    assert_eq!(receipt.cells_executed, 14);
    assert_eq!(receipt.cells_cached, 0);

    // The determinism contract: the served report equals the batch run of
    // the identical configuration (PartialEq compares every statistical
    // field bit for bit and ignores only wall-clock metadata).
    let batch = fast_batch_analysis(MASTER_SEED).run();
    assert_eq!(receipt.report, batch);

    // ... and equals the batch SweepRunner path over the same analysis.
    let swept = SweepRunner::new()
        .run(&mut fast_batch_analysis(MASTER_SEED))
        .report
        .expect("sweep completes");
    assert_eq!(receipt.report, swept);

    client.shutdown().expect("clean shutdown");
}

#[test]
fn identical_resubmission_is_served_from_cache_and_charged_once() {
    let addr = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("client connects");

    let fresh = client
        .submit(&fast_job(77), &mut |_| {})
        .expect("fresh run");
    assert_eq!(fresh.cells_executed, 14);

    // Second, identical submission (a new connection, as a second client
    // would): every cell is a cache hit, the report is identical.
    let mut second = Client::connect(&addr).expect("second client connects");
    let cached = second
        .submit(&fast_job(77), &mut |_| {})
        .expect("cached run");
    assert_eq!(cached.cells_executed, 0);
    assert_eq!(cached.cells_cached, 14);
    assert_eq!(cached.report, fresh.report);

    // The evaluation counter was charged exactly once per cell.
    let status = second.status().expect("status");
    assert_eq!(status.cells_executed, 14);
    assert_eq!(status.cache_hits, 14);
    assert_eq!(status.jobs_submitted, 2);

    second.shutdown().expect("clean shutdown");
}

#[test]
fn master_seed_and_policy_changes_are_cache_misses() {
    let addr = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("client connects");

    let base = client
        .submit(&fast_job(100), &mut |_| {})
        .expect("base run");
    assert_eq!(base.cells_executed, 14);

    // A different master seed re-derives every per-cell stream: no cell
    // may be shared with the base job.
    let reseeded = client
        .submit(&fast_job(101), &mut |_| {})
        .expect("reseeded run");
    assert_eq!(reseeded.cells_executed, 14);
    assert_eq!(reseeded.cells_cached, 0);

    // A different convergence policy changes the budget/stopping rule:
    // also a miss for every cell — the configuration-mixing bug class the
    // checkpoint validation guards against.
    let mut repoliced = fast_job(100);
    repoliced.policy = Some(ConvergencePolicy::with_budget(4_000));
    let repoliced_run = client
        .submit(&repoliced, &mut |_| {})
        .expect("repoliced run");
    assert_eq!(repoliced_run.cells_executed, 14);
    assert_eq!(repoliced_run.cells_cached, 0);

    // Resubmitting the base job still hits the original results.
    let cached = client.submit(&fast_job(100), &mut |_| {}).expect("cached");
    assert_eq!(cached.cells_cached, 14);
    assert_eq!(cached.report, base.report);

    client.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_identical_clients_share_one_execution() {
    let addr = start_server(ServerConfig::default());

    // Two clients race the identical job. The single-flight cache must
    // charge every cell exactly once across both, and both must receive
    // the identical report.
    let addr_a = addr.clone();
    let addr_b = addr.clone();
    let job = fast_job(500);
    let job_a = job.clone();
    let job_b = job.clone();
    let a = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_a).expect("client a connects");
        client.submit(&job_a, &mut |_| {}).expect("job a runs")
    });
    let b = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_b).expect("client b connects");
        client.submit(&job_b, &mut |_| {}).expect("job b runs")
    });
    let receipt_a = a.join().expect("thread a");
    let receipt_b = b.join().expect("thread b");

    assert_eq!(receipt_a.report, receipt_b.report);
    assert_eq!(receipt_a.cells_executed + receipt_b.cells_executed, 14);

    let mut client = Client::connect(&addr).expect("client connects");
    let status = client.status().expect("status");
    assert_eq!(status.cells_executed, 14);

    // The cached report also equals the batch run — concurrency corrupted
    // nothing.
    let batch = fast_batch_analysis(500).run();
    assert_eq!(receipt_a.report, batch);

    client.shutdown().expect("clean shutdown");
}

#[test]
fn concurrent_distinct_clients_multiplex_without_corruption() {
    let addr = start_server(ServerConfig::default());

    // Two clients submit *different* jobs concurrently (different master
    // seeds force disjoint cells). Each must stream exactly its own job's
    // rows, equal to its own batch reference.
    let addr_a = addr.clone();
    let addr_b = addr.clone();
    let a = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_a).expect("client a connects");
        client.submit(&fast_job(600), &mut |_| {}).expect("job a")
    });
    let b = std::thread::spawn(move || {
        let mut client = Client::connect(&addr_b).expect("client b connects");
        client.submit(&fast_job(601), &mut |_| {}).expect("job b")
    });
    let receipt_a = a.join().expect("thread a");
    let receipt_b = b.join().expect("thread b");

    assert_eq!(receipt_a.report, fast_batch_analysis(600).run());
    assert_eq!(receipt_b.report, fast_batch_analysis(601).run());

    let mut client = Client::connect(&addr).expect("client connects");
    client.shutdown().expect("clean shutdown");
}

#[test]
fn journal_restart_serves_completed_cells_from_cache() {
    let dir = scratch_dir("journal_restart");
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    // First server lifetime: run the job fresh, then shut down.
    let addr = start_server(ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connects");
    let fresh = client
        .submit(&fast_job(900), &mut |_| {})
        .expect("fresh run");
    assert_eq!(fresh.cells_executed, 14);
    client.shutdown().expect("clean shutdown");

    // Second server lifetime on the same journal: the replay must serve
    // every cell from cache, and the report must be identical.
    let addr = start_server(ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client reconnects");
    let resumed = client
        .submit(&fast_job(900), &mut |_| {})
        .expect("resumed run");
    assert_eq!(resumed.cells_executed, 0);
    assert_eq!(resumed.cells_cached, 14);
    assert_eq!(resumed.report, fresh.report);
    client.shutdown().expect("clean shutdown");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_journal_is_replayable_as_a_sweep_checkpoint() {
    let dir = scratch_dir("journal_as_checkpoint");
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    let addr = start_server(ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connects");
    let served = client
        .submit(&fast_job(1234), &mut |_| {})
        .expect("job runs");
    client.shutdown().expect("clean shutdown");

    // The daemon's journal uses the same envelope format as the sweep
    // checkpoint, so the batch engine can restore every cell from it: the
    // job line is skipped, the cell lines restore, nothing re-runs.
    let outcome = SweepRunner::new()
        .checkpoint(&journal)
        .run(&mut fast_batch_analysis(1234));
    assert_eq!(outcome.status.restored_cells, 14);
    assert_eq!(outcome.status.discarded_records, 0);
    assert_eq!(outcome.report.expect("complete"), served.report);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn standard_estimator_specs_mirror_the_library_line_up() {
    let specs = EstimatorSpec::standard();
    let library = standard_estimators();
    assert_eq!(specs.len(), library.len());
    for (spec, estimator) in specs.iter().zip(&library) {
        assert_eq!(spec.method_name(), estimator.name());
    }
}
