//! Checks that the umbrella crate exposes a coherent public API: everything a
//! downstream user needs is reachable through `sram_highsigma::*` re-exports,
//! the central types implement the expected std traits, and serialized results
//! round-trip.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::circuit::{Circuit, MosfetParams, SourceWaveform, GROUND};
use sram_highsigma::highsigma::{
    standard_estimators, ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome,
    ExecutionConfig, Executor, ExtractionResult, FailureProblem, GisConfig,
    GradientImportanceSampling, LinearLimitState, MonteCarlo, MonteCarloConfig, PerformanceModel,
    Spec,
};
use sram_highsigma::linalg::{Matrix, Vector};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate, SramTestbench};
use sram_highsigma::stats::{MultivariateNormal, RngStream};
use sram_highsigma::variation::{PelgromModel, VariationSpace};

#[test]
fn core_types_implement_std_traits() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_clone_debug<T: Clone + std::fmt::Debug>() {}

    assert_send_sync::<Vector>();
    assert_send_sync::<Matrix>();
    assert_send_sync::<FailureProblem>();
    assert_send_sync::<SramSurrogate>();
    assert_send_sync::<SramTestbench>();
    assert_send_sync::<Executor>();
    assert_send_sync::<ExecutionConfig>();
    assert_clone_debug::<Executor>();
    assert_clone_debug::<ExecutionConfig>();
    assert_clone_debug::<GisConfig>();
    assert_clone_debug::<ExtractionResult>();
    assert_clone_debug::<SramCellConfig>();
    assert_clone_debug::<PelgromModel>();
    assert_clone_debug::<MosfetParams>();
    assert_clone_debug::<MultivariateNormal>();
    assert_clone_debug::<VariationSpace>();
}

#[test]
fn estimator_trait_is_object_safe() {
    // The unified API hinges on `Estimator` being usable as a trait object:
    // drivers hold `Box<dyn Estimator>`, never concrete method types. This is
    // primarily a compile test — if the trait loses object safety, the
    // coercions below stop compiling.
    let boxed: Box<dyn Estimator> = Box::new(GradientImportanceSampling::new(GisConfig::default()));
    let _by_ref: &dyn Estimator = &MonteCarlo::new(MonteCarloConfig::with_budget(1_000));
    let mut fleet: Vec<Box<dyn Estimator>> = standard_estimators();
    fleet.push(boxed);
    assert_eq!(fleet.len(), 6);

    // Trait objects are callable, mutable (policy configuration), Send + Sync.
    fn assert_send_sync<T: Send + Sync + ?Sized>() {}
    assert_send_sync::<dyn Estimator>();
    let policy = ConvergencePolicy::with_budget(500);
    for estimator in &mut fleet {
        estimator.configure(&policy);
        estimator.set_execution(ExecutionConfig::with_threads(2));
        assert!(!estimator.name().is_empty());
    }
    let problem = FailureProblem::from_model(
        LinearLimitState::along_first_axis(2, 2.0),
        LinearLimitState::spec(),
    );
    let outcome: EstimatorOutcome =
        fleet[0].estimate(&problem.fork(), &mut RngStream::from_seed(1));
    assert!(matches!(
        outcome.diagnostics,
        Diagnostics::GradientImportanceSampling { .. }
    ));
}

#[test]
fn umbrella_crate_supports_the_full_flow() {
    // Everything in one place: circuit, variation, stats, extraction.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add_voltage_source("V1", a, GROUND, SourceWaveform::dc(1.0));
    ckt.add_resistor("R1", a, GROUND, 1e3).unwrap();
    assert_eq!(ckt.num_devices(), 2);

    let limit_state = LinearLimitState::along_first_axis(4, 4.0);
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());
    let gis = GradientImportanceSampling::new(GisConfig::default());
    let outcome = gis.estimate(&problem, &mut RngStream::from_seed(1));
    assert!(outcome.result.failure_probability > 0.0);
}

#[test]
fn extraction_results_serialize_to_json() {
    let limit_state = LinearLimitState::along_first_axis(3, 3.5);
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());
    let gis = GradientImportanceSampling::new(GisConfig::default());
    let outcome = gis.estimate(&problem, &mut RngStream::from_seed(2));

    let json = serde_json::to_string(&outcome.result).expect("result serializes");
    assert!(json.contains("failure_probability"));
    let back: ExtractionResult = serde_json::from_str(&json).expect("result deserializes");
    assert_eq!(back.method, outcome.result.method);
    assert_eq!(back.evaluations, outcome.result.evaluations);
}

#[test]
fn performance_model_trait_is_object_safe() {
    // Users compose models dynamically (e.g. picking read vs write at runtime);
    // the trait must therefore be usable as a trait object.
    let models: Vec<Box<dyn PerformanceModel>> = vec![
        Box::new(LinearLimitState::along_first_axis(2, 3.0)),
        Box::new(sram_highsigma::highsigma::FnModel::new(
            "norm",
            2,
            |z: &Vector| z.norm(),
        )),
    ];
    for model in &models {
        let value = model.evaluate(&Vector::zeros(model.dim()));
        assert!(value.is_finite());
    }
    // And boxed models can still power a FailureProblem via Arc.
    let arc_model: std::sync::Arc<dyn PerformanceModel> =
        std::sync::Arc::new(LinearLimitState::along_first_axis(2, 3.0));
    let problem = FailureProblem::new(arc_model, Spec::UpperLimit(0.0));
    assert_eq!(problem.dim(), 2);
}
