//! Warm-vs-blind A/B harness of the dependency-aware continuation mode on
//! the closed-form SRAM surrogate grid: the blind schedule stays the exact
//! reproducibility reference (bit-identical at every thread count), warm
//! estimates agree with the blind ones within their error bars while
//! spending fewer evaluations, and a killed warm sweep resumes to the exact
//! uninterrupted warm report.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::sweep::clear_checkpoint;
use sram_highsigma::highsigma::{
    standard_estimators, ConvergencePolicy, ExecutionConfig, SweepPlan, SweepRunner, YieldAnalysis,
};
use sram_highsigma::variation::GlobalCorner;
use std::path::PathBuf;

/// A TT grid with two continuous axes to warm-start along: 4 supplies × 2
/// temperatures × all 5 estimators = 40 cells on the closed-form surrogate,
/// at the fast sweep budget.
fn plan() -> SweepPlan {
    SweepPlan::new()
        .corners([GlobalCorner::TypicalTypical])
        .supply_voltages([0.85, 0.90, 0.95, 1.00])
        .temperatures([-40.0, 25.0])
}

fn analysis() -> YieldAnalysis {
    plan()
        .analysis()
        .master_seed(20180319)
        .convergence_policy(
            ConvergencePolicy::with_budget(2_000)
                .target_relative_error(0.1)
                .min_failures(20),
        )
        .estimators(standard_estimators())
}

fn temp_checkpoint(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gis_warm_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    clear_checkpoint(&path).expect("clearable");
    path
}

fn warm_runner() -> SweepRunner {
    SweepRunner::new().warm_start(plan().warm_donors())
}

#[test]
fn blind_reference_is_untouched_by_the_continuation_machinery() {
    // The blind SweepRunner path must still equal the sequential driver bit
    // for bit at every matrix thread count — continuation mode is opt-in
    // and its plumbing (estimate_warm, run_cell_warm, hint extraction) must
    // be invisible when off.
    let sequential = analysis().run();
    for threads in [1, 4] {
        let blind = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(threads))
            .run(&mut analysis());
        assert_eq!(
            blind.report.expect("complete"),
            sequential,
            "blind sweep diverged at {threads} matrix threads"
        );
    }
}

#[test]
fn warm_estimates_agree_with_blind_within_error_bars_and_save_evaluations() {
    let blind = analysis().run();
    let warm = warm_runner().run(&mut analysis()).report.expect("complete");

    let mut saved_total: i128 = 0;
    for (bp, wp) in blind.problems.iter().zip(&warm.problems) {
        assert_eq!(bp.problem, wp.problem);
        for (b, w) in bp.methods.iter().zip(&wp.methods) {
            assert_eq!(b.estimator, w.estimator);
            saved_total += b.row.evaluations as i128 - w.row.evaluations as i128;
            if b.row == w.row {
                continue; // bit-identical (origin cells, Monte Carlo, ...)
            }
            // Agreement: the 90% confidence intervals of the two estimates
            // must overlap. Half-widths are relative in the row schema.
            let half = |p: f64, rel: f64| if rel.is_finite() { p * rel } else { 0.0 };
            let hb = half(b.row.failure_probability, b.row.relative_confidence_90);
            let hw = half(w.row.failure_probability, w.row.relative_confidence_90);
            let gap = (b.row.failure_probability - w.row.failure_probability).abs();
            assert!(
                gap <= hb + hw,
                "{}/{}: warm {} outside blind {} ± {} (warm half-width {})",
                bp.problem,
                b.estimator,
                w.row.failure_probability,
                b.row.failure_probability,
                hb,
                hw
            );
        }
    }
    assert!(
        saved_total > 0,
        "continuation mode must save evaluations on the grid, saved {saved_total}"
    );
}

#[test]
fn warm_sweep_is_bit_identical_across_thread_counts() {
    let reference = warm_runner().run(&mut analysis()).report.expect("complete");
    for threads in [1, 4] {
        let warm = warm_runner()
            .matrix(ExecutionConfig::with_threads(threads))
            .run(&mut analysis());
        assert_eq!(
            warm.report.expect("complete"),
            reference,
            "warm sweep diverged at {threads} matrix threads"
        );
    }
}

#[test]
fn killed_warm_sweep_resumes_to_the_exact_uninterrupted_report() {
    let path = temp_checkpoint("warm_kill_resume.jsonl");
    let uninterrupted = warm_runner().run(&mut analysis()).report.expect("complete");

    // Two mid-run kills via cell budgets — the second cut lands mid-wave —
    // then a final resume. Every restored warm record must validate against
    // its donor's replayed hint; nothing may be discarded.
    let first = warm_runner()
        .checkpoint(&path)
        .cell_budget(7)
        .run(&mut analysis());
    assert!(first.report.is_none());
    assert_eq!(first.status.completed_cells, 7);

    let second = warm_runner()
        .checkpoint(&path)
        .cell_budget(13)
        .run(&mut analysis());
    assert!(second.report.is_none());
    assert_eq!(second.status.restored_cells, 7);
    assert_eq!(second.status.discarded_records, 0);
    assert_eq!(second.status.completed_cells, 20);

    let resumed = warm_runner().checkpoint(&path).run(&mut analysis());
    assert!(resumed.status.is_complete());
    assert_eq!(resumed.status.restored_cells, 20);
    assert_eq!(resumed.status.discarded_records, 0);
    assert_eq!(resumed.report.expect("complete"), uninterrupted);
    clear_checkpoint(&path).expect("clearable");
}
