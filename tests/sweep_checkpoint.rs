//! Integration tests of the sweep orchestration subsystem: the matrix
//! scheduler's bit-identity contract against the sequential driver, and the
//! checkpoint/resume contract (a killed-and-resumed sweep reproduces the
//! uninterrupted report exactly).

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::sweep::clear_checkpoint;
use sram_highsigma::highsigma::{
    standard_estimators, ConvergencePolicy, ExecutionConfig, Executor, FailureProblem,
    LinearLimitState, QuadraticLimitState, SweepPlan, SweepRunner, YieldAnalysis,
};
use sram_highsigma::variation::GlobalCorner;
use std::path::PathBuf;

/// A small but non-trivial matrix: 3 problems (two analytic families) × all
/// 5 estimators = 15 cells, cheap budgets.
fn analysis() -> YieldAnalysis {
    YieldAnalysis::new()
        .master_seed(20180319)
        .convergence_policy(
            ConvergencePolicy::with_budget(3_000)
                .target_relative_error(0.1)
                .min_failures(10),
        )
        .problem(
            "linear-3s",
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(4, 3.0),
                LinearLimitState::spec(),
            ),
        )
        .problem(
            "linear-4s",
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(4, 4.0),
                LinearLimitState::spec(),
            ),
        )
        .problem(
            "quadratic",
            FailureProblem::from_model(
                QuadraticLimitState::new(4, 3.0, 0.05),
                QuadraticLimitState::spec(),
            ),
        )
        .estimators(standard_estimators())
}

fn temp_checkpoint(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("gis_sweep_integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    clear_checkpoint(&path).expect("clearable");
    path
}

#[test]
fn matrix_parallel_sweep_is_bit_identical_to_sequential_run() {
    // The acceptance contract: the matrix-dispatched report equals the
    // sequential `YieldAnalysis::run` path bit for bit at matrix thread
    // counts 1, 2 and 8 (and regardless of GIS_THREADS, which only feeds the
    // within-estimator executors — exercised by the CI's GIS_THREADS=1/4
    // runs of this very test).
    let sequential = analysis().run();
    for threads in [1, 2, 8] {
        let via_run_on = analysis().run_on(&Executor::new(threads));
        assert_eq!(
            via_run_on, sequential,
            "run_on diverged at {threads} matrix threads"
        );
        let via_runner = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(threads))
            .run(&mut analysis());
        assert!(via_runner.status.is_complete());
        assert_eq!(
            via_runner.report.expect("complete"),
            sequential,
            "SweepRunner diverged at {threads} matrix threads"
        );
    }
}

#[test]
fn killed_sweep_resumes_to_the_exact_uninterrupted_report() {
    let path = temp_checkpoint("kill_resume.jsonl");
    let uninterrupted = analysis().run();

    // "Kill" the sweep twice mid-run via cell budgets (5 cells, then 5 more
    // of the 15), at different matrix thread counts for good measure.
    for (budget, threads) in [(5, 2), (5, 1)] {
        let partial = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(threads))
            .checkpoint(&path)
            .cell_budget(budget)
            .run(&mut analysis());
        assert!(partial.report.is_none(), "budgeted run must stay partial");
        assert!(!partial.status.is_complete());
    }

    // Progress is visible without running anything.
    let status = SweepRunner::new().checkpoint(&path).status(&mut analysis());
    assert_eq!(status.total_cells, 15);
    assert_eq!(status.completed_cells, 10);
    assert_eq!(status.pending.len(), 5);

    // The final resume completes the matrix and reproduces the uninterrupted
    // report exactly (PartialEq; wall-clock metadata excluded by design).
    let resumed = SweepRunner::new()
        .matrix(ExecutionConfig::with_threads(4))
        .checkpoint(&path)
        .run(&mut analysis());
    assert!(resumed.status.is_complete());
    assert_eq!(resumed.status.restored_cells, 10);
    assert_eq!(resumed.report.expect("complete"), uninterrupted);

    // A second full run is now a pure restore: zero fresh cells.
    let restored = SweepRunner::new().checkpoint(&path).run(&mut analysis());
    assert_eq!(restored.status.restored_cells, 15);
    assert_eq!(restored.report.expect("complete"), uninterrupted);
    clear_checkpoint(&path).expect("clearable");
}

#[test]
fn truncated_checkpoint_tail_is_survived() {
    let path = temp_checkpoint("truncated.jsonl");
    let uninterrupted = analysis().run();

    let partial = SweepRunner::new()
        .checkpoint(&path)
        .cell_budget(7)
        .run(&mut analysis());
    assert_eq!(partial.status.completed_cells, 7);

    // Simulate a kill mid-append: chop the file in the middle of its last
    // line.
    let contents = std::fs::read(&path).expect("checkpoint readable");
    std::fs::write(&path, &contents[..contents.len() - 40]).expect("truncatable");

    let resumed = SweepRunner::new().checkpoint(&path).run(&mut analysis());
    assert!(resumed.status.is_complete());
    // The torn record is discarded and its cell re-ran; the other six
    // restore.
    assert_eq!(resumed.status.restored_cells, 6);
    assert_eq!(resumed.status.discarded_records, 1);
    assert_eq!(resumed.report.expect("complete"), uninterrupted);
    clear_checkpoint(&path).expect("clearable");
}

#[test]
fn reseeded_analysis_ignores_the_whole_checkpoint() {
    let path = temp_checkpoint("reseeded.jsonl");
    let done = SweepRunner::new().checkpoint(&path).run(&mut analysis());
    assert!(done.status.is_complete());

    // Same problems, different master seed: every stored cell is stale, and
    // the re-run must equal a fresh run under the new seed.
    let mut reseeded = analysis().master_seed(42);
    let status = SweepRunner::new().checkpoint(&path).status(&mut reseeded);
    assert_eq!(status.restored_cells, 0);
    assert_eq!(status.discarded_records, 15);

    let fresh = analysis().master_seed(42).run();
    let rerun = SweepRunner::new()
        .checkpoint(&path)
        .run(&mut analysis().master_seed(42));
    assert_eq!(rerun.status.restored_cells, 0);
    assert_eq!(rerun.report.expect("complete"), fresh);
    clear_checkpoint(&path).expect("clearable");
}

#[test]
fn scenario_sweep_plan_end_to_end() {
    // A 2-scenario plan through the full runner, with capacity targets
    // summarized — the production shape of the subsystem, minus the grid
    // size.
    let plan = SweepPlan::new()
        .corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
        .capacity_target("1Mb", 1 << 20, 0, 0.99);
    let mut analysis = plan
        .analysis()
        .master_seed(9)
        .convergence_policy(ConvergencePolicy::with_budget(2_000))
        .estimators(standard_estimators());
    let outcome = SweepRunner::new()
        .matrix(ExecutionConfig::with_threads(2))
        .run(&mut analysis);
    let report = outcome.report.expect("complete");
    assert_eq!(report.problems.len(), 2);
    let rows = plan.summarize(&report);
    assert_eq!(rows.len(), 2 * 5);
    for row in &rows {
        assert_eq!(row.capacity_margins.len(), 1);
        assert_eq!(row.capacity_margins[0].target, "1Mb");
        assert!(row.capacity_margins[0].required_sigma > 4.0);
        assert_eq!(
            row.capacity_margins[0].meets,
            row.capacity_margins[0].margin_sigma >= 0.0
        );
    }
}
