//! Integration tests of the fault-containment stack end to end: a served
//! job survives an injected worker panic (typed quarantine, healthy cells
//! bit-identical to the batch path, failure never cached), a bounded retry
//! clears a transient fault without a trace, a mid-stream socket drop is
//! healed by the self-healing client without recomputing a single cell, a
//! zero deadline degrades to a typed partial result, and a torn journal
//! line costs exactly one cell on restart.
//!
//! Every fault here is injected through an explicit per-server
//! [`FaultPlan`] (never the `GIS_FAULTS` environment variable) so the
//! tests stay safe under the default parallel test harness. The
//! sweep-level matrix (panic / singular / NaN / torn checkpoint / CRC
//! tamper / donor quarantine) lives in `crates/core/src/sweep.rs`.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_serve::{
    submit_with_recovery, Client, EstimatorSpec, JobSpec, ProblemSpec, RetryPolicy, Server,
    ServerConfig,
};
use sram_highsigma::highsigma::{
    BenchmarkProblem, CellFailureReason, ConvergencePolicy, FaultPlan, GisConfig,
    GradientImportanceSampling, MonteCarlo, MonteCarloConfig, YieldAnalysis,
};
use std::path::PathBuf;

const MASTER_SEED: u64 = 20180319;

/// The cell the fault directives below target: first fast-suite problem
/// under the Monte Carlo estimator (registration order cell 2 of 14).
const FAULTED_PROBLEM: &str = "linear-6d-2.5s";
const FAULTED_ESTIMATOR: &str = "monte-carlo";

/// Per-test scratch directory under the system temp dir.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("gis_fault_tests")
        .join(format!("{test}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir
}

/// Starts an in-process server and returns its address.
fn start_server(config: ServerConfig) -> String {
    let server = Server::bind(config).expect("server binds");
    let addr = server.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || server.run());
    addr
}

fn policy() -> ConvergencePolicy {
    ConvergencePolicy::with_budget(2_000)
        .target_relative_error(0.1)
        .min_failures(10)
}

/// A cheap job: the 7 analytic fast-suite problems under two estimators.
fn fast_job(master_seed: u64) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::Suite {
            suite: "fast".to_string(),
        },
        estimators: vec![
            EstimatorSpec::GradientIs {
                config: GisConfig::default(),
            },
            EstimatorSpec::MonteCarlo {
                config: MonteCarloConfig::default(),
            },
        ],
        master_seed,
        policy: Some(policy()),
        warm_start: None,
        deadline_ms: None,
    }
}

/// The batch-path analysis equivalent to [`fast_job`].
fn fast_batch_analysis(master_seed: u64) -> YieldAnalysis {
    let mut analysis = YieldAnalysis::new()
        .master_seed(master_seed)
        .convergence_policy(policy());
    for problem in BenchmarkProblem::fast_suite() {
        let name = problem.name().to_string();
        analysis = analysis.problem(name, problem.fork());
    }
    analysis
        .estimator(Box::new(GradientImportanceSampling::new(
            GisConfig::default(),
        )))
        .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
}

/// A fast, deterministic retry policy for in-process reconnect tests.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 5,
        base_delay_ms: 1,
        max_delay_ms: 20,
        ..RetryPolicy::default()
    }
}

#[test]
fn injected_server_panic_is_quarantined_typed_and_never_cached() {
    let plan =
        FaultPlan::parse(&format!("panic:{FAULTED_PROBLEM}/{FAULTED_ESTIMATOR}")).expect("plan");
    let addr = start_server(ServerConfig {
        faults: Some(plan),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connects");

    // The run completes despite the persistently panicking cell.
    let receipt = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("job completes despite the injected panic");
    assert_eq!(receipt.cells_executed, 14);
    assert!(!receipt.partial);

    // Exactly the injected cell is quarantined, with a typed reason and
    // the full attempt budget recorded.
    assert_eq!(
        receipt.report.failed_cells(),
        vec![(FAULTED_PROBLEM.to_string(), FAULTED_ESTIMATOR.to_string())]
    );
    let failure = receipt.report.problems[0].methods[1]
        .failed
        .as_ref()
        .expect("quarantined cell carries its failure");
    assert!(matches!(
        &failure.reason,
        CellFailureReason::Panic { message } if message.contains("injected worker panic")
    ));
    assert_eq!(failure.attempts, 2);
    assert!(receipt.report.problems[0].methods[1]
        .outcome
        .result
        .failure_probability
        .is_nan());

    // Every healthy cell is bit-identical to the fault-free batch run.
    let batch = fast_batch_analysis(MASTER_SEED).run();
    for (pi, problem) in batch.problems.iter().enumerate() {
        for (ei, method) in problem.methods.iter().enumerate() {
            if (pi, ei) == (0, 1) {
                continue;
            }
            assert_eq!(
                &receipt.report.problems[pi].methods[ei], method,
                "healthy cell ({pi}, {ei}) must be untouched by the fault"
            );
        }
    }

    // Quarantined failures are never cached: a resubmission serves the 13
    // healthy cells from cache and gives the failed cell a fresh attempt.
    let again = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("resubmission completes");
    assert_eq!(again.cells_cached, 13);
    assert_eq!(again.cells_executed, 1);
    assert_eq!(again.report, receipt.report);

    client.shutdown().expect("clean shutdown");
}

#[test]
fn fault_clearing_within_the_retry_budget_leaves_no_trace() {
    // The fault fires on the first attempt only; the default budget of two
    // attempts retries the cell under the identical derived seed, so the
    // whole report is bit-identical to the fault-free batch run.
    let plan =
        FaultPlan::parse(&format!("panic:{FAULTED_PROBLEM}/{FAULTED_ESTIMATOR}:1")).expect("plan");
    let addr = start_server(ServerConfig {
        faults: Some(plan),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connects");

    let receipt = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("job completes");
    assert!(receipt.report.failed_cells().is_empty());
    assert_eq!(receipt.report, fast_batch_analysis(MASTER_SEED).run());

    client.shutdown().expect("clean shutdown");
}

#[test]
fn mid_stream_socket_drop_heals_without_recomputing_cells() {
    // Frame 8 of the first connection is the sixth cell row (Hello and
    // Accepted precede the cell stream); the server truncates it and slams
    // the socket. `times: 1` spends the whole drop budget there, so the
    // healed connection streams clean.
    let plan = FaultPlan::parse("drop-frame:8:1").expect("plan");
    let addr = start_server(ServerConfig {
        faults: Some(plan),
        ..ServerConfig::default()
    });

    let mut streamed = Vec::new();
    let receipt = submit_with_recovery(&addr, &fast_job(MASTER_SEED), &fast_retry(), &mut |cell| {
        streamed.push((cell.completed_cells, cell.cached));
    })
    .expect("job heals across the drop");

    // The client reconnected at least once and finished the same job.
    assert!(receipt.reconnects >= 1, "the drop must force a reconnect");
    assert!(!receipt.partial);

    // Progress dedup across reconnects: each of the 14 rows reached the
    // callback exactly once, in order, despite the replayed prefix.
    assert_eq!(
        streamed.iter().map(|s| s.0).collect::<Vec<_>>(),
        (1..=14).collect::<Vec<_>>()
    );

    // Nothing was recomputed: the two attempts together charged each cell
    // exactly once, with the healed attempt resuming from the cache.
    assert_eq!(receipt.cells_executed + receipt.cells_cached, 14);
    assert!(
        receipt.cells_cached > 0,
        "healed attempt must hit the cache"
    );
    let mut client = Client::connect(&addr).expect("status client connects");
    assert_eq!(client.status().expect("status").cells_executed, 14);

    // The healed report is still bit-identical to the batch path.
    assert_eq!(receipt.report, fast_batch_analysis(MASTER_SEED).run());

    client.shutdown().expect("clean shutdown");
}

#[test]
fn expired_deadline_degrades_to_a_typed_partial_result() {
    let addr = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("client connects");

    // A zero deadline expires before the first cell starts: every cell
    // degrades to a typed placeholder, nothing executes, and the `Done`
    // frame is marked partial.
    let mut job = fast_job(MASTER_SEED);
    job.deadline_ms = Some(0);
    let mut streamed = 0usize;
    let receipt = client
        .submit(&job, &mut |_| streamed += 1)
        .expect("partial job still completes");
    assert!(receipt.partial);
    assert_eq!(streamed, 0, "deadline placeholders are not streamed");
    assert_eq!(receipt.cells_executed + receipt.cells_cached, 0);
    assert_eq!(receipt.report.failed_cells().len(), 14);
    for problem in &receipt.report.problems {
        for method in &problem.methods {
            let failure = method.failed.as_ref().expect("placeholder is typed");
            assert!(matches!(
                failure.reason,
                CellFailureReason::DeadlineExceeded { .. }
            ));
        }
    }

    // Deadline placeholders are never cached or journaled: the same job
    // without a deadline runs every cell fresh and matches the batch path.
    let full = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("full job runs");
    assert_eq!(full.cells_executed, 14);
    assert!(!full.partial);
    assert_eq!(full.report, fast_batch_analysis(MASTER_SEED).run());

    client.shutdown().expect("clean shutdown");
}

#[test]
fn torn_journal_line_costs_exactly_one_cell_on_restart() {
    let dir = scratch_dir("torn_journal_restart");
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    // First lifetime: the final journal append (the job line plus cells
    // one through thirteen precede it) is torn mid-line, simulating a
    // crash mid-write. The tail is torn (rather than an interior line)
    // because a torn interior line has no newline, so the next append
    // merges into it and two records are lost instead of one — the
    // interior case is covered by the sweep checkpoint tests. The running
    // server is unaffected either way: its cache holds the real result.
    let plan = FaultPlan::parse("torn-journal:15").expect("plan");
    let addr = start_server(ServerConfig {
        journal: Some(journal.clone()),
        faults: Some(plan),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client connects");
    let fresh = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("fresh run");
    assert_eq!(fresh.cells_executed, 14);
    client.shutdown().expect("clean shutdown");

    // Second lifetime, no faults: the replay drops exactly the torn tail
    // line, so one cell (and only that cell) is recomputed — and it
    // reconverges to the identical row.
    let addr = start_server(ServerConfig {
        journal: Some(journal.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("client reconnects");
    let resumed = client
        .submit(&fast_job(MASTER_SEED), &mut |_| {})
        .expect("resumed run");
    assert_eq!(resumed.cells_cached, 13);
    assert_eq!(resumed.cells_executed, 1);
    assert_eq!(resumed.report, fresh.report);
    client.shutdown().expect("clean shutdown");

    let _ = std::fs::remove_dir_all(&dir);
}
