//! Integration tests of the statistical calibration harness: the benchmark
//! problem library's ground truth, empirical confidence-interval coverage
//! within the binomial acceptance band for all five estimators, and the
//! bit-identity of calibration reports across thread counts.
//!
//! This is the tier-1 guard for the contract the `bench_calibration` binary
//! gates in CI at full scale (100 replications × 7 problems): a reduced but
//! real matrix (40 replications × 3 problems × all 5 estimators) must show
//! coverage inside the acceptance band, and the replication matrix must be
//! exactly reproducible at any dispatch width.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::assert_close_rel;
use sram_highsigma::highsigma::{
    standard_estimators, BenchmarkProblem, CalibrationReport, Calibrator, ConvergencePolicy,
    ExecutionConfig,
};

/// A reduced calibration matrix small enough for debug-mode test runs:
/// budget-pinned policy (no early stopping — the gate calibrates the error
/// bar formulas at fixed cost), 32 replications.
fn reduced_calibrator() -> Calibrator {
    Calibrator::new()
        .master_seed(20180319)
        .replications(32)
        .confidence_level(0.9)
        .band_alpha(0.002)
        .convergence_policy(
            ConvergencePolicy::with_budget(3_000)
                .target_relative_error(1e-12)
                .min_failures(u64::MAX),
        )
        .problems(vec![
            BenchmarkProblem::linear(6, 2.5),
            BenchmarkProblem::correlated(8, 2.5, 0.5),
            BenchmarkProblem::quadratic(6, 2.5, 0.05),
        ])
        .estimators(standard_estimators())
}

#[test]
fn all_five_estimators_cover_within_the_acceptance_band() {
    let report = reduced_calibrator().run();
    assert_eq!(report.rows.len(), 3 * 5);
    for row in &report.rows {
        assert!(
            row.within_band,
            "{}/{}: coverage {}/{} outside band [{:.0}, {:.0}]",
            row.problem,
            row.estimator,
            row.covered,
            row.replications,
            row.band_lower * row.replications as f64,
            row.band_upper * row.replications as f64
        );
        // The self-reported error must be in the same regime as the error
        // actually achieved (order-of-magnitude honesty, scale-free).
        if row.mean_reported_relative_error.is_finite() {
            assert!(
                row.mean_reported_relative_error > 0.2 * row.relative_rmse
                    && row.mean_reported_relative_error < 5.0 * row.relative_rmse,
                "{}/{}: claims {:.1}% but achieves {:.1}%",
                row.problem,
                row.estimator,
                row.mean_reported_relative_error * 100.0,
                row.relative_rmse * 100.0
            );
        }
        assert!(row.mean_evaluations > 0.0);
    }
    assert!(report.all_within_band());
    assert!(report.violations().is_empty());
    assert!(report.worst_band_margin() >= 0.0);
}

#[test]
fn calibration_report_is_bit_identical_across_matrix_thread_counts() {
    // The replication matrix is dispatched as independent seeded tasks, so
    // the report must not depend on the dispatch width — this is what lets
    // CI compare GIS_THREADS=1 and GIS_THREADS=4 runs of this very test.
    let serial = reduced_calibrator().matrix(ExecutionConfig::serial()).run();
    let parallel = reduced_calibrator()
        .matrix(ExecutionConfig::with_threads(8))
        .run();
    assert_eq!(parallel, serial, "diverged at 8 matrix threads");
    // Per-estimator executors must not leak into the statistics either.
    let exec_parallel = reduced_calibrator()
        .execution(ExecutionConfig::with_threads(4))
        .run();
    assert_eq!(exec_parallel.rows, serial.rows);
}

#[test]
fn benchmark_ground_truths_are_internally_consistent() {
    // Exact generators agree with the normal-tail arithmetic they advertise.
    use sram_highsigma::stats::normal::upper_tail_probability;
    let linear = BenchmarkProblem::linear(6, 4.0);
    assert_close_rel(
        linear.exact_probability(),
        upper_tail_probability(4.0),
        1e-14,
        "linear ground truth",
    );
    let correlated = BenchmarkProblem::correlated(8, 4.0, 0.5);
    assert_close_rel(
        correlated.exact_probability(),
        upper_tail_probability(4.0),
        1e-14,
        "correlated ground truth",
    );
    let bimodal = BenchmarkProblem::bimodal(6, 4.0);
    assert_close_rel(
        bimodal.exact_probability(),
        2.0 * upper_tail_probability(4.0),
        1e-14,
        "bimodal ground truth",
    );
    let p1 = upper_tail_probability(3.0);
    let p2 = upper_tail_probability(4.0);
    let union = BenchmarkProblem::union(6, 3.0, 4.0);
    assert_close_rel(
        union.exact_probability(),
        p1 + p2 - p1 * p2,
        1e-14,
        "union ground truth",
    );
    // Sigma levels round-trip through the quantile at far-tail accuracy.
    for bench in BenchmarkProblem::standard_suite() {
        assert_close_rel(
            upper_tail_probability(bench.exact_sigma_level()),
            bench.exact_probability(),
            1e-9,
            bench.name(),
        );
    }
}

#[test]
fn calibration_report_round_trips_through_json() {
    let report = Calibrator::new()
        .master_seed(5)
        .replications(8)
        .convergence_policy(ConvergencePolicy::with_budget(1_000))
        .problem(BenchmarkProblem::linear(4, 2.0))
        .estimators(standard_estimators())
        .run();
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back: CalibrationReport = serde_json::from_str(&json).expect("round trips");
    assert_eq!(back, report);
    assert_eq!(back.rows.len(), 5);
}
