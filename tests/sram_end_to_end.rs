//! End-to-end integration tests of the full stack: variation model → SRAM
//! testbench / surrogate → failure problem → extraction.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    default_sram_variation_space, Estimator, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, MonteCarlo, MonteCarloConfig, MpfpConfig, Spec, SramMetric,
    SramSurrogateModel, SramTransientModel,
};
use sram_highsigma::linalg::Vector;
use sram_highsigma::sram::{CellTransistor, SramCellConfig, SramSurrogate, SramTestbench};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

fn surrogate_model(metric: SramMetric) -> SramSurrogateModel {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    SramSurrogateModel::new(SramSurrogate::typical_45nm(), space, metric)
}

#[test]
fn gis_agrees_with_brute_force_at_moderate_sigma_on_surrogate() {
    // A loose spec (1.25x nominal) puts the failure probability around 1e-2 to
    // 1e-3, where brute-force Monte Carlo is cheap enough to serve as ground
    // truth for the whole surrogate-backed pipeline.
    let model = surrogate_model(SramMetric::ReadAccessTime);
    let nominal = model.nominal_metric();
    let problem = FailureProblem::from_model(model, Spec::UpperLimit(1.25 * nominal));

    let mc = MonteCarlo::new(MonteCarloConfig {
        corrected_stopping: true,
        max_samples: 400_000,
        batch_size: 20_000,
        target_relative_error: 0.05,
        min_failures: 100,
    });
    let mc_result = mc
        .estimate(&problem.fork(), &mut RngStream::from_seed(1))
        .result;
    assert!(
        mc_result.failures_observed >= 100,
        "spec too tight for the MC reference"
    );

    let gis = GradientImportanceSampling::new(GisConfig {
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 40_000,
            batch_size: 1_000,
            target_relative_error: 0.05,
            min_failures: 50,
        },
        ..GisConfig::default()
    });
    let gis_outcome = gis.estimate(&problem.fork(), &mut RngStream::from_seed(2));

    let mc_p = mc_result.failure_probability;
    let gis_p = gis_outcome.result.failure_probability;
    let rel = (gis_p - mc_p).abs() / mc_p;
    assert!(
        rel < 0.2,
        "GIS ({gis_p:e}) and brute-force MC ({mc_p:e}) disagree by {rel:.2}"
    );
}

#[test]
fn high_sigma_read_extraction_on_surrogate_is_consistent_and_cheap() {
    // A 1.6x-nominal spec puts the true failure probability in the 4σ–5σ range
    // for the default Pelgrom mismatch — squarely "high sigma" yet still
    // resolvable with tight confidence by the default GIS budget.
    let model = surrogate_model(SramMetric::ReadAccessTime);
    let nominal = model.nominal_metric();
    let problem = FailureProblem::from_model(model, Spec::UpperLimit(1.6 * nominal));

    let gis = GradientImportanceSampling::new(GisConfig::default());
    let outcome = gis.estimate(&problem, &mut RngStream::from_seed(3));
    assert!(
        outcome.result.converged,
        "GIS did not converge: {:?}",
        outcome.result
    );
    // The failure probability must be genuinely high-sigma for this spec.
    assert!(outcome.result.failure_probability < 1e-3);
    assert!(outcome.result.failure_probability > 1e-12);
    assert!(outcome.result.sigma_level > 3.0);
    // And the extraction must be cheap.
    assert!(outcome.result.evaluations < 100_000);
    // The MPFP must point towards a weaker read path (positive shifts on the
    // pass-gate / pull-down parameters).
    let shift = outcome.shift().unwrap().to_vec();
    assert!(
        shift[CellTransistor::PassGateLeft.index()] > 0.0
            || shift[CellTransistor::PullDownLeft.index()] > 0.0,
        "MPFP direction {shift:?} does not weaken the read path"
    );
}

#[test]
fn write_and_disturb_metrics_are_extractable() {
    for metric in [SramMetric::WriteDelay, SramMetric::ReadDisturb] {
        let model = surrogate_model(metric);
        let nominal = model.nominal_metric();
        let spec = match metric {
            SramMetric::WriteDelay => Spec::UpperLimit(3.0 * nominal),
            SramMetric::ReadDisturb => Spec::UpperLimit(0.5),
            SramMetric::ReadAccessTime => unreachable!(),
        };
        let problem = FailureProblem::from_model(model, spec);
        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: 60_000,
                batch_size: 1_000,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..GisConfig::default()
        });
        let outcome = gis.estimate(&problem, &mut RngStream::from_seed(7));
        assert!(
            outcome.result.failure_probability > 0.0,
            "{metric:?}: no failures found"
        );
        assert!(
            outcome.result.sigma_level > 2.0,
            "{metric:?}: spec not in the tail (sigma {})",
            outcome.result.sigma_level
        );
    }
}

#[test]
fn transient_and_surrogate_rank_variation_directions_identically() {
    // The surrogate is only useful if it agrees with the transient testbench on
    // *which* variations hurt. Check the sign and ordering of the sensitivity
    // of the read access time on a few probe points.
    let tb = SramTestbench::typical_45nm();
    let surrogate = SramSurrogate::calibrated_to(&tb).expect("calibration succeeds");
    let probe = 0.08; // 80 mV, ≈ 2 sigma of the pass-gate mismatch

    for which in [CellTransistor::PassGateLeft, CellTransistor::PullDownLeft] {
        let mut deltas = [0.0; 6];
        deltas[which.index()] = probe;
        let slow_tb = tb.read(&deltas).unwrap().access_time;
        let slow_sur = surrogate.read_access_time(&deltas);
        let nominal_tb = tb.read(&[0.0; 6]).unwrap().access_time;
        let nominal_sur = surrogate.read_access_time(&[0.0; 6]);
        assert!(slow_tb > nominal_tb, "{which:?}: transient not slower");
        assert!(slow_sur > nominal_sur, "{which:?}: surrogate not slower");
    }
    // A weaker pull-up barely matters for the read path in either model.
    let mut deltas = [0.0; 6];
    deltas[CellTransistor::PullUpLeft.index()] = probe;
    let tb_change =
        (tb.read(&deltas).unwrap().access_time - tb.read(&[0.0; 6]).unwrap().access_time).abs()
            / tb.read(&[0.0; 6]).unwrap().access_time;
    assert!(
        tb_change < 0.2,
        "pull-up should be a second-order effect, saw {tb_change}"
    );
}

#[test]
fn gis_runs_against_the_full_transient_simulator() {
    // Smoke-level budget: every evaluation is a real backward-Euler transient,
    // so keep the counts small but exercise the complete path.
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramTransientModel::new(
        SramTestbench::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    );
    let nominal = model.nominal_metric();
    assert!(nominal > 0.0 && nominal < 2e-9);

    let problem = FailureProblem::from_model(model, Spec::UpperLimit(1.6 * nominal));
    let gis = GradientImportanceSampling::new(GisConfig {
        mpfp: MpfpConfig {
            max_evaluations: 400,
            max_iterations: 25,
            ..MpfpConfig::default()
        },
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 400,
            batch_size: 100,
            target_relative_error: 0.3,
            min_failures: 10,
        },
        ..GisConfig::default()
    });
    let outcome = gis.estimate(&problem, &mut RngStream::from_seed(13));
    assert!(outcome.result.evaluations > 0);
    assert!(outcome.result.failure_probability >= 0.0);
    assert!(outcome.mpfp().unwrap().beta > 0.0);
    // The proposal shift must describe a weakened read path, as with the surrogate.
    let shift = Vector::from_slice(outcome.shift().unwrap());
    assert!(shift.norm() > 1.0);
}

#[test]
fn spec_helpers_are_consistent_with_metrics() {
    let model = surrogate_model(SramMetric::ReadAccessTime);
    let nominal = model.nominal_metric();
    let spec = Spec::UpperLimit(1.5 * nominal);
    // The nominal design passes its own spec.
    assert!(!spec.is_failure(nominal));
    assert!(spec.failure_margin(nominal) < 0.0);
    // A metric beyond the limit fails.
    assert!(spec.is_failure(2.0 * nominal));
    // Evaluating through the problem counts simulations.
    let problem = FailureProblem::from_model(model, spec);
    let z = Vector::zeros(problem.dim());
    assert!(!problem.is_failure(&z));
    assert_eq!(problem.evaluations(), 1);
}
