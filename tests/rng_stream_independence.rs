//! Property tests of `RngStream::split` substream independence — the
//! statistical foundation under `Executor::map_rng`'s determinism contract.
//!
//! `map_rng` hands chunk `c` the substream `rng.split(c)`; if those
//! substreams were correlated (or non-uniform), every "thread-count
//! invariant" randomized workload would be silently biased. These tests pin
//! the substreams used at the actual chunk boundaries with chi-square
//! uniformity tests and cross-stream correlation bounds, using the
//! goodness-of-fit helpers from `gis_stats` and the chi-square survival
//! function from `gis_core::special`.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sram_highsigma::highsigma::special::chi_square_survival;
use sram_highsigma::highsigma::{exec::DEFAULT_CHUNK_SIZE, Executor};
use sram_highsigma::stats::{chi_square_statistic, pearson_correlation, RngStream};

/// Chi-square uniformity p-value of `samples` over equiprobable bins.
fn uniformity_p_value(samples: &[f64], bins: usize) -> f64 {
    let mut observed = vec![0u64; bins];
    for &u in samples {
        assert!((0.0..1.0).contains(&u), "uniform sample out of range: {u}");
        observed[((u * bins as f64) as usize).min(bins - 1)] += 1;
    }
    let expected = vec![samples.len() as f64 / bins as f64; bins];
    let statistic = chi_square_statistic(&observed, &expected);
    chi_square_survival(bins - 1, statistic)
}

/// Draws `n` uniforms from the substream `map_rng` assigns to chunk `c`.
fn substream_uniforms(parent: &RngStream, chunk: u64, n: usize) -> Vec<f64> {
    let mut stream = parent.split(chunk);
    (0..n).map(|_| stream.uniform()).collect()
}

#[test]
fn substreams_at_map_rng_chunk_boundaries_are_uniform() {
    // The exact substreams a default-chunked map_rng over 10 × chunk_size
    // items uses: chunk indices 0..10. Each must individually pass a
    // chi-square uniformity test at a comfortable significance level.
    let parent = RngStream::from_seed(20180319);
    for chunk in 0..10u64 {
        let samples = substream_uniforms(&parent, chunk, 4_000);
        let p = uniformity_p_value(&samples, 20);
        assert!(
            p > 1e-4,
            "substream for chunk {chunk} fails uniformity (p = {p:.2e})"
        );
    }
    // The *concatenation* in chunk order — exactly what a map_rng consumer
    // observes across chunk boundaries — must also be uniform.
    let concatenated: Vec<f64> = (0..10u64)
        .flat_map(|c| substream_uniforms(&parent, c, DEFAULT_CHUNK_SIZE))
        .collect();
    let p = uniformity_p_value(&concatenated, 16);
    assert!(
        p > 1e-4,
        "concatenated chunk streams fail uniformity (p = {p:.2e})"
    );
}

#[test]
fn adjacent_and_distant_substreams_are_uncorrelated() {
    let parent = RngStream::from_seed(7);
    let n = 4_000;
    // 4/sqrt(n) ≈ 4-sigma bound on the correlation of independent samples.
    let bound = 4.0 / (n as f64).sqrt();
    let reference = substream_uniforms(&parent, 0, n);
    for other in [1u64, 2, 31, 32, 33, 1_000, u64::MAX / 2] {
        let stream = substream_uniforms(&parent, other, n);
        let r = pearson_correlation(&reference, &stream);
        assert!(
            r.abs() < bound,
            "chunks 0 and {other} correlate (r = {r:.4}, bound {bound:.4})"
        );
    }
    // Parent stream vs its own substream: deriving children must not
    // correlate with continuing to draw from the parent.
    let mut parent_draws = RngStream::from_seed(7);
    let parent_samples: Vec<f64> = (0..n).map(|_| parent_draws.uniform()).collect();
    let r = pearson_correlation(&parent_samples, &reference);
    assert!(
        r.abs() < bound,
        "parent and split(0) correlate (r = {r:.4})"
    );
}

#[test]
fn lagged_self_correlation_within_a_substream_is_bounded() {
    // A weak generator can pass marginal uniformity while successive draws
    // correlate; map_rng consumers draw vectors, so serial correlation would
    // bias whole sample points.
    let parent = RngStream::from_seed(99);
    let samples = substream_uniforms(&parent, 3, 8_001);
    let bound = 4.0 / (8_000f64).sqrt();
    for lag in [1usize, 2, 6] {
        let r = pearson_correlation(&samples[..samples.len() - lag], &samples[lag..]);
        assert!(
            r.abs() < bound,
            "lag-{lag} self-correlation {r:.4} exceeds {bound:.4}"
        );
    }
}

#[test]
fn map_rng_output_is_statistically_sound_end_to_end() {
    // Run map_rng the way estim-style workloads do (normal variates, default
    // chunking, parallel executor) and test the *moments* of the assembled
    // output: mean ~ 0, variance ~ 1 within 4-sigma Monte Carlo bounds.
    let rng = RngStream::from_seed(42);
    let n = 20_000;
    let normals = Executor::new(4).map_rng(&rng, n, |stream, _| stream.standard_normal());
    let nf = n as f64;
    let mean = normals.iter().sum::<f64>() / nf;
    let variance = normals.iter().map(|z| z * z).sum::<f64>() / nf - mean * mean;
    assert!(mean.abs() < 4.0 / nf.sqrt(), "mean {mean} biased");
    // Var of the sample variance of a normal is ~2/n.
    assert!(
        (variance - 1.0).abs() < 4.0 * (2.0 / nf).sqrt(),
        "variance {variance} biased"
    );
    // And the probability-integral transform of the normals is uniform.
    let transformed: Vec<f64> = normals
        .iter()
        .map(|&z| sram_highsigma::stats::normal::cdf(z).clamp(0.0, 1.0 - f64::EPSILON))
        .collect();
    let p = uniformity_p_value(&transformed, 24);
    assert!(
        p > 1e-4,
        "PIT of map_rng normals fails uniformity (p = {p:.2e})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For arbitrary parent seeds and chunk pairs, substreams stay
    /// reproducible, distinct and uncorrelated (loose 5-sigma bound; the
    /// fixed-seed tests above carry the tight assertions).
    #[test]
    fn split_independence_holds_for_arbitrary_seeds(
        seed in 0u64..u64::MAX,
        chunk_a in 0u64..1_000,
        offset in 1u64..1_000,
    ) {
        let parent = RngStream::from_seed(seed);
        let chunk_b = chunk_a + offset;
        let n = 800;
        let a1 = substream_uniforms(&parent, chunk_a, n);
        let a2 = substream_uniforms(&parent, chunk_a, n);
        prop_assert_eq!(&a1, &a2, "substreams must be reproducible");
        let b = substream_uniforms(&parent, chunk_b, n);
        prop_assert!(a1 != b, "distinct chunks must give distinct streams");
        let r = pearson_correlation(&a1, &b);
        prop_assert!(r.abs() < 5.0 / (n as f64).sqrt(), "correlation {} too large", r);
        // Both children individually uniform at a forgiving level.
        prop_assert!(uniformity_p_value(&a1, 10) > 1e-5);
        prop_assert!(uniformity_p_value(&b, 10) > 1e-5);
    }
}
