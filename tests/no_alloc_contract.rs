//! Runtime half of the determinism & hot-path contract (see `gis-analyze` and
//! README "Static analysis & invariants"): a counting global allocator proves
//! that the paths *marked* `gis-analyze: no_alloc` — the sparse Newton kernel
//! and the estimator accumulators — really perform zero steady-state heap
//! allocations, and that a full transient evaluation settles to a constant
//! per-sample allocation count once its workspace is warm.
//!
//! The static analyzer rejects allocation *syntax* inside marked functions;
//! this test closes the remaining gap (allocations reached through calls into
//! other crates) by measuring the real allocator.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sram_highsigma::circuit::mna::MAX_NEWTON_ITERATIONS;
use sram_highsigma::circuit::{
    Circuit, CircuitError, LockstepWorkspace, MnaSystem, SimulationWorkspace, SourceWaveform,
};
use sram_highsigma::highsigma::IsAccumulator;
use sram_highsigma::sram::{build_6t_cell, SramCellConfig, SramTestbench};

/// A pass-through allocator over [`System`] that counts every allocation
/// request (`alloc`, `alloc_zeroed`, `realloc`). Deallocations are not
/// counted: the contract under test is "no new heap traffic", and a free
/// without a matching measured alloc cannot occur inside a measurement
/// window that starts and ends on the same thread.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The allocation counter is process-wide, so the tests in this file must not
/// run concurrently: libtest's parallel runner would attribute one test's
/// allocations to another's measurement window. Every test takes this lock
/// before doing any work.
static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` and returns how many allocation requests it issued.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, result)
}

/// Builds the read-condition 6T netlist from `SramTestbench::read_session`
/// (supply + asserted wordline + precharged-bitline capacitors) for driving
/// the sparse Newton kernel directly.
fn read_condition_circuit(cfg: &SramCellConfig, vth_deltas: &[f64; 6]) -> Circuit {
    let mut ckt = Circuit::new();
    let nodes = build_6t_cell(&mut ckt, cfg, vth_deltas).unwrap();
    ckt.add_voltage_source(
        "V_VDD",
        nodes.vdd,
        Circuit::ground(),
        SourceWaveform::dc(cfg.vdd),
    );
    // Wordline asserted: the access transistors conduct, so the bitline nodes
    // have a resistive path and the DC system is well-posed.
    ckt.add_voltage_source(
        "V_WL",
        nodes.wordline,
        Circuit::ground(),
        SourceWaveform::dc(cfg.vdd),
    );
    ckt.add_capacitor(
        "C_BL",
        nodes.bitline,
        Circuit::ground(),
        cfg.bitline_capacitance,
    )
    .unwrap();
    ckt.add_capacitor(
        "C_BLB",
        nodes.bitline_bar,
        Circuit::ground(),
        cfg.bitline_capacitance,
    )
    .unwrap();
    ckt
}

/// The PR 5 claim, enforced: once a [`SimulationWorkspace`] is bound to a
/// topology, repeated `solve_newton_in` calls perform **zero** heap
/// allocations — the whole symbolic plan and every numeric buffer are reused.
#[test]
fn sparse_newton_steady_state_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let cfg = SramCellConfig::typical_45nm();
    let ckt = read_condition_circuit(&cfg, &[0.0; 6]);
    let system = MnaSystem::new(&ckt).unwrap();
    let mut ws = SimulationWorkspace::new();

    // Warm-up: the first call binds the workspace (symbolic factorization,
    // numeric buffers) and is allowed to allocate.
    system
        .solve_newton_in(&mut ws, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
        .unwrap();

    for round in 0..5 {
        let (allocs, iterations) = allocations_during(|| {
            system
                .solve_newton_in(&mut ws, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
                .unwrap()
        });
        assert!(iterations <= MAX_NEWTON_ITERATIONS);
        assert_eq!(
            allocs, 0,
            "steady-state sparse Newton solve allocated on round {round}"
        );
    }
}

/// The lockstep mirror of the claim above: once a [`LockstepWorkspace`] is
/// bound and its elimination program is recorded, repeated
/// `solve_newton_lockstep_in` calls over a full four-lane group perform
/// **zero** heap allocations — stamping, factorization replay and the
/// per-lane Newton updates all run inside preallocated lane-major buffers.
#[test]
fn lockstep_newton_steady_state_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let cfg = SramCellConfig::typical_45nm();
    // Four lanes with distinct threshold shifts on one shared topology.
    let owned: Vec<Circuit> = (0..4)
        .map(|lane| read_condition_circuit(&cfg, &[0.005 * lane as f64; 6]))
        .collect();
    let circuits: Vec<&Circuit> = owned.iter().collect();
    let system = MnaSystem::new(circuits[0]).unwrap();
    let mut ws = LockstepWorkspace::new();
    let mut errors: Vec<Option<CircuitError>> = vec![None; 4];
    let mut iterations = [0usize; 4];

    // Warm-up: binds the workspace and records the elimination program.
    let mut alive = [true; 4];
    system.solve_newton_lockstep_in(
        &mut ws,
        &circuits,
        0.0,
        None,
        "dc",
        MAX_NEWTON_ITERATIONS,
        false,
        &mut alive,
        &mut errors,
        &mut iterations,
    );
    assert!(alive.iter().all(|&a| a), "warm-up lanes must converge");

    for round in 0..5 {
        let mut alive = [true; 4];
        let (allocs, ()) = allocations_during(|| {
            system.solve_newton_lockstep_in(
                &mut ws,
                &circuits,
                0.0,
                None,
                "dc",
                MAX_NEWTON_ITERATIONS,
                false,
                &mut alive,
                &mut errors,
                &mut iterations,
            );
        });
        assert!(
            alive.iter().all(|&a| a),
            "round {round} lanes must converge"
        );
        assert!(errors.iter().all(Option::is_none));
        assert_eq!(
            allocs, 0,
            "steady-state lockstep Newton solve allocated on round {round}"
        );
    }
}

/// The estimator-reduce hot path (`IsAccumulator::push`/`merge`, both marked
/// `no_alloc`) must not touch the heap: it runs once per Monte Carlo sample.
#[test]
fn is_accumulator_push_and_merge_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap();
    let mut lane_a = IsAccumulator::new();
    let mut lane_b = IsAccumulator::new();

    let (allocs, ()) = allocations_during(|| {
        lane_a.push(0.25, true);
        lane_a.push(0.0, false);
        lane_a.push(1.5e-3, true);
        lane_b.push(0.75, true);
        lane_a.merge(&lane_b);
    });

    assert_eq!(allocs, 0, "IsAccumulator push/merge allocated");
    assert_eq!(lane_a.samples(), 4);
    assert_eq!(lane_a.failures(), 3);
}

/// A full transient evaluation through a warm session must settle to a
/// *constant* per-sample allocation count: whatever a run allocates is result
/// storage with a fixed shape, not traffic that grows or varies with reuse.
/// (The Newton/LU inner loops contribute zero — the test above — so any
/// constant here is parameter injection and waveform bookkeeping.)
#[test]
fn transient_sessions_have_constant_per_eval_allocations() {
    let _serial = SERIAL.lock().unwrap();
    let tb = SramTestbench::typical_45nm();
    let deltas = [0.01, -0.02, 0.005, -0.01, 0.015, 0.0];

    let mut read = tb.read_session().unwrap();
    read.run(&deltas).unwrap(); // warm-up: binds the workspace
    let (read_allocs_1, r1) = allocations_during(|| read.run(&deltas).unwrap());
    let (read_allocs_2, r2) = allocations_during(|| read.run(&deltas).unwrap());
    assert_eq!(r1, r2, "warm read session must stay bit-identical");
    assert_eq!(
        read_allocs_1, read_allocs_2,
        "per-eval allocation count of a warm read session must be constant"
    );

    let mut write = tb.write_session().unwrap();
    write.run(&deltas).unwrap(); // warm-up: binds the workspace
    let (write_allocs_1, w1) = allocations_during(|| write.run(&deltas).unwrap());
    let (write_allocs_2, w2) = allocations_during(|| write.run(&deltas).unwrap());
    assert_eq!(w1, w2, "warm write session must stay bit-identical");
    assert_eq!(
        write_allocs_1, write_allocs_2,
        "per-eval allocation count of a warm write session must be constant"
    );
}
