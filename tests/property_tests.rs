//! Property-based tests (proptest) on the core data structures and invariants
//! of the suite: linear algebra factorizations, distribution round trips,
//! importance-weight bounds, variation-space transforms and surrogate
//! monotonicity.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sram_highsigma::highsigma::{IsAccumulator, Proposal, Spec};
use sram_highsigma::linalg::{Cholesky, LuDecomposition, Matrix, Vector};
use sram_highsigma::sram::{CellTransistor, SramSurrogate};
use sram_highsigma::stats::{normal, OnlineStats, RngStream};
use sram_highsigma::variation::{VariationParameter, VariationSpace};

fn well_conditioned_matrix(values: &[f64], n: usize) -> Matrix {
    let mut m = Matrix::from_fn(n, n, |i, j| values[i * n + j]);
    for i in 0..n {
        m[(i, i)] += n as f64 + 1.0;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_produces_small_residual(
        values in prop::collection::vec(-1.0f64..1.0, 16),
        rhs in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let a = well_conditioned_matrix(&values, 4);
        let b = Vector::from_slice(&rhs);
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let residual = &a.matvec(&x).unwrap() - &b;
        prop_assert!(residual.norm() < 1e-8 * (1.0 + b.norm()));
    }

    #[test]
    fn cholesky_reconstructs_spd_matrices(
        values in prop::collection::vec(-1.0f64..1.0, 9),
    ) {
        // Build an SPD matrix A = B Bᵀ + 4 I.
        let b = Matrix::from_fn(3, 3, |i, j| values[i * 3 + j]);
        let mut a = b.matmul(&b.transposed()).unwrap();
        for i in 0..3 {
            a[(i, i)] += 4.0;
        }
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let reconstructed = l.matmul(&l.transposed()).unwrap();
        prop_assert!((&reconstructed - &a).norm_frobenius() < 1e-9 * a.norm_frobenius());
        // Whiten inverts color.
        let z = Vector::from_slice(&[values[0], values[1], values[2]]);
        let back = chol.whiten(&chol.color(&z).unwrap()).unwrap();
        prop_assert!((&back - &z).norm() < 1e-8);
    }

    #[test]
    fn normal_quantile_inverts_cdf(x in -6.0f64..6.0) {
        // The round-trip error is limited by representing p near 1 (the
        // quantile's sensitivity there is 1/φ(6) ≈ 1.6e8 per ulp of p), not
        // by the algorithms — so the bound is ~1e-8, not the 1e-5 that once
        // hid a polynomial-accuracy quantile.
        let p = normal::cdf(x);
        prop_assert!((normal::quantile(p) - x).abs() < 5e-8,
            "quantile(cdf({})) = {}", x, normal::quantile(p));
    }

    #[test]
    fn normal_tail_is_monotone_decreasing(a in 0.0f64..7.0, b in 0.0f64..7.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(normal::upper_tail_probability(hi) <= normal::upper_tail_probability(lo) + 1e-18);
    }

    #[test]
    fn defensive_mixture_weights_are_bounded(
        shift in prop::collection::vec(-5.0f64..5.0, 4),
        point in prop::collection::vec(-8.0f64..8.0, 4),
        fraction in 0.05f64..0.5,
    ) {
        let proposal = Proposal::defensive_mixture(Vector::from_slice(&shift), fraction);
        let w = proposal.importance_weight(&Vector::from_slice(&point));
        prop_assert!(w.is_finite());
        prop_assert!(w >= 0.0);
        prop_assert!(w <= 1.0 / fraction + 1e-9, "weight {w} exceeds bound {}", 1.0 / fraction);
    }

    #[test]
    fn variation_space_round_trips(
        sigmas in prop::collection::vec(0.005f64..0.1, 6),
        z in prop::collection::vec(-6.0f64..6.0, 6),
    ) {
        let space = VariationSpace::independent(
            sigmas.iter().enumerate().map(|(i, &s)| VariationParameter::new(format!("p{i}"), s)),
        );
        let z = Vector::from_slice(&z);
        let physical = space.to_physical(&z);
        let back = space.to_whitened(&physical);
        prop_assert!((&back - &z).norm() < 1e-9);
        // Physical deltas scale with the per-parameter sigma.
        for i in 0..6 {
            prop_assert!((physical[i] - sigmas[i] * z[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn surrogate_read_time_is_monotone_in_read_path_vth(
        base in -0.05f64..0.05,
        increment in 0.005f64..0.15,
    ) {
        let surrogate = SramSurrogate::typical_45nm();
        let mut weak = [0.0; 6];
        weak[CellTransistor::PassGateLeft.index()] = base;
        let mut weaker = weak;
        weaker[CellTransistor::PassGateLeft.index()] = base + increment;
        prop_assert!(
            surrogate.read_access_time(&weaker) >= surrogate.read_access_time(&weak)
        );
        // The same monotonicity holds for the pull-down device.
        let mut weak_pd = [0.0; 6];
        weak_pd[CellTransistor::PullDownLeft.index()] = base;
        let mut weaker_pd = weak_pd;
        weaker_pd[CellTransistor::PullDownLeft.index()] = base + increment;
        prop_assert!(
            surrogate.read_access_time(&weaker_pd) >= surrogate.read_access_time(&weak_pd)
        );
    }

    #[test]
    fn surrogate_metrics_are_positive_and_finite(
        deltas in prop::collection::vec(-0.3f64..0.3, 6),
    ) {
        let surrogate = SramSurrogate::typical_45nm();
        let read = surrogate.read_access_time(&deltas);
        let write = surrogate.write_delay(&deltas);
        let disturb = surrogate.read_disturb_voltage(&deltas);
        prop_assert!(read.is_finite() && read > 0.0);
        prop_assert!(write.is_finite() && write > 0.0);
        prop_assert!(disturb.is_finite() && (0.0..=1.0).contains(&disturb));
    }

    #[test]
    fn spec_margin_sign_matches_failure_decision(
        limit in 0.1f64..10.0,
        metric in 0.0f64..20.0,
        upper in prop::bool::ANY,
    ) {
        let spec = if upper { Spec::UpperLimit(limit) } else { Spec::LowerLimit(limit) };
        let margin = spec.failure_margin(metric);
        if margin > 0.0 {
            prop_assert!(spec.is_failure(metric));
        }
        if margin < 0.0 {
            prop_assert!(!spec.is_failure(metric));
        }
    }

    #[test]
    fn online_stats_match_two_pass_computation(
        data in prop::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let stats: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let variance = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / (data.len() - 1) as f64;
        prop_assert!((stats.mean() - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        prop_assert!((stats.sample_variance() - variance).abs() < 1e-7 * (1.0 + variance));
    }

    #[test]
    fn rng_streams_are_reproducible(seed in 0u64..u64::MAX, n in 1usize..50) {
        let mut a = RngStream::from_seed(seed);
        let mut b = RngStream::from_seed(seed);
        for _ in 0..n {
            prop_assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
        }
    }

    #[test]
    fn is_accumulator_variance_matches_two_pass_reference_under_chunked_merging(
        log_weights in prop::collection::vec(-8.0f64..8.0, 8..200),
        fail_seed in 0u64..u64::MAX,
        chunk_size in 1usize..40,
    ) {
        // Weights spanning ~7 orders of magnitude with a random failure
        // pattern, accumulated (a) sequentially and (b) merged from chunks:
        // both standard errors must match an exact two-pass computation.
        let mut fail_rng = RngStream::from_seed(fail_seed);
        let samples: Vec<(f64, bool)> = log_weights
            .iter()
            .map(|&lw| (lw.exp(), fail_rng.uniform() < 0.4))
            .collect();

        let n = samples.len() as f64;
        let xs: Vec<f64> = samples
            .iter()
            .map(|&(w, failed)| if failed { w } else { 0.0 })
            .collect();
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let two_pass_se = (m2 / (n - 1.0) / n).sqrt();

        let mut sequential = IsAccumulator::new();
        for &(w, failed) in &samples {
            sequential.push(w, failed);
        }
        let mut merged = IsAccumulator::new();
        for chunk in samples.chunks(chunk_size) {
            let mut acc = IsAccumulator::new();
            for &(w, failed) in chunk {
                acc.push(w, failed);
            }
            merged.merge(&acc);
        }

        prop_assert_eq!(merged.samples(), sequential.samples());
        prop_assert_eq!(merged.failures(), sequential.failures());
        let scale = two_pass_se.max(1e-300);
        prop_assert!(
            (sequential.standard_error() - two_pass_se).abs() <= 1e-9 * scale,
            "sequential SE {} vs two-pass {}",
            sequential.standard_error(),
            two_pass_se
        );
        prop_assert!(
            (merged.standard_error() - two_pass_se).abs() <= 1e-9 * scale,
            "merged SE {} vs two-pass {} (chunk {})",
            merged.standard_error(),
            two_pass_se,
            chunk_size
        );
    }
}
