//! Determinism contract of the batched evaluation engine.
//!
//! Three guarantees are asserted end to end:
//!
//! 1. **Batched ≡ scalar** — `evaluate_batch` / the `FailureProblem` batch
//!    methods produce bit-identical metrics (and identical evaluation counts)
//!    to the point-by-point path, including the session-backed transient SRAM
//!    override.
//! 2. **Thread-count invariance** — every estimator produces bit-identical
//!    estimates, evaluation counts and traces at 1, 2 and 8 worker threads
//!    (`GIS_THREADS=1,2,8` resolve to exactly these executors).
//! 3. **Driver invariance** — whole `YieldAnalysis` reports compare equal
//!    across thread counts.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sram_highsigma::highsigma::{
    default_sram_variation_space, standard_estimators, ConvergencePolicy, Estimator,
    ExecutionConfig, Executor, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, LinearLimitState, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, PerformanceModel, QuadraticLimitState, ScaledSigmaSampling,
    SphericalSampling, SphericalSamplingConfig, SramMetric, SramTransientModel, SssConfig,
    YieldAnalysis,
};
use sram_highsigma::linalg::Vector;
use sram_highsigma::sram::{SramCellConfig, SramTestbench};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

fn quick_estimators() -> Vec<Box<dyn Estimator>> {
    let sampling = ImportanceSamplingConfig {
        corrected_stopping: true,
        max_samples: 8_000,
        batch_size: 500,
        target_relative_error: 0.05,
        min_failures: 30,
    };
    vec![
        Box::new(GradientImportanceSampling::new(GisConfig {
            sampling: sampling.clone(),
            ..GisConfig::default()
        })),
        Box::new(MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 40_000,
            batch_size: 2_000,
            target_relative_error: 0.05,
            min_failures: 20,
        })),
        Box::new(MinimumNormIs::new(MnisConfig {
            presamples_per_round: 1_000,
            sampling,
            ..MnisConfig::default()
        })),
        Box::new(SphericalSampling::new(SphericalSamplingConfig {
            directions: 400,
            ..SphericalSamplingConfig::default()
        })),
        Box::new(ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: 2_000,
            ..SssConfig::default()
        })),
    ]
}

#[test]
fn every_estimator_is_bit_identical_across_thread_counts() {
    let problem = FailureProblem::from_model(
        QuadraticLimitState::new(4, 3.2, 0.05),
        QuadraticLimitState::spec(),
    );
    for mut estimator in quick_estimators() {
        estimator.set_execution(ExecutionConfig::serial());
        let reference = estimator.estimate(&problem.fork(), &mut RngStream::from_seed(314));
        for threads in [2, 8] {
            estimator.set_execution(ExecutionConfig::with_threads(threads));
            let run = estimator.estimate(&problem.fork(), &mut RngStream::from_seed(314));
            assert_eq!(
                run.result.failure_probability.to_bits(),
                reference.result.failure_probability.to_bits(),
                "{}: estimate diverged at {threads} threads",
                estimator.name()
            );
            assert_eq!(run.result.evaluations, reference.result.evaluations);
            assert_eq!(
                run.result.failures_observed,
                reference.result.failures_observed
            );
            assert_eq!(run.result.trace, reference.result.trace);
            assert_eq!(run.diagnostics, reference.diagnostics);
        }
    }
}

#[test]
fn chunk_size_does_not_change_estimates() {
    // The estimators pin their randomness to the sequential caller stream, so
    // even the chunk size (which does shape `Executor::map_rng` substreams) is
    // irrelevant to their output.
    let problem = FailureProblem::from_model(
        LinearLimitState::along_first_axis(5, 3.0),
        LinearLimitState::spec(),
    );
    let run = |chunk: usize| {
        MonteCarlo::new(MonteCarloConfig::with_budget(30_000))
            .with_execution(ExecutionConfig::with_threads(3).with_chunk_size(chunk))
            .estimate(&problem.fork(), &mut RngStream::from_seed(55))
            .result
    };
    let reference = run(32);
    for chunk in [1, 7, 1024] {
        assert_eq!(run(chunk), reference, "diverged at chunk size {chunk}");
    }
}

#[test]
fn yield_analysis_reports_are_equal_across_thread_counts() {
    let run = |execution: ExecutionConfig| {
        YieldAnalysis::new()
            .master_seed(20180319)
            .convergence_policy(
                ConvergencePolicy::with_budget(6_000)
                    .target_relative_error(0.1)
                    .min_failures(20),
            )
            .execution(execution)
            .problem(
                "linear",
                FailureProblem::from_model(
                    LinearLimitState::along_first_axis(4, 3.5),
                    LinearLimitState::spec(),
                ),
            )
            .problem(
                "quadratic",
                FailureProblem::from_model(
                    QuadraticLimitState::new(4, 3.0, 0.08),
                    QuadraticLimitState::spec(),
                ),
            )
            .estimators(standard_estimators())
            .run()
    };
    let serial = run(ExecutionConfig::serial());
    let two = run(ExecutionConfig::with_threads(2));
    let eight = run(ExecutionConfig::with_threads(8));
    assert_eq!(serial, two);
    assert_eq!(serial, eight);
    // The execution metadata still reflects each run's configuration.
    assert_eq!(serial.problems[0].methods[0].row.threads, 1);
    assert_eq!(eight.problems[0].methods[0].row.threads, 8);
}

#[test]
fn transient_sram_batch_path_matches_scalar_path() {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    for metric in [SramMetric::ReadAccessTime, SramMetric::WriteDelay] {
        let model = SramTransientModel::new(SramTestbench::typical_45nm(), space.clone(), metric);
        let mut rng = RngStream::from_seed(404);
        let points: Vec<Vector> = (0..4).map(|_| rng.standard_normal_vector(6)).collect();
        let scalar: Vec<f64> = points.iter().map(|z| model.evaluate(z)).collect();
        let batched = model.evaluate_batch(&points);
        for (s, b) in scalar.iter().zip(&batched) {
            assert_eq!(s.to_bits(), b.to_bits(), "{metric:?} batch diverged");
        }

        // Through the problem layer with an executor: same values, same count.
        let problem = FailureProblem::from_model(
            SramTransientModel::new(SramTestbench::typical_45nm(), space.clone(), metric),
            sram_highsigma::highsigma::Spec::UpperLimit(f64::INFINITY),
        );
        let on_threads = problem.metrics_batch_on(&Executor::new(4).with_chunk_size(2), &points);
        assert_eq!(problem.evaluations(), points.len() as u64);
        for (s, b) in scalar.iter().zip(&on_threads) {
            assert_eq!(s.to_bits(), b.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn executor_map_is_thread_invariant(
        values in prop::collection::vec(-50.0f64..50.0, 1..200),
        threads in 1usize..9,
        chunk in 1usize..40,
    ) {
        let exec = Executor::new(threads).with_chunk_size(chunk);
        let serial: Vec<f64> = values.iter().map(|x| (x * 1.7).sin() + x * x).collect();
        let mapped = exec.map(&values, |x| (x * 1.7).sin() + x * x);
        prop_assert_eq!(serial, mapped);
    }

    #[test]
    fn executor_map_rng_is_thread_invariant(
        seed in 0u64..u64::MAX,
        count in 1usize..120,
        threads in 2usize..9,
    ) {
        let rng = RngStream::from_seed(seed);
        let reference = Executor::serial()
            .with_chunk_size(16)
            .map_rng(&rng, count, |s, _| s.standard_normal());
        let parallel = Executor::new(threads)
            .with_chunk_size(16)
            .map_rng(&rng, count, |s, _| s.standard_normal());
        for (a, b) in reference.iter().zip(&parallel) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn monte_carlo_thread_invariance_over_dims_and_seeds(
        dim in 1usize..8,
        seed in 0u64..10_000,
        threads in 2usize..9,
    ) {
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(dim, 2.0),
            LinearLimitState::spec(),
        );
        let serial = MonteCarlo::new(MonteCarloConfig::with_budget(4_000))
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(seed))
            .result;
        let parallel = MonteCarlo::new(MonteCarloConfig::with_budget(4_000))
            .with_execution(ExecutionConfig::with_threads(threads))
            .estimate(&problem.fork(), &mut RngStream::from_seed(seed))
            .result;
        prop_assert_eq!(
            serial.failure_probability.to_bits(),
            parallel.failure_probability.to_bits()
        );
        prop_assert_eq!(serial.evaluations, parallel.evaluations);
    }

    #[test]
    fn batch_metrics_match_scalar_metrics(
        dim in 1usize..7,
        seed in 0u64..10_000,
        count in 1usize..60,
        threads in 1usize..5,
    ) {
        let problem = FailureProblem::from_model(
            QuadraticLimitState::new(dim, 2.5, 0.04),
            QuadraticLimitState::spec(),
        );
        let mut rng = RngStream::from_seed(seed);
        let points: Vec<Vector> = (0..count).map(|_| rng.standard_normal_vector(dim)).collect();
        let scalar_fork = problem.fork();
        let scalar: Vec<f64> = points.iter().map(|z| scalar_fork.metric(z)).collect();
        let batch_fork = problem.fork();
        let batched = batch_fork.metrics_batch_on(&Executor::new(threads), &points);
        prop_assert_eq!(scalar_fork.evaluations(), batch_fork.evaluations());
        for (s, b) in scalar.iter().zip(&batched) {
            prop_assert_eq!(s.to_bits(), b.to_bits());
        }
    }
}
