//! Golden and property tests for the sparse transient kernel.
//!
//! The sparse, workspace-reusing solver must be **bit-identical** to the
//! dense reference kernel — same node voltages at every time point, same
//! Newton iteration counts, same singularity verdicts — on every netlist, so
//! that every fixed-seed statistical result in the suite is independent of
//! the kernel. These tests pin that contract on the production SRAM
//! testbench netlists and on randomized circuits/matrices.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sram_highsigma::circuit::{
    transient_analysis, transient_analysis_dense, transient_analysis_lockstep, Circuit,
    LockstepWorkspace, MosfetParams, SimulationWorkspace, SourceWaveform, TransientConfig,
    TransientKernel, GROUND,
};
use sram_highsigma::highsigma::{
    standard_estimators, ConvergencePolicy, SramMetric, YieldAnalysis,
};
use sram_highsigma::linalg::sparse::{PatternBuilder, SparseLu, SymbolicLu};
use sram_highsigma::linalg::{LuDecomposition, Matrix, Vector};
use sram_highsigma::sram::{build_6t_cell, SramCellConfig, SramTestbench};

/// Asserts two transient results agree bit for bit on every node and step,
/// including the Newton iteration count.
fn assert_transients_bit_identical(circuit: &Circuit, config: &TransientConfig, label: &str) {
    let sparse = transient_analysis(circuit, config).expect("sparse transient");
    let dense = transient_analysis_dense(circuit, config).expect("dense transient");
    assert_eq!(
        sparse.newton_iterations_total(),
        dense.newton_iterations_total(),
        "{label}: Newton iteration counts diverged"
    );
    assert_eq!(sparse.num_points(), dense.num_points(), "{label}: steps");
    for (ts, td) in sparse.times().iter().zip(dense.times()) {
        assert_eq!(ts.to_bits(), td.to_bits(), "{label}: time axis");
    }
    for node in 0..circuit.num_nodes() {
        let s = sparse.node_voltage_samples(node).unwrap();
        let d = dense.node_voltage_samples(node).unwrap();
        for (step, (a, b)) in s.iter().zip(d).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: node {node} step {step}: {a:e} vs {b:e}"
            );
        }
    }
}

/// The read testbench netlist (cell + precharged floating bitlines).
fn read_circuit(vth_deltas: &[f64; 6]) -> (Circuit, TransientConfig) {
    let cell = SramCellConfig::typical_45nm();
    let vdd = cell.vdd;
    let mut ckt = Circuit::new();
    let nodes = build_6t_cell(&mut ckt, &cell, vth_deltas).unwrap();
    ckt.add_voltage_source("V_VDD", nodes.vdd, GROUND, SourceWaveform::dc(vdd));
    ckt.add_voltage_source(
        "V_WL",
        nodes.wordline,
        GROUND,
        SourceWaveform::pulse(0.0, vdd, 0.1e-9, 20e-12, 2.0e-9),
    );
    ckt.add_capacitor("C_BL", nodes.bitline, GROUND, cell.bitline_capacitance)
        .unwrap();
    ckt.add_capacitor("C_BLB", nodes.bitline_bar, GROUND, cell.bitline_capacitance)
        .unwrap();
    let mut ic = vec![0.0; ckt.num_nodes()];
    ic[nodes.vdd] = vdd;
    ic[nodes.bitline] = vdd;
    ic[nodes.bitline_bar] = vdd;
    ic[nodes.q_bar] = vdd;
    let config = TransientConfig::new(2.5e-9, 5e-12).with_initial_conditions(ic);
    (ckt, config)
}

#[test]
fn sram_read_netlist_golden_bit_identity() {
    for deltas in [
        [0.0; 6],
        [0.12, -0.03, 0.05, 0.0, 0.08, -0.02],
        [-0.15, 0.2, 0.1, -0.05, 0.0, 0.3],
    ] {
        let (ckt, config) = read_circuit(&deltas);
        assert_transients_bit_identical(&ckt, &config, "6T read");
    }
}

#[test]
fn sram_write_netlist_golden_bit_identity() {
    let cell = SramCellConfig::typical_45nm();
    let vdd = cell.vdd;
    let mut ckt = Circuit::new();
    let nodes = build_6t_cell(&mut ckt, &cell, &[0.02, -0.04, 0.0, 0.1, -0.06, 0.05]).unwrap();
    ckt.add_voltage_source("V_VDD", nodes.vdd, GROUND, SourceWaveform::dc(vdd));
    ckt.add_voltage_source(
        "V_WL",
        nodes.wordline,
        GROUND,
        SourceWaveform::pulse(0.0, vdd, 0.1e-9, 20e-12, 2.0e-9),
    );
    ckt.add_voltage_source("V_BL", nodes.bitline, GROUND, SourceWaveform::dc(0.0));
    ckt.add_voltage_source("V_BLB", nodes.bitline_bar, GROUND, SourceWaveform::dc(vdd));
    let mut ic = vec![0.0; ckt.num_nodes()];
    ic[nodes.vdd] = vdd;
    ic[nodes.bitline_bar] = vdd;
    ic[nodes.q] = vdd;
    let config = TransientConfig::new(2.5e-9, 5e-12).with_initial_conditions(ic);
    assert_transients_bit_identical(&ckt, &config, "6T write");
}

#[test]
fn lockstep_kernel_matches_scalar_on_sram_netlists_at_every_lane_count() {
    // Every lane of a lockstep batch must reproduce the scalar sparse kernel
    // bit for bit — node voltages, time axis and Newton iteration counts —
    // at lane counts 1, 2, 4 and 8, on both a cold (program-recording) and a
    // warm (program-replaying) round.
    let deltas_pool: [[f64; 6]; 8] = [
        [0.0; 6],
        [0.12, -0.03, 0.05, 0.0, 0.08, -0.02],
        [-0.15, 0.2, 0.1, -0.05, 0.0, 0.3],
        [0.05, 0.05, -0.05, 0.05, -0.05, 0.05],
        [0.3, 0.0, -0.1, 0.05, -0.06, 0.12],
        [-0.08, 0.15, -0.05, 0.1, 0.0, 0.07],
        [0.02, -0.02, 0.02, -0.02, 0.02, -0.02],
        [0.18, 0.09, 0.0, -0.12, 0.04, -0.07],
    ];
    for lanes in [1usize, 2, 4, 8] {
        let built: Vec<(Circuit, TransientConfig)> =
            deltas_pool[..lanes].iter().map(read_circuit).collect();
        let circuits: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let config = &built[0].1;
        let mut ws = LockstepWorkspace::new();
        for round in ["cold", "warm"] {
            let results = transient_analysis_lockstep(&circuits, config, &mut ws, false)
                .expect("lockstep batch");
            assert_eq!(results.len(), lanes);
            for (lane, result) in results.iter().enumerate() {
                let lockstep = result.as_ref().expect("lane transient");
                let scalar = transient_analysis(circuits[lane], config).unwrap();
                assert_eq!(
                    scalar.newton_iterations_total(),
                    lockstep.newton_iterations_total(),
                    "{round} lanes={lanes} lane={lane}: Newton counts diverged"
                );
                for (ts, tl) in scalar.times().iter().zip(lockstep.times()) {
                    assert_eq!(ts.to_bits(), tl.to_bits());
                }
                for node in 0..circuits[lane].num_nodes() {
                    let s = scalar.node_voltage_samples(node).unwrap();
                    let l = lockstep.node_voltage_samples(node).unwrap();
                    for (step, (a, b)) in s.iter().zip(l).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "{round} lanes={lanes} lane={lane} node {node} step {step}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn estimator_results_identical_across_kernels() {
    // Driver-level: a fixed-seed analysis on the dense-kernel model must
    // reproduce the sparse-kernel report bit for bit.
    let run = |kernel: TransientKernel| {
        let tb = SramTestbench::typical_45nm();
        let cell = SramCellConfig::typical_45nm();
        let space = sram_highsigma::highsigma::default_sram_variation_space(
            &cell,
            &sram_highsigma::variation::PelgromModel::typical_45nm(),
        );
        let model = sram_highsigma::highsigma::SramTransientModel::new(
            tb,
            space,
            SramMetric::ReadAccessTime,
        )
        .with_kernel(kernel);
        let nominal = model.nominal_metric();
        let problem = sram_highsigma::highsigma::FailureProblem::from_model(
            model,
            sram_highsigma::highsigma::Spec::UpperLimit(nominal * 1.3),
        );
        YieldAnalysis::new()
            .master_seed(20180318)
            .convergence_policy(
                ConvergencePolicy::with_budget(60)
                    .target_relative_error(1e-12)
                    .min_failures(u64::MAX),
            )
            .problem("read", problem)
            .estimators(standard_estimators())
            .run()
    };
    let sparse = run(TransientKernel::Sparse);
    assert_eq!(sparse.problems[0].methods.len(), 5);
    for kernel in [TransientKernel::Dense, TransientKernel::Lockstep] {
        let other = run(kernel);
        for (s, d) in sparse.problems[0]
            .methods
            .iter()
            .zip(&other.problems[0].methods)
        {
            assert_eq!(s.estimator, d.estimator);
            assert_eq!(
                s.outcome.result.failure_probability.to_bits(),
                d.outcome.result.failure_probability.to_bits(),
                "{}: {kernel:?} kernel diverged",
                s.estimator
            );
            assert_eq!(s.outcome.result.evaluations, d.outcome.result.evaluations);
        }
    }
}

#[test]
fn workspace_is_reusable_across_topologies() {
    // One workspace driven across alternating netlist topologies must rebind
    // and still match the dense kernel on each.
    let mut ws = SimulationWorkspace::new();
    let configs: Vec<(Circuit, TransientConfig)> = vec![
        {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_voltage_source("V", a, GROUND, SourceWaveform::dc(1.0));
            ckt.add_resistor("R", a, b, 1e3).unwrap();
            ckt.add_capacitor("C", b, GROUND, 1e-9).unwrap();
            (
                ckt,
                TransientConfig::new(2e-6, 1e-8).with_initial_conditions(vec![0.0, 1.0, 0.0]),
            )
        },
        read_circuit(&[0.0; 6]),
        {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let input = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
            ckt.add_voltage_source(
                "VIN",
                input,
                GROUND,
                SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
            );
            ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
                .unwrap();
            ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
                .unwrap();
            ckt.add_capacitor("CL", out, GROUND, 2e-15).unwrap();
            (
                ckt,
                TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]),
            )
        },
    ];
    for round in 0..2 {
        for (i, (ckt, config)) in configs.iter().enumerate() {
            let reused =
                sram_highsigma::circuit::transient_analysis_with(ckt, config, &mut ws).unwrap();
            let dense = transient_analysis_dense(ckt, config).unwrap();
            for node in 0..ckt.num_nodes() {
                let a = reused.node_voltage_samples(node).unwrap();
                let b = dense.node_voltage_samples(node).unwrap();
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "round {round} circuit {i} node {node}"
                    );
                }
            }
        }
    }
}

/// Builds a randomized two-node-chain circuit from proptest inputs. The
/// structure guarantees a solvable system (everything has a DC path to
/// ground through resistors or GMIN).
fn random_chain_circuit(
    resistances: &[f64],
    capacitances: &[f64],
    mosfet_every: usize,
    supply: f64,
) -> (Circuit, TransientConfig) {
    let mut ckt = Circuit::new();
    let first = ckt.node("n0");
    ckt.add_voltage_source(
        "VS",
        first,
        GROUND,
        SourceWaveform::pulse(0.0, supply, 1e-9, 0.5e-9, 4e-9),
    );
    let mut prev = first;
    for (i, &r) in resistances.iter().enumerate() {
        let next = ckt.node(&format!("n{}", i + 1));
        ckt.add_resistor(&format!("R{i}"), prev, next, r).unwrap();
        if let Some(&c) = capacitances.get(i) {
            ckt.add_capacitor(&format!("C{i}"), next, GROUND, c)
                .unwrap();
        }
        if mosfet_every != 0 && i % mosfet_every == 0 {
            let params = if i % (2 * mosfet_every) == 0 {
                MosfetParams::nmos_45nm()
            } else {
                MosfetParams::pmos_45nm()
            };
            // Diode-connected to the previous node: gate = drain = next.
            ckt.add_mosfet(&format!("M{i}"), next, next, GROUND, GROUND, params)
                .unwrap();
        }
        prev = next;
    }
    ckt.add_resistor("Rend", prev, GROUND, 10e3).unwrap();
    let config = TransientConfig::new(10e-9, 50e-12);
    (ckt, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small circuits: the two kernels agree bit for bit on the whole
    /// trajectory (or fail identically).
    #[test]
    fn random_circuits_bit_identical(
        resistances in prop::collection::vec(100.0f64..100e3, 1..6),
        capacitances in prop::collection::vec(1e-15f64..1e-9, 0..6),
        mosfet_every in 0usize..3,
        supply in 0.5f64..1.2,
    ) {
        let (ckt, config) = random_chain_circuit(&resistances, &capacitances, mosfet_every, supply);
        let sparse = transient_analysis(&ckt, &config);
        let dense = transient_analysis_dense(&ckt, &config);
        match (sparse, dense) {
            (Ok(s), Ok(d)) => {
                prop_assert_eq!(s.newton_iterations_total(), d.newton_iterations_total());
                for node in 0..ckt.num_nodes() {
                    let a = s.node_voltage_samples(node).unwrap();
                    let b = d.node_voltage_samples(node).unwrap();
                    for (x, y) in a.iter().zip(b) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
            }
            (Err(es), Err(ed)) => prop_assert_eq!(format!("{es}"), format!("{ed}")),
            (s, d) => prop_assert!(false, "kernels disagreed on success: {s:?} vs {d:?}"),
        }
    }

    /// Random chain circuits at random lane counts (including ragged,
    /// non-power-of-two batches): every lockstep lane agrees bit for bit with
    /// the scalar sparse kernel on its own circuit, or fails with the same
    /// error.
    #[test]
    fn lockstep_random_chains_bit_identical(
        resistances in prop::collection::vec(100.0f64..100e3, 1..5),
        capacitances in prop::collection::vec(1e-15f64..1e-9, 0..5),
        mosfet_every in 0usize..3,
        supply in 0.5f64..1.2,
        lanes in 1usize..9,
    ) {
        // One shared topology; each lane scales the element values so the
        // lanes solve genuinely different numerics.
        let built: Vec<(Circuit, TransientConfig)> = (0..lanes)
            .map(|lane| {
                let scale = 1.0 + lane as f64 * 0.13;
                let rs: Vec<f64> = resistances.iter().map(|r| r * scale).collect();
                random_chain_circuit(&rs, &capacitances, mosfet_every, supply)
            })
            .collect();
        let circuits: Vec<&Circuit> = built.iter().map(|(c, _)| c).collect();
        let config = &built[0].1;
        let mut ws = LockstepWorkspace::new();
        let results = transient_analysis_lockstep(&circuits, config, &mut ws, false).unwrap();
        prop_assert_eq!(results.len(), lanes);
        for (lane, result) in results.iter().enumerate() {
            let scalar = transient_analysis(circuits[lane], config);
            match (result, &scalar) {
                (Ok(l), Ok(s)) => {
                    prop_assert_eq!(s.newton_iterations_total(), l.newton_iterations_total());
                    for node in 0..circuits[lane].num_nodes() {
                        let a = s.node_voltage_samples(node).unwrap();
                        let b = l.node_voltage_samples(node).unwrap();
                        for (x, y) in a.iter().zip(b) {
                            prop_assert_eq!(x.to_bits(), y.to_bits());
                        }
                    }
                }
                (Err(el), Err(es)) => prop_assert_eq!(format!("{el}"), format!("{es}")),
                (l, s) => prop_assert!(false, "lane {lane} disagreed on success: {l:?} vs {s:?}"),
            }
        }
    }

    /// Random sparse matrices: the sparse LU reproduces the dense LU bit for
    /// bit across repeated refactorizations of the same plan.
    #[test]
    fn random_matrices_bit_identical(
        n in 1usize..12,
        density in 0.15f64..0.9,
        seed in 1u64..u64::MAX,
        scale_second in 0.25f64..4.0,
    ) {
        // Deterministic xorshift fill from the seed.
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut builder = PatternBuilder::new(n);
        let mut dense = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j || (next() + 1.0) / 2.0 < density {
                    builder.insert(i, j);
                    dense[(i, j)] = next() + if i == j { n as f64 } else { 0.0 };
                }
            }
        }
        let pattern = builder.build();
        let mut sparse = SparseLu::new(SymbolicLu::analyze(&pattern));
        let b: Vector = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
        for round in 0..2 {
            let factor = if round == 0 { 1.0 } else { scale_second };
            sparse.clear();
            for r in 0..n {
                for &c in pattern.row_cols(r) {
                    sparse.add_at(r, c as usize, dense[(r, c as usize)] * factor);
                }
            }
            sparse.factorize().unwrap();
            let scaled = dense.scaled(factor);
            let dense_lu = LuDecomposition::new(&scaled).unwrap();
            let x_dense = dense_lu.solve(&b).unwrap();
            let mut x_sparse = vec![0.0; n];
            sparse.solve(b.as_slice(), &mut x_sparse).unwrap();
            for i in 0..n {
                prop_assert_eq!(x_dense[i].to_bits(), x_sparse[i].to_bits());
            }
            prop_assert_eq!(
                dense_lu.determinant().to_bits(),
                sparse.determinant().to_bits()
            );
        }
    }
}
