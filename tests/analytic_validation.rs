//! Integration tests validating every estimator against analytic limit states
//! with exactly (or near-exactly) known failure probabilities.
//!
//! These are the ground-truth experiments: if an estimator is biased or its
//! cost accounting is wrong, it shows up here before any SRAM is involved.

// Test code: panicking is the correct failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod common;

use common::{assert_close_abs, assert_close_rel};
use sram_highsigma::highsigma::{
    required_samples, Estimator, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, LinearLimitState, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, QuadraticLimitState, ScaledSigmaSampling, SphericalSampling,
    SphericalSamplingConfig, SssConfig,
};
use sram_highsigma::linalg::Vector;
use sram_highsigma::stats::RngStream;

fn gis_quick() -> GradientImportanceSampling {
    GradientImportanceSampling::new(GisConfig {
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 40_000,
            batch_size: 1_000,
            target_relative_error: 0.05,
            min_failures: 50,
        },
        ..GisConfig::default()
    })
}

#[test]
fn gis_matches_exact_probability_across_sigma_levels() {
    for (seed, beta) in [(1u64, 3.5_f64), (2, 4.5), (3, 5.5)] {
        let limit_state =
            LinearLimitState::new(Vector::from_slice(&[1.0, 0.7, -0.4, 0.2, 1.3, -0.9]), beta);
        let exact = limit_state.exact_failure_probability();
        let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());
        let outcome = gis_quick().estimate(&problem, &mut RngStream::from_seed(seed));
        let rel = (outcome.result.failure_probability - exact).abs() / exact;
        assert!(
            rel < 0.15,
            "beta {beta}: GIS off by {rel:.3} ({:e} vs {exact:e})",
            outcome.result.failure_probability
        );
        assert!(outcome.result.converged, "beta {beta}: did not converge");
        assert!((outcome.result.sigma_level - beta).abs() < 0.1);
    }
}

#[test]
fn gis_is_orders_of_magnitude_cheaper_than_monte_carlo() {
    let limit_state = LinearLimitState::along_first_axis(6, 5.0);
    let exact = limit_state.exact_failure_probability();
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());
    let outcome = gis_quick().estimate(&problem, &mut RngStream::from_seed(11));
    assert!(outcome.result.converged);
    let mc_cost = required_samples(exact, 0.05);
    let speedup = mc_cost / outcome.result.evaluations as f64;
    assert!(
        speedup > 100.0,
        "expected >100x speedup over brute force, got {speedup:.1}"
    );
}

#[test]
fn gis_and_mnis_agree_with_each_other() {
    let limit_state = LinearLimitState::new(Vector::from_slice(&[0.5, 1.0, 1.0, -0.5]), 4.0);
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());

    let gis_outcome = gis_quick().estimate(&problem.fork(), &mut RngStream::from_seed(5));
    let mnis = MinimumNormIs::new(MnisConfig {
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 40_000,
            batch_size: 1_000,
            target_relative_error: 0.05,
            min_failures: 50,
        },
        ..MnisConfig::default()
    });
    let mnis_result = mnis
        .estimate(&problem.fork(), &mut RngStream::from_seed(6))
        .result;

    let gis_p = gis_outcome.result.failure_probability;
    let mnis_p = mnis_result.failure_probability;
    assert!(gis_p > 0.0 && mnis_p > 0.0);
    let ratio = gis_p / mnis_p;
    assert!(
        (0.7..1.4).contains(&ratio),
        "GIS ({gis_p:e}) and MNIS ({mnis_p:e}) disagree (ratio {ratio:.2})"
    );
    // The gradient search must be cheaper than blind presampling.
    let gis_search = gis_outcome.result.evaluations - gis_outcome.result.sampling_evaluations;
    let mnis_search = mnis_result.evaluations - mnis_result.sampling_evaluations;
    assert!(
        gis_search < mnis_search,
        "gradient search ({gis_search}) should be cheaper than presampling ({mnis_search})"
    );
}

#[test]
fn monte_carlo_agrees_at_low_sigma() {
    // At 2.5 sigma brute force is cheap, so all three of MC, GIS and the exact
    // value must line up.
    let limit_state = LinearLimitState::along_first_axis(3, 2.5);
    let exact = limit_state.exact_failure_probability();
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());

    let mc = MonteCarlo::new(MonteCarloConfig {
        corrected_stopping: true,
        max_samples: 400_000,
        batch_size: 20_000,
        target_relative_error: 0.05,
        min_failures: 50,
    });
    let mc_result = mc
        .estimate(&problem.fork(), &mut RngStream::from_seed(9))
        .result;
    let gis_outcome = gis_quick().estimate(&problem.fork(), &mut RngStream::from_seed(10));

    let mc_rel = (mc_result.failure_probability - exact).abs() / exact;
    let gis_rel = (gis_outcome.result.failure_probability - exact).abs() / exact;
    assert!(mc_rel < 0.15, "MC off by {mc_rel}");
    assert!(gis_rel < 0.15, "GIS off by {gis_rel}");
}

#[test]
fn quadratic_limit_state_cross_method_consistency() {
    let limit_state = QuadraticLimitState::new(5, 4.0, 0.07);
    let reference = limit_state.reference_failure_probability();
    let problem = FailureProblem::from_model(limit_state, QuadraticLimitState::spec());
    let outcome = gis_quick().estimate(&problem, &mut RngStream::from_seed(21));
    let rel = (outcome.result.failure_probability - reference).abs() / reference;
    assert!(
        rel < 0.25,
        "GIS on curved boundary off by {rel}: {:e} vs {reference:e}",
        outcome.result.failure_probability
    );
}

#[test]
fn spherical_and_sss_produce_right_order_of_magnitude() {
    let limit_state = LinearLimitState::along_first_axis(3, 3.5);
    let exact = limit_state.exact_failure_probability();
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());

    let spherical = SphericalSampling::new(SphericalSamplingConfig {
        directions: 1_500,
        target_relative_error: 0.05,
        ..SphericalSamplingConfig::default()
    });
    let spherical_result = spherical
        .estimate(&problem.fork(), &mut RngStream::from_seed(31))
        .result;
    assert!(spherical_result.failure_probability > 0.0);
    let ratio = spherical_result.failure_probability / exact;
    assert!(
        (0.3..3.0).contains(&ratio),
        "spherical sampling off by factor {ratio}"
    );

    let sss = ScaledSigmaSampling::new(SssConfig {
        samples_per_scale: 20_000,
        ..SssConfig::default()
    });
    let sss_result = sss
        .estimate(&problem.fork(), &mut RngStream::from_seed(32))
        .result;
    assert!(sss_result.converged);
    let ratio = sss_result.failure_probability / exact;
    assert!(
        (0.2..5.0).contains(&ratio),
        "scaled-sigma sampling off by factor {ratio}"
    );
}

#[test]
fn evaluation_counters_are_charged_to_the_right_method() {
    let limit_state = LinearLimitState::along_first_axis(4, 4.0);
    let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());

    let fork_a = problem.fork();
    let fork_b = problem.fork();
    let outcome = gis_quick().estimate(&fork_a, &mut RngStream::from_seed(41));
    assert_eq!(fork_a.evaluations(), outcome.result.evaluations);
    // The fork used by GIS does not pollute the other fork's accounting.
    assert_eq!(fork_b.evaluations(), 0);
    // The original problem handle is untouched too (forks have separate counters).
    assert_eq!(problem.evaluations(), 0);
}

#[test]
fn far_tail_probability_chain_is_accurate_to_machine_precision() {
    use sram_highsigma::highsigma::ArrayYield;
    use sram_highsigma::stats::normal;

    // The full far-tail conversion chain the extraction flow rests on:
    // exact linear-limit-state probabilities at 6–8σ (golden values from a
    // ~1 ulp libm erfc) and their inversion back to sigma levels. Before the
    // continued-fraction erfc these held only to ~1e-4 relative error.
    let golden = [
        (6.0, 9.865876450377012e-10),
        (6.5, 4.016000583859125e-11),
        (7.0, 1.279812543885835e-12),
        (7.5, 3.19089167291092e-14),
        (8.0, 6.220960574271819e-16),
    ];
    for (beta, expected) in golden {
        let limit_state = LinearLimitState::along_first_axis(4, beta);
        let p = limit_state.exact_failure_probability();
        assert_close_rel(p, expected, 1e-13, &format!("P_fail({beta}σ)"));
        // Round trip through the quantile with far-tail fidelity (sigma
        // units are the natural absolute scale here).
        assert_close_abs(
            normal::sigma_level(p),
            beta,
            1e-11,
            &format!("sigma_level(P({beta}σ))"),
        );
    }

    // Array-capacity arithmetic consumes those tails: a 1 Gb array without
    // redundancy needs p ≤ (1 - yield^(1/N)) ≈ -ln(yield)/N per cell; check
    // the bisection + Poisson CDF against the closed form.
    let cells: u64 = 1 << 30;
    let array = ArrayYield::without_redundancy(cells);
    let target = 0.99_f64;
    let p_req = array.required_cell_failure_probability(target);
    let closed_form = -target.ln() / cells as f64;
    assert_close_rel(
        p_req,
        closed_form,
        1e-6,
        "required cell failure probability",
    );
    // And the sigma target lands where the golden table says it should
    // (p ≈ 9.36e-12 → just under 6.8σ).
    let sigma = array.required_cell_sigma(target);
    assert!(
        (6.5..7.0).contains(&sigma),
        "1Gb @ 99% yield requires {sigma}σ"
    );
    assert_close_rel(
        normal::upper_tail_probability(sigma),
        p_req,
        1e-9,
        "sigma/probability inversion",
    );
}
