//! Full read-yield extraction flow on the transient 6T testbench.
//!
//! This mirrors how a memory designer would use the library:
//!
//! 1. characterize the nominal cell (read access time, write delay, disturb),
//! 2. define the timing specification from the array's sense-amp window,
//! 3. extract the per-cell failure probability with Gradient Importance
//!    Sampling against the *full transient simulator* (every sample is a
//!    backward-Euler transient of the 6T netlist),
//! 4. translate the per-cell probability into array-level yield for several
//!    array sizes.
//!
//! Run with `cargo run --release --example read_yield_extraction`.

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    default_sram_variation_space, Estimator, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, Spec, SramMetric, SramTransientModel,
};
use sram_highsigma::sram::{SramCellConfig, SramTestbench};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

fn main() {
    // Step 1: nominal characterization.
    let testbench = SramTestbench::typical_45nm();
    let nominal_read = testbench.read(&[0.0; 6]).expect("nominal read converges");
    let nominal_write = testbench.write(&[0.0; 6]).expect("nominal write converges");
    println!("--- nominal cell characterization (transient simulation) ---");
    println!(
        "read access time : {:.1} ps (disturb peak {:.0} mV)",
        nominal_read.access_time * 1e12,
        nominal_read.disturb_peak * 1e3
    );
    println!(
        "write delay      : {:.1} ps",
        nominal_write.write_delay * 1e12
    );

    // Step 2: specification — the sense amplifier fires 2x the nominal access
    // time after wordline rise; any cell slower than that reads wrong data.
    let spec_limit = 2.0 * nominal_read.access_time;
    println!("\nread timing specification: {:.1} ps", spec_limit * 1e12);

    // Step 3: high-sigma extraction against the transient simulator.
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramTransientModel::new(testbench, space, SramMetric::ReadAccessTime);
    let problem = FailureProblem::from_model(model, Spec::UpperLimit(spec_limit));

    let gis = GradientImportanceSampling::new(GisConfig {
        sampling: ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 3_000,
            batch_size: 250,
            target_relative_error: 0.15,
            min_failures: 20,
        },
        ..GisConfig::default()
    });
    let mut rng = RngStream::from_seed(7);
    let outcome = gis.estimate(&problem, &mut rng);
    let p_cell = outcome.result.failure_probability;
    println!("\n--- gradient importance sampling (transient-backed) ---");
    println!("per-cell failure probability : {:.3e}", p_cell);
    println!(
        "equivalent sigma             : {:.2}",
        outcome.result.sigma_level
    );
    println!(
        "transient simulations used   : {}",
        outcome.result.evaluations
    );
    let mpfp = outcome.mpfp().expect("GIS reports its MPFP search");
    println!("MPFP found at                : {:.2} sigma", mpfp.beta);
    if let Some(shift) = outcome.shift() {
        println!("dominant variation direction (whitened shift vector):");
        let names = ["PGL", "PDL", "PUL", "PGR", "PDR", "PUR"];
        for (name, value) in names.iter().zip(shift.iter()) {
            println!("  {name:<4} {value:+.2} sigma");
        }
    }

    // Step 4: array-level yield.
    println!("\n--- array-level read yield ---");
    println!(
        "{:<12} {:>14} {:>12}",
        "array size", "P(any fail)", "yield [%]"
    );
    for &bits in &[64 * 1024u64, 1024 * 1024, 8 * 1024 * 1024, 64 * 1024 * 1024] {
        let p_any = 1.0 - (1.0 - p_cell).powf(bits as f64);
        println!(
            "{:<12} {:>14.3e} {:>12.4}",
            format_bits(bits),
            p_any,
            (1.0 - p_any) * 100.0
        );
    }
}

fn format_bits(bits: u64) -> String {
    if bits >= 1024 * 1024 {
        format!("{} Mb", bits / (1024 * 1024))
    } else {
        format!("{} kb", bits / 1024)
    }
}
