//! Calibration of the estimators' error bars against analytic ground truth.
//!
//! Runs independent replications of all five estimators on benchmark
//! problems whose failure probability is known in closed form, and prints
//! each method's empirical confidence-interval coverage (against the
//! binomial acceptance band), relative bias, achieved RMSE versus claimed
//! error, and sample efficiency.
//!
//! Run with `cargo run --release --example calibration`.

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    standard_estimators, BenchmarkProblem, Calibrator, ConvergencePolicy,
};

fn main() {
    let problems = vec![
        BenchmarkProblem::linear(6, 2.5),
        BenchmarkProblem::correlated(8, 2.5, 0.5),
        BenchmarkProblem::quadratic(6, 2.5, 0.05),
        // A stress geometry: two disjoint failure regions. Watch the
        // mean-shift methods' coverage collapse — the error bar cannot see
        // the mode the proposal missed.
        BenchmarkProblem::bimodal(6, 2.5),
    ];
    let report = Calibrator::new()
        .master_seed(20180319)
        .replications(60)
        .confidence_level(0.9)
        .band_alpha(0.002)
        .convergence_policy(
            ConvergencePolicy::with_budget(8_000)
                .target_relative_error(1e-12)
                .min_failures(u64::MAX),
        )
        .problems(problems)
        .estimators(standard_estimators())
        .run();

    println!(
        "{} replications/cell, 90% nominal intervals, acceptance band [{:.0}%, {:.0}%]\n",
        report.replications,
        report.rows[0].band_lower * 100.0,
        report.rows[0].band_upper * 100.0
    );
    println!(
        "{:<26} {:<22} {:>9} {:>6} {:>9} {:>9} {:>9} {:>10}",
        "problem", "method", "coverage", "band", "bias[%]", "rmse[%]", "claim[%]", "mean evals"
    );
    for row in &report.rows {
        println!(
            "{:<26} {:<22} {:>4}/{:<4} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>10.0}",
            row.problem,
            row.estimator,
            row.covered,
            row.replications,
            if row.within_band { "ok" } else { "FAIL" },
            row.relative_bias * 100.0,
            row.relative_rmse * 100.0,
            row.mean_reported_relative_error * 100.0,
            row.mean_evaluations,
        );
    }
    println!(
        "\n{} of {} cells within the acceptance band",
        report.rows.len() - report.violations().len(),
        report.rows.len()
    );
    for row in report.violations() {
        println!(
            "  dishonest error bars: {}/{} covers only {:.0}% at 90% nominal",
            row.problem,
            row.estimator,
            row.coverage * 100.0
        );
    }
}
