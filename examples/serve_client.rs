//! Serving yield analysis: submit jobs to a `gis-serve` daemon and stream
//! the rows back as they complete.
//!
//! The example is self-contained: it starts an in-process server on an
//! ephemeral port (exactly what the `gis-serve` binary wraps), connects the
//! typed client, submits a small job twice — the second submission is
//! served entirely from the content-addressed cache — and shuts the daemon
//! down. Against a real deployment, replace the bind/spawn block with the
//! daemon's printed address (or its `--port-file`).
//!
//! Run with `cargo run --release --example serve_client`.

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use gis_serve::{Client, EstimatorSpec, JobSpec, ProblemSpec, Server, ServerConfig};
use sram_highsigma::highsigma::ConvergencePolicy;

fn main() {
    // 1. Start a daemon. `127.0.0.1:0` binds an ephemeral port; a journal
    //    path (ServerConfig::journal) would additionally make completed
    //    cells durable across a kill/restart.
    let server = Server::bind(ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    std::thread::spawn(move || server.run());
    println!("daemon listening on {addr}");

    // 2. Describe the job as data: a problem family, estimator configs, a
    //    master seed and a convergence policy. The spec is serializable —
    //    this exact structure travels over the wire as one JSON line.
    let job = JobSpec {
        problem: ProblemSpec::Suite {
            suite: "fast".to_string(),
        },
        estimators: EstimatorSpec::standard(),
        master_seed: 20180319,
        policy: Some(
            ConvergencePolicy::with_budget(2_000)
                .target_relative_error(0.1)
                .min_failures(10),
        ),
        warm_start: None,
        deadline_ms: None,
    };

    // 3. Submit and stream. The callback fires once per completed cell, in
    //    deterministic registration order (problem-major, estimator-minor).
    let mut client = Client::connect(&addr).expect("connect");
    let receipt = client
        .submit(&job, &mut |cell| {
            println!(
                "  [{:>2}/{}] {:<28} {:<22} P_fail = {:.3e}",
                cell.completed_cells,
                cell.total_cells,
                cell.problem,
                cell.estimator,
                cell.report.row.failure_probability,
            );
        })
        .expect("job runs");
    println!(
        "job {} done: {} cells executed, {} from cache\n",
        receipt.job_id, receipt.cells_executed, receipt.cells_cached
    );

    // 4. Resubmit the identical job: every cell is a cache hit (the cell
    //    identity is content-addressed over problem, estimator config,
    //    master seed and policy), and the report is bit-identical.
    let rerun = client.submit(&job, &mut |_| {}).expect("cached run");
    println!(
        "resubmitted: {} executed, {} from cache, reports identical: {}",
        rerun.cells_executed,
        rerun.cells_cached,
        rerun.report == receipt.report
    );

    // 5. Server-lifetime counters, then a clean shutdown.
    let status = client.status().expect("status");
    println!(
        "server status: {} jobs, {} cells executed, {} cache hits, {} cached entries",
        status.jobs_submitted, status.cells_executed, status.cache_hits, status.cache_entries
    );
    client.shutdown().expect("shutdown");
}
