//! Design-space exploration: how write-assist (wordline pulse stretching) and
//! cell sizing trade off against write yield.
//!
//! For each candidate design point the example re-derives the write-delay
//! specification, runs Gradient Importance Sampling on the surrogate model and
//! reports the achievable sigma level — the kind of sweep a designer runs when
//! choosing between a boosted wordline, a longer write pulse or a wider pass
//! gate.
//!
//! Run with `cargo run --release --example write_assist_sweep`.

use sram_highsigma::highsigma::{
    default_sram_variation_space, FailureProblem, GisConfig, GradientImportanceSampling,
    ImportanceSamplingConfig, Spec, SramMetric, SramSurrogateModel,
};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

/// One candidate design point of the sweep.
struct DesignPoint {
    label: &'static str,
    /// Multiplier on the pass-gate drive (wider pass gate / boosted wordline).
    pass_gate_strength: f64,
    /// Write pulse budget expressed as a multiple of the nominal write delay.
    pulse_budget_factor: f64,
}

fn main() {
    let designs = [
        DesignPoint {
            label: "baseline",
            pass_gate_strength: 1.0,
            pulse_budget_factor: 3.0,
        },
        DesignPoint {
            label: "stretched pulse",
            pass_gate_strength: 1.0,
            pulse_budget_factor: 4.5,
        },
        DesignPoint {
            label: "boosted wordline",
            pass_gate_strength: 1.25,
            pulse_budget_factor: 3.0,
        },
        DesignPoint {
            label: "boosted + stretched",
            pass_gate_strength: 1.25,
            pulse_budget_factor: 4.5,
        },
    ];

    println!(
        "{:<22} {:>12} {:>8} {:>10} {:>10}",
        "design", "P_fail", "sigma", "#sims", "converged"
    );

    for (index, design) in designs.iter().enumerate() {
        // A stronger pass gate is modelled as a larger W (the Pelgrom sigma of
        // that device shrinks accordingly), which both speeds the write and
        // tightens its variability.
        let mut cell = SramCellConfig::typical_45nm();
        cell.pass_gate = cell.pass_gate.with_width_factor(design.pass_gate_strength);

        let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
        let mut surrogate = SramSurrogate::typical_45nm();
        surrogate.contention_ratio = cell.pull_up.k_prime / cell.pass_gate.k_prime;
        surrogate.beta_ratio = cell.pull_down.k_prime / cell.pass_gate.k_prime;

        let model = SramSurrogateModel::new(surrogate, space, SramMetric::WriteDelay);
        let nominal = model.nominal_metric();
        let spec = Spec::UpperLimit(nominal * design.pulse_budget_factor);
        let problem = FailureProblem::from_model(model, spec);

        let gis = GradientImportanceSampling::new(GisConfig {
            sampling: ImportanceSamplingConfig {
                max_samples: 40_000,
                batch_size: 500,
                target_relative_error: 0.1,
                min_failures: 30,
            },
            ..GisConfig::default()
        });
        let outcome = gis.run(&problem, &mut RngStream::from_seed(100 + index as u64));
        println!(
            "{:<22} {:>12.3e} {:>8.2} {:>10} {:>10}",
            design.label,
            outcome.result.failure_probability,
            outcome.result.sigma_level,
            outcome.result.evaluations,
            outcome.result.converged
        );
    }

    println!("\nhigher sigma = better write yield; the sweep quantifies how much each assist buys.");
}
