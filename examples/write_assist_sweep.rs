//! Design-space exploration: how write-assist (wordline pulse stretching) and
//! cell sizing trade off against write yield.
//!
//! Every candidate design point becomes a named problem on one
//! [`YieldAnalysis`] driver running Gradient Importance Sampling; the report
//! then reads out the achievable sigma level per design — the kind of sweep a
//! designer runs when choosing between a boosted wordline, a longer write
//! pulse or a wider pass gate. The driver derives a deterministic RNG stream
//! per design point from the master seed, so adding a design never perturbs
//! the others.
//!
//! Run with `cargo run --release --example write_assist_sweep`.
//!
//! [`YieldAnalysis`]: sram_highsigma::highsigma::YieldAnalysis

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    default_sram_variation_space, ConvergencePolicy, FailureProblem, GisConfig,
    GradientImportanceSampling, Spec, SramMetric, SramSurrogateModel, YieldAnalysis,
};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate};
use sram_highsigma::variation::PelgromModel;

/// One candidate design point of the sweep.
struct DesignPoint {
    label: &'static str,
    /// Multiplier on the pass-gate drive (wider pass gate / boosted wordline).
    pass_gate_strength: f64,
    /// Write pulse budget expressed as a multiple of the nominal write delay.
    pulse_budget_factor: f64,
}

/// Builds the write-delay failure problem for one design point.
fn design_problem(design: &DesignPoint) -> FailureProblem {
    // A stronger pass gate is modelled as a larger W (the Pelgrom sigma of
    // that device shrinks accordingly), which both speeds the write and
    // tightens its variability.
    let mut cell = SramCellConfig::typical_45nm();
    cell.pass_gate = cell.pass_gate.with_width_factor(design.pass_gate_strength);

    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let mut surrogate = SramSurrogate::typical_45nm();
    surrogate.contention_ratio = cell.pull_up.k_prime / cell.pass_gate.k_prime;
    surrogate.beta_ratio = cell.pull_down.k_prime / cell.pass_gate.k_prime;

    let model = SramSurrogateModel::new(surrogate, space, SramMetric::WriteDelay);
    let nominal = model.nominal_metric();
    let spec = Spec::UpperLimit(nominal * design.pulse_budget_factor);
    FailureProblem::from_model(model, spec)
}

fn main() {
    let designs = [
        DesignPoint {
            label: "baseline",
            pass_gate_strength: 1.0,
            pulse_budget_factor: 3.0,
        },
        DesignPoint {
            label: "stretched pulse",
            pass_gate_strength: 1.0,
            pulse_budget_factor: 4.5,
        },
        DesignPoint {
            label: "boosted wordline",
            pass_gate_strength: 1.25,
            pulse_budget_factor: 3.0,
        },
        DesignPoint {
            label: "boosted + stretched",
            pass_gate_strength: 1.25,
            pulse_budget_factor: 4.5,
        },
    ];

    // One driver: every design point is a problem, GIS is the estimator, and
    // the policy gives each extraction the same 40k budget and 10% target.
    let mut analysis = YieldAnalysis::new()
        .master_seed(100)
        .convergence_policy(
            ConvergencePolicy::with_budget(40_000)
                .target_relative_error(0.1)
                .min_failures(30),
        )
        .estimator(Box::new(GradientImportanceSampling::new(
            GisConfig::default(),
        )));
    for design in &designs {
        analysis = analysis.problem(design.label, design_problem(design));
    }
    let report = analysis.run();

    println!(
        "{:<22} {:>12} {:>8} {:>10} {:>10}",
        "design", "P_fail", "sigma", "#sims", "converged"
    );
    for (design, problem_report) in designs.iter().zip(report.problems.iter()) {
        let row = &problem_report.methods[0].row;
        println!(
            "{:<22} {:>12.3e} {:>8.2} {:>10} {:>10}",
            design.label, row.failure_probability, row.sigma_level, row.evaluations, row.converged
        );
    }

    println!(
        "\nhigher sigma = better write yield; the sweep quantifies how much each assist buys."
    );
}
