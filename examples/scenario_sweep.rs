//! Matrix-parallel scenario sweep with checkpoint/resume.
//!
//! Builds a small operating-condition grid (process corners × supply
//! voltages) with the [`SweepPlan`] scenario library, runs every
//! (scenario, estimator) cell through the [`SweepRunner`] matrix scheduler,
//! and demonstrates the durability contract: the first pass is "killed"
//! after a handful of cells (via a cell budget), then a second pass resumes
//! from the JSON-lines checkpoint and finishes the matrix — and the resumed
//! report is asserted equal to an uninterrupted in-memory run.
//!
//! Each scenario's extracted sigma is finally judged against an
//! array-capacity target ("a 16 Mb array with 8 repairable cells must yield
//! 99%"), the question a memory architect actually brings to the extraction
//! flow.
//!
//! Run with `cargo run --release --example scenario_sweep`.
//!
//! [`SweepPlan`]: sram_highsigma::highsigma::SweepPlan
//! [`SweepRunner`]: sram_highsigma::highsigma::SweepRunner

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::sweep::clear_checkpoint;
use sram_highsigma::highsigma::{
    standard_estimators, ConvergencePolicy, ExecutionConfig, SweepPlan, SweepRunner, YieldAnalysis,
};
use sram_highsigma::variation::GlobalCorner;

fn plan() -> SweepPlan {
    SweepPlan::new()
        .corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
        .supply_voltages([0.9, 1.0])
        .spec_factor(1.5)
        .capacity_target("16Mb+8r", 16 * 1024 * 1024, 8, 0.99)
}

fn analysis() -> YieldAnalysis {
    plan()
        .analysis()
        .master_seed(20180319)
        .convergence_policy(
            ConvergencePolicy::with_budget(5_000)
                .target_relative_error(0.1)
                .min_failures(20),
        )
        .estimators(standard_estimators())
}

fn main() {
    let checkpoint = std::env::temp_dir().join("scenario_sweep_example.jsonl");
    clear_checkpoint(&checkpoint).expect("stale checkpoint is clearable");

    let total = plan().scenarios().len() * 5;
    println!(
        "sweep matrix: {} scenarios x 5 estimators = {total} cells",
        plan().scenarios().len()
    );

    // Pass 1: run only 6 cells, then stop — as if the job had been killed.
    let partial = SweepRunner::new()
        .matrix(ExecutionConfig::with_threads(2))
        .checkpoint(&checkpoint)
        .cell_budget(6)
        .run(&mut analysis());
    println!(
        "pass 1 (\"killed\"): {}/{} cells checkpointed to {}",
        partial.status.completed_cells,
        partial.status.total_cells,
        checkpoint.display()
    );
    assert!(partial.report.is_none());

    // Pass 2: resume. Completed cells come back from the checkpoint; only
    // the pending ones are simulated.
    let resumed = SweepRunner::new()
        .matrix(ExecutionConfig::with_threads(2))
        .checkpoint(&checkpoint)
        .run(&mut analysis());
    println!(
        "pass 2 (resumed): {} cells restored, {} fresh",
        resumed.status.restored_cells,
        resumed.status.total_cells - resumed.status.restored_cells
    );
    let report = resumed.report.expect("matrix complete after resume");

    // The resumed report is exactly what one uninterrupted run produces.
    let uninterrupted = analysis().run();
    assert_eq!(report, uninterrupted);
    println!("resumed report == uninterrupted report (bit-identical statistics)\n");

    let requirements = plan().sigma_requirements();
    let (target, required) = &requirements[0];
    println!("capacity target {target}: requires {required:.2}σ per cell\n");
    println!(
        "{:<42} {:<22} {:>10} {:>7}  margin",
        "scenario", "method", "P_fail", "sigma"
    );
    for row in plan().summarize(&report) {
        let margin = &row.capacity_margins[0];
        println!(
            "{:<42} {:<22} {:>10.2e} {:>7.3}  {} ({:+.2}σ)",
            row.problem,
            row.estimator,
            row.failure_probability,
            row.sigma_level,
            if margin.meets { "pass" } else { "fail" },
            margin.margin_sigma
        );
    }
    clear_checkpoint(&checkpoint).expect("example checkpoint is clearable");
}
