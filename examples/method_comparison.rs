//! Side-by-side comparison of every extraction method in the library.
//!
//! All five estimators attack the same problem — the surrogate read-access-time
//! failure at roughly 4.5σ — with comparable budgets, and the example prints a
//! table in the style of the paper's evaluation: estimate, sigma level,
//! confidence, simulator calls and speed-up versus brute-force Monte Carlo.
//!
//! Run with `cargo run --release --example method_comparison`.

use sram_highsigma::highsigma::{
    default_sram_variation_space, required_samples, ExtractionResult, FailureProblem, GisConfig,
    GradientImportanceSampling, ImportanceSamplingConfig, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, ScaledSigmaSampling, SphericalSampling, SphericalSamplingConfig, Spec,
    SramMetric, SramSurrogateModel, SssConfig,
};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

fn build_problem() -> FailureProblem {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramSurrogateModel::new(
        SramSurrogate::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    );
    let nominal = model.nominal_metric();
    FailureProblem::from_model(model, Spec::UpperLimit(2.0 * nominal))
}

fn print_row(result: &ExtractionResult) {
    let mc_cost = if result.failure_probability > 0.0 && result.failure_probability < 1.0 {
        required_samples(result.failure_probability, 0.1)
    } else {
        f64::NAN
    };
    let speedup = if result.evaluations > 0 {
        mc_cost / result.evaluations as f64
    } else {
        f64::NAN
    };
    println!(
        "{:<24} {:>12.3e} {:>8.2} {:>10.1} {:>12} {:>10.0} {:>10}",
        result.method,
        result.failure_probability,
        result.sigma_level,
        result.relative_confidence_90() * 100.0,
        result.evaluations,
        speedup,
        result.converged
    );
}

fn main() {
    let base = build_problem();
    println!("problem: surrogate 6T read access time > 2.0x nominal");
    println!(
        "\n{:<24} {:>12} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "method", "P_fail", "sigma", "+/-90% [%]", "#sims", "speedup", "converged"
    );

    let sampling = ImportanceSamplingConfig {
        max_samples: 20_000,
        batch_size: 500,
        target_relative_error: 0.1,
        min_failures: 30,
    };

    // Gradient Importance Sampling (proposed).
    let gis = GradientImportanceSampling::new(GisConfig {
        sampling: sampling.clone(),
        ..GisConfig::default()
    });
    let outcome = gis.run(&base.fork(), &mut RngStream::from_seed(1));
    print_row(&outcome.result);

    // Minimum-norm importance sampling.
    let mnis = MinimumNormIs::new(MnisConfig {
        sampling: sampling.clone(),
        ..MnisConfig::default()
    });
    let (mnis_result, _, _) = mnis.run(&base.fork(), &mut RngStream::from_seed(2));
    print_row(&mnis_result);

    // Spherical sampling.
    let spherical = SphericalSampling::new(SphericalSamplingConfig {
        directions: 1_000,
        ..SphericalSamplingConfig::default()
    });
    let spherical_result = spherical.run(&base.fork(), &mut RngStream::from_seed(3));
    print_row(&spherical_result);

    // Scaled-sigma sampling.
    let sss = ScaledSigmaSampling::new(SssConfig {
        samples_per_scale: 4_000,
        ..SssConfig::default()
    });
    let (sss_result, _) = sss.run(&base.fork(), &mut RngStream::from_seed(4));
    print_row(&sss_result);

    // Brute-force Monte Carlo with a 500k budget: demonstrates why it cannot
    // reach high sigma.
    let mc = MonteCarlo::new(MonteCarloConfig {
        max_samples: 500_000,
        batch_size: 50_000,
        target_relative_error: 0.1,
        min_failures: 10,
    });
    let mc_result = mc.run(&base.fork(), &mut RngStream::from_seed(5));
    print_row(&mc_result);

    println!(
        "\nnote: speed-up is measured against the analytical brute-force cost for 10% relative error\n      at each method's own estimate; `NaN` means the method produced no usable estimate."
    );
}
