//! Side-by-side comparison of every extraction method in the library.
//!
//! All five estimators attack the same problem — the surrogate read-access-time
//! failure at roughly 4.5σ — with comparable budgets, driven by the unified
//! [`YieldAnalysis`] API: the estimators are registered as `Box<dyn Estimator>`,
//! a uniform convergence policy caps every method's budget, and each method's
//! RNG stream is derived deterministically from one master seed. The example
//! prints a table in the style of the paper's evaluation: estimate, sigma
//! level, confidence, simulator calls and speed-up versus brute-force Monte
//! Carlo.
//!
//! Run with `cargo run --release --example method_comparison`.
//!
//! [`YieldAnalysis`]: sram_highsigma::highsigma::YieldAnalysis

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    default_sram_variation_space, ComparisonRow, ConvergencePolicy, Estimator, ExecutionConfig,
    FailureProblem, GisConfig, GradientImportanceSampling, MinimumNormIs, MnisConfig, MonteCarlo,
    MonteCarloConfig, ScaledSigmaSampling, Spec, SphericalSampling, SphericalSamplingConfig,
    SramMetric, SramSurrogateModel, SssConfig, YieldAnalysis,
};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate};
use sram_highsigma::variation::PelgromModel;

fn build_problem() -> FailureProblem {
    let cell = SramCellConfig::typical_45nm();
    let space = default_sram_variation_space(&cell, &PelgromModel::typical_45nm());
    let model = SramSurrogateModel::new(
        SramSurrogate::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    );
    let nominal = model.nominal_metric();
    FailureProblem::from_model(model, Spec::UpperLimit(2.0 * nominal))
}

fn print_row(row: &ComparisonRow) {
    println!(
        "{:<24} {:>12.3e} {:>8.2} {:>10.1} {:>12} {:>10.0} {:>10}",
        row.method,
        row.failure_probability,
        row.sigma_level,
        row.relative_confidence_90 * 100.0,
        row.evaluations,
        row.speedup_vs_monte_carlo,
        row.converged
    );
}

fn main() {
    println!("problem: surrogate 6T read access time > 2.0x nominal");
    println!(
        "\n{:<24} {:>12} {:>8} {:>10} {:>12} {:>10} {:>10}",
        "method", "P_fail", "sigma", "+/-90% [%]", "#sims", "speedup", "converged"
    );

    // All five methods behind the same trait, each with its own budget (the
    // IS methods keep their 50k defaults; Monte Carlo gets 500k). The second
    // table below shows the same line-up under one uniform policy instead.
    let estimators: Vec<Box<dyn Estimator>> = vec![
        Box::new(GradientImportanceSampling::new(GisConfig::default())),
        Box::new(MinimumNormIs::new(MnisConfig::default())),
        Box::new(SphericalSampling::new(SphericalSamplingConfig {
            directions: 1_000,
            ..SphericalSamplingConfig::default()
        })),
        Box::new(ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: 4_000,
            ..SssConfig::default()
        })),
        // Brute-force Monte Carlo with a 500k budget: demonstrates why it
        // cannot reach high sigma.
        Box::new(MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 500_000,
            batch_size: 50_000,
            target_relative_error: 0.1,
            min_failures: 10,
        })),
    ];

    // Parallelism is picked once on the driver (here: the GIS_THREADS
    // environment variable, serial by default). Per the determinism contract
    // of the evaluation engine, the thread count never changes the estimates —
    // only the wall-clock.
    let report = YieldAnalysis::new()
        .master_seed(2018)
        .execution(ExecutionConfig::from_env())
        .problem("surrogate-read", build_problem())
        .estimators(estimators)
        .run();

    for row in report.problems[0].rows() {
        print_row(&row);
    }

    // The same comparison under one uniform budget, via the convergence
    // policy: every estimator is capped at 20k sampling evaluations.
    println!("\nsame line-up under a uniform 20k-evaluation policy:");
    let report = YieldAnalysis::new()
        .master_seed(2018)
        .convergence_policy(
            ConvergencePolicy::with_budget(20_000)
                .target_relative_error(0.1)
                .min_failures(30),
        )
        .problem("surrogate-read", build_problem())
        .estimators(sram_highsigma::highsigma::standard_estimators())
        .run();
    for row in report.problems[0].rows() {
        print_row(&row);
    }

    println!(
        "\nnote: speed-up is measured against the analytical brute-force cost for 10% relative error\n      at each method's own estimate; `NaN` means the method produced no usable estimate."
    );
}
