//! Quickstart: estimate a high-sigma SRAM read failure probability in a few
//! lines.
//!
//! The example builds the default 45 nm 6T cell surrogate, defines the failure
//! specification as 1.8× the nominal read access time, runs Gradient Importance
//! Sampling, and prints the result together with what brute-force Monte Carlo
//! would have cost for the same accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

// Example code: abort-on-error keeps the walkthrough linear.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use sram_highsigma::highsigma::{
    default_sram_variation_space, required_samples, Estimator, FailureProblem, GisConfig,
    GradientImportanceSampling, Spec, SramMetric, SramSurrogateModel,
};
use sram_highsigma::sram::{SramCellConfig, SramSurrogate};
use sram_highsigma::stats::RngStream;
use sram_highsigma::variation::PelgromModel;

fn main() {
    // 1. Describe the cell and its process variation (Pelgrom ΔVth mismatch).
    let cell = SramCellConfig::typical_45nm();
    let pelgrom = PelgromModel::typical_45nm();
    let space = default_sram_variation_space(&cell, &pelgrom);
    println!("variation space: {} parameters", space.dim());
    for (name, sigma) in space.names().iter().zip(space.std_devs().iter()) {
        println!("  {name:<10} sigma = {:.1} mV", sigma * 1e3);
    }

    // 2. Build the performance model (surrogate for speed; swap in
    //    `SramTransientModel` for full transient simulation) and the spec.
    let model = SramSurrogateModel::new(
        SramSurrogate::typical_45nm(),
        space,
        SramMetric::ReadAccessTime,
    );
    let nominal = model.nominal_metric();
    let spec = Spec::UpperLimit(1.8 * nominal);
    println!(
        "\nnominal read access time: {:.1} ps, spec limit: {:.1} ps",
        nominal * 1e12,
        spec.limit() * 1e12
    );
    let problem = FailureProblem::from_model(model, spec);

    // 3. Run Gradient Importance Sampling through the unified Estimator API.
    let gis = GradientImportanceSampling::new(GisConfig::default());
    let mut rng = RngStream::from_seed(2024);
    let outcome = gis.estimate(&problem, &mut rng);

    // 4. Report.
    let r = &outcome.result;
    println!("\n--- Gradient Importance Sampling ---");
    println!("failure probability : {:.3e}", r.failure_probability);
    println!("equivalent sigma    : {:.2} sigma", r.sigma_level);
    println!(
        "confidence (90%)    : +/- {:.1}%",
        r.relative_confidence_90() * 100.0
    );
    println!("simulator calls     : {}", r.evaluations);
    println!(
        "  of which search   : {}",
        r.evaluations - r.sampling_evaluations
    );
    let mpfp = outcome.mpfp().expect("GIS reports its MPFP search");
    println!("MPFP distance       : {:.2} sigma", mpfp.beta);

    if r.failure_probability > 0.0 && r.failure_probability < 1.0 {
        let mc_cost = required_samples(r.failure_probability, 0.1);
        println!(
            "\nbrute-force Monte Carlo would need ~{:.1e} simulations for the same accuracy ({}x more)",
            mc_cost,
            (mc_cost / r.evaluations as f64).round()
        );
    }
}
