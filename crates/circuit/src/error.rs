//! Error type for circuit construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A device referenced a node id that does not exist in the circuit.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes the circuit actually has.
        num_nodes: usize,
    },
    /// A device parameter was invalid (non-positive resistance, NaN capacitance, …).
    InvalidDevice {
        /// Name of the device.
        device: String,
        /// Explanation of what is wrong.
        reason: String,
    },
    /// The Newton–Raphson iteration failed to converge.
    NewtonDidNotConverge {
        /// Analysis that failed ("dc" or "transient").
        analysis: &'static str,
        /// Simulation time at which the failure occurred (0 for DC).
        time: f64,
        /// Number of iterations attempted.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
    },
    /// The linearized MNA system could not be solved.
    SingularSystem {
        /// Simulation time at which the failure occurred (0 for DC).
        time: f64,
        /// Underlying linear algebra error.
        source: gis_linalg::LinalgError,
    },
    /// The requested analysis was configured inconsistently.
    InvalidAnalysis(String),
    /// A waveform measurement could not be computed (signal never crossed, …).
    MeasurementFailed(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { node, num_nodes } => {
                write!(f, "unknown node {node} (circuit has {num_nodes} nodes)")
            }
            CircuitError::InvalidDevice { device, reason } => {
                write!(f, "invalid device `{device}`: {reason}")
            }
            CircuitError::NewtonDidNotConverge {
                analysis,
                time,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} analysis did not converge at t = {time:.3e}s after {iterations} iterations (residual {residual:.3e})"
            ),
            CircuitError::SingularSystem { time, source } => {
                write!(f, "singular MNA system at t = {time:.3e}s: {source}")
            }
            CircuitError::InvalidAnalysis(msg) => write!(f, "invalid analysis setup: {msg}"),
            CircuitError::MeasurementFailed(msg) => write!(f, "measurement failed: {msg}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::SingularSystem { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<gis_linalg::LinalgError> for CircuitError {
    fn from(e: gis_linalg::LinalgError) -> Self {
        CircuitError::SingularSystem {
            time: 0.0,
            source: e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CircuitError::UnknownNode {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('7'));

        let e = CircuitError::NewtonDidNotConverge {
            analysis: "dc",
            time: 0.0,
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("did not converge"));

        let le = gis_linalg::LinalgError::Singular {
            pivot: 0,
            value: 0.0,
        };
        let e: CircuitError = le.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));

        assert!(CircuitError::InvalidAnalysis("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CircuitError::MeasurementFailed("no crossing".into())
            .to_string()
            .contains("no crossing"));
        assert!(CircuitError::InvalidDevice {
            device: "R1".into(),
            reason: "negative".into()
        }
        .to_string()
        .contains("R1"));
    }
}
