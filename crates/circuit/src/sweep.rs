//! DC sweep analysis: repeatedly solve the operating point while stepping the
//! value of one independent voltage source.
//!
//! The SRAM static analyses (static noise margin, trip points, data-retention
//! voltage) are built on voltage-transfer curves obtained this way.

use crate::error::CircuitError;
use crate::mna::{MnaSystem, MAX_NEWTON_ITERATIONS};
use crate::netlist::{Circuit, Device, NodeId, SourceWaveform};
use crate::waveform::Waveform;
use gis_linalg::Vector;

/// Result of a DC sweep: the swept source values and the corresponding node
/// voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSweepResult {
    swept_values: Vec<f64>,
    node_voltages: Vec<Vec<f64>>,
}

impl DcSweepResult {
    /// The swept source values.
    pub fn swept_values(&self) -> &[f64] {
        &self.swept_values
    }

    /// Number of sweep points.
    pub fn num_points(&self) -> usize {
        self.swept_values.len()
    }

    /// Voltage of `node` across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn node_voltage_samples(&self, node: NodeId) -> Result<Vec<f64>, CircuitError> {
        if self.node_voltages.is_empty() || node >= self.node_voltages[0].len() {
            return Err(CircuitError::UnknownNode {
                node,
                num_nodes: self.node_voltages.first().map(|v| v.len()).unwrap_or(0),
            });
        }
        Ok(self.node_voltages.iter().map(|v| v[node]).collect())
    }

    /// Builds a transfer curve (`swept value` → `node voltage`) as a [`Waveform`]
    /// so the crossing/interpolation helpers can be reused.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] for a bad node, or
    /// [`CircuitError::MeasurementFailed`] if the swept values are not strictly
    /// increasing.
    pub fn transfer_curve(&self, node: NodeId) -> Result<Waveform, CircuitError> {
        Waveform::from_samples(self.swept_values.clone(), self.node_voltage_samples(node)?)
    }
}

/// Sweeps the DC value of the voltage source named `source_name` over `values`,
/// solving the operating point at every step (each solution warm-starts the
/// next, which is what makes sweeps through bistable regions well-behaved).
///
/// # Errors
///
/// * [`CircuitError::InvalidAnalysis`] if the source does not exist, is not a
///   voltage source, or `values` is empty.
/// * Any Newton/singularity error from the per-point solves.
pub fn dc_sweep(
    circuit: &Circuit,
    source_name: &str,
    values: &[f64],
    initial_node_voltages: Option<&[f64]>,
) -> Result<DcSweepResult, CircuitError> {
    if values.is_empty() {
        return Err(CircuitError::InvalidAnalysis(
            "dc sweep needs at least one value".to_string(),
        ));
    }
    let source_index = circuit
        .devices()
        .iter()
        .position(|d| matches!(d, Device::VoltageSource { .. }) && d.name() == source_name)
        .ok_or_else(|| {
            CircuitError::InvalidAnalysis(format!(
                "no voltage source named `{source_name}` in the circuit"
            ))
        })?;

    let mut working = circuit.clone();
    let mut swept_values = Vec::with_capacity(values.len());
    let mut node_voltages = Vec::with_capacity(values.len());
    let mut guess: Option<Vector> = None;

    for &value in values {
        if let Device::VoltageSource { waveform, .. } = &mut working.devices_mut()[source_index] {
            *waveform = SourceWaveform::Dc(value);
        }
        let system = MnaSystem::new(&working)?;
        let x = match &guess {
            Some(previous) => {
                system.solve_newton(previous.clone(), 0.0, None, "dc", MAX_NEWTON_ITERATIONS)?
            }
            None => system.dc_operating_point(initial_node_voltages)?,
        };
        swept_values.push(value);
        node_voltages.push(system.node_voltages(&x));
        guess = Some(x);
    }

    Ok(DcSweepResult {
        swept_values,
        node_voltages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::netlist::GROUND;

    fn inverter_circuit() -> (Circuit, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source("VIN", input, GROUND, SourceWaveform::dc(0.0));
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        (ckt, input, out)
    }

    #[test]
    fn inverter_transfer_curve_is_monotone_decreasing() {
        let (ckt, _input, out) = inverter_circuit();
        let values: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
        let sweep = dc_sweep(&ckt, "VIN", &values, Some(&[0.0, 1.0, 0.0, 1.0])).unwrap();
        assert_eq!(sweep.num_points(), 51);
        let vtc = sweep.node_voltage_samples(out).unwrap();
        assert!(
            vtc[0] > 0.95,
            "output should be high at Vin = 0, got {}",
            vtc[0]
        );
        assert!(
            vtc[50] < 0.05,
            "output should be low at Vin = 1, got {}",
            vtc[50]
        );
        for pair in vtc.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-6, "VTC must be non-increasing");
        }
        // The switching threshold is somewhere mid-rail.
        let curve = sweep.transfer_curve(out).unwrap();
        let trip = curve
            .crossing_time(0.5, crate::waveform::CrossingDirection::Falling, 0.0)
            .unwrap();
        assert!(trip > 0.3 && trip < 0.7, "trip point {trip}");
    }

    #[test]
    fn sweep_validation_errors() {
        let (ckt, _, _) = inverter_circuit();
        assert!(dc_sweep(&ckt, "VIN", &[], None).is_err());
        assert!(dc_sweep(&ckt, "NOPE", &[0.0], None).is_err());
        let sweep = dc_sweep(&ckt, "VIN", &[0.0, 0.5], None).unwrap();
        assert!(sweep.node_voltage_samples(99).is_err());
    }

    #[test]
    fn resistor_divider_sweep_is_linear() {
        let mut ckt = Circuit::new();
        let input = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("VIN", input, GROUND, SourceWaveform::dc(0.0));
        ckt.add_resistor("R1", input, mid, 1e3).unwrap();
        ckt.add_resistor("R2", mid, GROUND, 1e3).unwrap();
        let values = [0.0, 0.5, 1.0, 1.5, 2.0];
        let sweep = dc_sweep(&ckt, "VIN", &values, None).unwrap();
        let mids = sweep.node_voltage_samples(mid).unwrap();
        for (v, m) in values.iter().zip(mids.iter()) {
            assert!((m - v / 2.0).abs() < 1e-6);
        }
    }
}
