//! MOSFET compact model.
//!
//! The model is a smooth long-channel square-law/EKV hybrid:
//!
//! * the effective overdrive is a soft-plus interpolation
//!   `V_ov,eff = 2nφ_t · ln(1 + exp((V_GS − V_T)/(2nφ_t)))`, which gives the
//!   classic square law in strong inversion and an exponential subthreshold
//!   characteristic in weak inversion — both matter for high-sigma SRAM
//!   failures, where one transistor can easily be pushed 5σ into subthreshold;
//! * triode and saturation regions are joined continuously at `V_DS = V_ov,eff`
//!   with channel-length modulation `(1 + λ V_DS)`;
//! * a linearized body effect `V_T = V_T0 + γ_lin · V_SB` captures the
//!   source-degeneration of the SRAM pass gates.
//!
//! The model returns the drain current and its partial derivatives
//! (`g_m`, `g_ds`, `g_mb`) so that the Newton solver can stamp a consistent
//! linearization.

use serde::{Deserialize, Serialize};

/// Thermal voltage at room temperature, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosfetPolarity {
    /// Sign convention multiplier: +1 for NMOS, −1 for PMOS.
    pub fn sign(self) -> f64 {
        match self {
            MosfetPolarity::Nmos => 1.0,
            MosfetPolarity::Pmos => -1.0,
        }
    }
}

/// Technology/model-card parameters of a MOSFET.
///
/// The defaults approximate a generic 45 nm low-power CMOS device and are the
/// basis of the SRAM cell used throughout the evaluation; per-instance
/// threshold-voltage shifts (process variation) are applied on top via
/// [`MosfetParams::with_vth_shift`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Channel polarity.
    pub polarity: MosfetPolarity,
    /// Zero-bias threshold voltage magnitude in volts (positive for both polarities).
    pub vth0: f64,
    /// Transconductance factor `k' · W/L` in A/V².
    pub k_prime: f64,
    /// Channel width in metres (used by the Pelgrom mismatch model).
    pub width: f64,
    /// Channel length in metres (used by the Pelgrom mismatch model).
    pub length: f64,
    /// Channel-length modulation coefficient λ in 1/V.
    pub lambda: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub subthreshold_slope: f64,
    /// Linearized body-effect coefficient γ_lin (dimensionless): `ΔV_T = γ_lin · V_SB`.
    pub body_effect: f64,
}

impl MosfetParams {
    /// Generic NMOS device for the 45 nm-class SRAM cell.
    pub fn nmos_45nm() -> Self {
        MosfetParams {
            polarity: MosfetPolarity::Nmos,
            vth0: 0.45,
            k_prime: 4.0e-4,
            width: 90e-9,
            length: 45e-9,
            lambda: 0.08,
            subthreshold_slope: 1.4,
            body_effect: 0.15,
        }
    }

    /// Generic PMOS device for the 45 nm-class SRAM cell (weaker than NMOS,
    /// reflecting the hole-mobility deficit).
    pub fn pmos_45nm() -> Self {
        MosfetParams {
            polarity: MosfetPolarity::Pmos,
            vth0: 0.45,
            k_prime: 2.0e-4,
            width: 90e-9,
            length: 45e-9,
            lambda: 0.10,
            subthreshold_slope: 1.4,
            body_effect: 0.15,
        }
    }

    /// Returns a copy with the channel width scaled by `factor` (the drive
    /// strength `k' W/L` scales along with it).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn with_width_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "width factor must be positive");
        self.width *= factor;
        self.k_prime *= factor;
        self
    }

    /// Returns a copy with the threshold voltage shifted by `delta_v` volts.
    ///
    /// This is the hook through which the process-variation layer perturbs each
    /// transistor of the SRAM cell.
    pub fn with_vth_shift(mut self, delta_v: f64) -> Self {
        self.vth0 += delta_v;
        self
    }

    /// Validates the parameter set, returning a human-readable reason when invalid.
    pub fn validate(&self) -> Result<(), String> {
        if !self.vth0.is_finite() {
            return Err(format!("vth0 must be finite, got {}", self.vth0));
        }
        if !(self.k_prime > 0.0) || !self.k_prime.is_finite() {
            return Err(format!("k_prime must be positive, got {}", self.k_prime));
        }
        if !(self.width > 0.0) || !(self.length > 0.0) {
            return Err("width and length must be positive".to_string());
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        if self.subthreshold_slope < 1.0 {
            return Err(format!(
                "subthreshold slope factor must be >= 1, got {}",
                self.subthreshold_slope
            ));
        }
        if self.body_effect < 0.0 {
            return Err(format!(
                "body effect coefficient must be non-negative, got {}",
                self.body_effect
            ));
        }
        Ok(())
    }
}

/// Operating-point evaluation of a MOSFET: drain current and small-signal
/// conductances, all in the *device's own* polarity convention (current flows
/// drain→source for positive overdrive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetOperatingPoint {
    /// Drain current in amperes (positive flowing into the drain terminal for
    /// NMOS in normal operation; sign handled by the caller for PMOS).
    pub id: f64,
    /// Transconductance ∂I_D/∂V_GS in siemens.
    pub gm: f64,
    /// Output conductance ∂I_D/∂V_DS in siemens.
    pub gds: f64,
    /// Body transconductance ∂I_D/∂V_BS in siemens.
    pub gmb: f64,
}

/// Numerically safe soft-plus `s·ln(1 + exp(x/s))` and its derivative (the
/// logistic function).
///
/// This is the hot transcendental of the whole transient kernel: one `exp`
/// (and usually one `ln`) per MOSFET per Newton iteration. Each branch
/// computes its `exp` exactly once; the deep-subthreshold branch used to call
/// `t.exp()` twice (value and derivative), paying a second ~50-cycle
/// transcendental for bit-identical output.
#[inline]
fn softplus(x: f64, s: f64) -> (f64, f64) {
    let t = x / s;
    if t > 40.0 {
        (x, 1.0)
    } else if t < -40.0 {
        let e = t.exp();
        (s * e, e)
    } else {
        let e = t.exp();
        (s * (1.0 + e).ln(), e / (1.0 + e))
    }
}

/// Polynomial `exp(x)` for the opt-in fast lane: `x = k·ln2 + r` with
/// `|r| ≤ ln2/2`, a degree-6 minimax-style polynomial on `r`, and the `2^k`
/// scale assembled directly in the exponent bits. Max relative error is
/// ~1e-13 over the biases the MOSFET model produces — far below the
/// waveform tolerance the fast lane is gated on, but *not* bit-identical to
/// libm, which is why [`crate::TransientKernel::Fast`] is opt-in.
#[inline]
fn fast_exp(x: f64) -> f64 {
    if x < -708.0 {
        return 0.0;
    }
    if x > 709.0 {
        return f64::INFINITY;
    }
    // Round-to-nearest-even via the 1.5·2⁵² magic constant: unlike
    // `f64::round` (half-away-from-zero, which has no vector instruction on
    // x86) this is two adds, so the lane-group variant vectorizes. Any
    // nearest integer is a valid exponent split — only |r| ≤ ln2/2 + 1 ulp
    // matters.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    let k = (x * std::f64::consts::LOG2_E + SHIFT) - SHIFT;
    // Cody–Waite split of ln2 keeps the reduced argument accurate.
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_700_2e-10;
    const P1: f64 = 1.666_666_666_666_660_190_37e-1;
    const P2: f64 = -2.777_777_777_015_593_384_2e-3;
    const P3: f64 = 6.613_756_321_437_934_361_17e-5;
    const P4: f64 = -1.653_390_220_546_525_153_9e-6;
    const P5: f64 = 4.138_136_797_057_238_460_39e-8;
    let hi = x - k * LN2_HI;
    let lo = k * LN2_LO;
    let r = hi - lo;
    let rr = r * r;
    // FDLIBM-style rational kernel on the reduced argument (< 1 ulp).
    let c = r - rr * (P1 + rr * (P2 + rr * (P3 + rr * (P4 + rr * P5))));
    let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
    // k is integral and inside [-1022, 1023] thanks to the range guards above, so both casts are exact.
    let scale = f64::from_bits(((k as i64 + 1023) as u64) << 52);
    y * scale
}

/// Polynomial `ln(x)` for the opt-in fast lane: exponent/mantissa split with
/// the mantissa normalized into `[√½, √2)`, then the atanh series
/// `ln(m) = 2·(s + s³/3 + s⁵/5 + …)` with `s = (m−1)/(m+1)`. Max relative
/// error ~1e-14 for the positive finite arguments the model produces.
#[inline]
fn fast_ln(x: f64) -> f64 {
    debug_assert!(
        x > 0.0 && x.is_finite(),
        "fast_ln requires positive finite x"
    );
    let bits = x.to_bits();
    // Unbiased exponent of a positive finite f64 is in [-1022, 1023] and exact as f64.
    let mut e = ((bits >> 52) as i64 - 1023) as f64;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1.0;
    }
    // FDLIBM log kernel on m ∈ [√2/2, √2]: ln(m) = f − (hfsq − s·(hfsq+R)).
    const LG1: f64 = 6.666_666_666_666_735_13e-1;
    const LG2: f64 = 3.999_999_999_940_941_908e-1;
    const LG3: f64 = 2.857_142_874_366_239_149e-1;
    const LG4: f64 = 2.222_219_843_214_978_396e-1;
    const LG5: f64 = 1.818_357_216_161_805_012e-1;
    const LG6: f64 = 1.531_383_769_920_937_332e-1;
    const LG7: f64 = 1.479_819_860_511_658_591e-1;
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_700_2e-10;
    let f = m - 1.0;
    let hfsq = 0.5 * f * f;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG2 + w * (LG4 + w * LG6));
    let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
    let r = t2 + t1;
    e * LN2_HI + (f - (hfsq - s * (hfsq + r)) + e * LN2_LO)
}

/// Fast-lane counterpart of [`softplus`]: identical branch structure, with
/// the transcendentals replaced by [`fast_exp`]/[`fast_ln`].
#[inline]
fn softplus_fast(x: f64, s: f64) -> (f64, f64) {
    let t = x / s;
    if t > 40.0 {
        (x, 1.0)
    } else if t < -40.0 {
        let e = fast_exp(t);
        (s * e, e)
    } else {
        let e = fast_exp(t);
        (s * fast_ln(1.0 + e), e / (1.0 + e))
    }
}

/// Lane-group operating point of the lane-batched fast model: the
/// structure-of-arrays mirror of [`MosfetOperatingPoint`] for `L` lockstep
/// lanes.
pub(crate) struct LaneOperatingPoint<const L: usize> {
    /// Drain currents.
    pub id: [f64; L],
    /// Transconductances.
    pub gm: [f64; L],
    /// Output conductances.
    pub gds: [f64; L],
    /// Body transconductances.
    pub gmb: [f64; L],
}

/// Branch-free lane-group `exp`: the identical Cody–Waite reduction and
/// rational kernel as [`fast_exp`], with the overflow/underflow early returns
/// replaced by an input clamp so every lane follows one straight-line path
/// (which lets the whole group compile to lane-wide vector operations). For
/// arguments inside `(-708, 709)` the result is bit-identical to
/// [`fast_exp`]; outside, the clamp saturates instead of snapping to 0/∞,
/// which is far below the fast lane's calibration tolerance either way.
#[inline]
fn fast_exp_lanes<const L: usize>(x: [f64; L]) -> [f64; L] {
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_700_2e-10;
    const P1: f64 = 1.666_666_666_666_660_190_37e-1;
    const P2: f64 = -2.777_777_777_015_593_384_2e-3;
    const P3: f64 = 6.613_756_321_437_934_361_17e-5;
    const P4: f64 = -1.653_390_220_546_525_153_9e-6;
    const P5: f64 = 4.138_136_797_057_238_460_39e-8;
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    let mut out = [0.0; L];
    for lane in 0..L {
        let xc = x[lane].clamp(-708.0, 709.0);
        // Same magic-constant round-to-nearest-even as the scalar kernel.
        let k = (xc * std::f64::consts::LOG2_E + SHIFT) - SHIFT;
        let hi = xc - k * LN2_HI;
        let lo = k * LN2_LO;
        let r = hi - lo;
        let rr = r * r;
        let c = r - rr * (P1 + rr * (P2 + rr * (P3 + rr * (P4 + rr * P5))));
        let y = 1.0 - ((lo - (r * c) / (2.0 - c)) - hi);
        // k is integral and inside [-1022, 1023] thanks to the clamp above, so both casts are exact.
        let scale = f64::from_bits(((k as i64 + 1023) as u64) << 52);
        out[lane] = y * scale;
    }
    out
}

/// Branch-free lane-group `ln`: the identical exponent/mantissa split and
/// FDLIBM kernel as [`fast_ln`], with the `m > √2` renormalization turned
/// into a per-lane select. Bit-identical to [`fast_ln`] for every positive
/// finite argument.
#[inline]
fn fast_ln_lanes<const L: usize>(x: [f64; L]) -> [f64; L] {
    const LG1: f64 = 6.666_666_666_666_735_13e-1;
    const LG2: f64 = 3.999_999_999_940_941_908e-1;
    const LG3: f64 = 2.857_142_874_366_239_149e-1;
    const LG4: f64 = 2.222_219_843_214_978_396e-1;
    const LG5: f64 = 1.818_357_216_161_805_012e-1;
    const LG6: f64 = 1.531_383_769_920_937_332e-1;
    const LG7: f64 = 1.479_819_860_511_658_591e-1;
    const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_700_2e-10;
    let mut out = [0.0; L];
    for lane in 0..L {
        let v = x[lane];
        debug_assert!(
            v > 0.0 && v.is_finite(),
            "fast_ln requires positive finite x"
        );
        let bits = v.to_bits();
        // Unbiased exponent of a positive finite f64 is in [-1022, 1023] and exact as f64.
        let e_raw = ((bits >> 52) as i64 - 1023) as f64;
        let m_raw = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
        let shrink = m_raw > std::f64::consts::SQRT_2;
        let m = if shrink { m_raw * 0.5 } else { m_raw };
        let e = if shrink { e_raw + 1.0 } else { e_raw };
        let f = m - 1.0;
        let hfsq = 0.5 * f * f;
        let s = f / (2.0 + f);
        let z = s * s;
        let w = z * z;
        let t1 = w * (LG2 + w * (LG4 + w * LG6));
        let t2 = z * (LG1 + w * (LG3 + w * (LG5 + w * LG7)));
        let r = t2 + t1;
        out[lane] = e * LN2_HI + (f - (hfsq - s * (hfsq + r)) + e * LN2_LO);
    }
    out
}

/// Branch-free lane-group soft-plus of the fast lane: the mid-range branch of
/// [`softplus_fast`] computed unconditionally for all lanes, with the two
/// asymptotic branches applied as per-lane selects on the identical `±40`
/// thresholds. Inside the mid range (every bias the SRAM waveforms produce)
/// the values are [`softplus_fast`]'s bit for bit.
#[inline]
fn softplus_fast_lanes<const L: usize>(x: [f64; L], s: [f64; L]) -> ([f64; L], [f64; L]) {
    let mut t = [0.0; L];
    let mut tc = [0.0; L];
    for lane in 0..L {
        t[lane] = x[lane] / s[lane];
        tc[lane] = t[lane].min(40.0);
    }
    let e = fast_exp_lanes::<L>(tc);
    let mut one_e = [0.0; L];
    for lane in 0..L {
        one_e[lane] = 1.0 + e[lane];
    }
    let ln1e = fast_ln_lanes::<L>(one_e);
    let mut val = [0.0; L];
    let mut der = [0.0; L];
    for lane in 0..L {
        let v = if t[lane] < -40.0 {
            s[lane] * e[lane]
        } else {
            s[lane] * ln1e[lane]
        };
        let d = if t[lane] < -40.0 {
            e[lane]
        } else {
            e[lane] / one_e[lane]
        };
        val[lane] = if t[lane] > 40.0 { x[lane] } else { v };
        der[lane] = if t[lane] > 40.0 { 1.0 } else { d };
    }
    (val, der)
}

/// Lane-batched fast-lane model evaluation: the identical device equations as
/// [`MosfetParams::evaluate_normalized_fast`] with the soft-plus computed by
/// the branch-free lane-group kernels and the triode/saturation split turned
/// into a per-lane blend (both regions evaluated, selected on the scalar
/// model's `vds < vov_eff` test). One straight-line pass over `L` lanes, so
/// the transcendentals and the polynomial tail vectorize across lanes.
/// Model-card fields arrive as per-lane arrays because Monte-Carlo samples
/// perturb each lane's thresholds independently.
#[allow(clippy::too_many_arguments)] // structure-of-arrays batch call
#[inline]
pub(crate) fn evaluate_normalized_fast_lanes<const L: usize>(
    vth0: [f64; L],
    k_prime: [f64; L],
    lambda: [f64; L],
    two_n_phi_t: [f64; L],
    body_effect: [f64; L],
    vgs: [f64; L],
    vds: [f64; L],
    vbs: [f64; L],
) -> LaneOperatingPoint<L> {
    let mut vov = [0.0; L];
    for lane in 0..L {
        let vt = vth0[lane] - body_effect[lane] * vbs[lane];
        vov[lane] = vgs[lane] - vt;
    }
    let (vov_eff_raw, dsp) = softplus_fast_lanes::<L>(vov, two_n_phi_t);
    let mut id = [0.0; L];
    let mut gm = [0.0; L];
    let mut gds = [0.0; L];
    let mut gmb = [0.0; L];
    for lane in 0..L {
        let vov_eff = vov_eff_raw[lane].max(1e-30);
        let vd = vds[lane];
        let clm = 1.0 + lambda[lane] * vd;
        let k = k_prime[lane];
        let core_t = vov_eff * vd - 0.5 * vd * vd;
        let core_s = 0.5 * vov_eff * vov_eff;
        let triode = vd < vov_eff;
        let core = if triode { core_t } else { core_s };
        let id_l = k * core * clm;
        let dvov = if triode {
            k * vd * clm
        } else {
            k * vov_eff * clm
        };
        let dvds = if triode {
            k * (vov_eff - vd) * clm + k * core_t * lambda[lane]
        } else {
            k * core_s * lambda[lane]
        };
        // `gmb = -∂I/∂Vov,eff · ∂Vov,eff/∂Vov · ∂VT/∂VBS` with
        // `∂VT/∂VBS = -γ` — the two sign flips cancel exactly, so this is the
        // scalar expression's value bit for bit.
        let gm_l = dvov * dsp[lane];
        let gmb_l = gm_l * body_effect[lane];
        id[lane] = id_l.max(0.0);
        gm[lane] = gm_l.max(0.0);
        gds[lane] = dvds.max(0.0);
        gmb[lane] = gmb_l.max(0.0);
    }
    LaneOperatingPoint { id, gm, gds, gmb }
}

impl MosfetParams {
    /// Evaluates the drain current and conductances for the *normalized* bias
    /// voltages of an N-type device: `vgs`, `vds ≥ 0`, `vbs ≤ 0` (for a PMOS
    /// the caller flips terminal voltages before calling and flips the current
    /// sign afterwards — see [`crate::mna`]).
    ///
    /// The returned current is guaranteed finite for finite inputs.
    #[inline]
    pub fn evaluate_normalized(&self, vgs: f64, vds: f64, vbs: f64) -> MosfetOperatingPoint {
        self.evaluate_with(vgs, vds, vbs, softplus)
    }

    /// Fast-lane evaluation: the identical device equations with the
    /// soft-plus transcendentals computed by [`fast_exp`]/[`fast_ln`]. Not
    /// bit-identical to [`MosfetParams::evaluate_normalized`]; only reachable
    /// through the opt-in [`crate::TransientKernel::Fast`], whose acceptance
    /// is gated on the calibration harness and a documented waveform
    /// tolerance.
    #[inline]
    pub fn evaluate_normalized_fast(&self, vgs: f64, vds: f64, vbs: f64) -> MosfetOperatingPoint {
        self.evaluate_with(vgs, vds, vbs, softplus_fast)
    }

    #[inline]
    fn evaluate_with(
        &self,
        vgs: f64,
        vds: f64,
        vbs: f64,
        softplus_fn: fn(f64, f64) -> (f64, f64),
    ) -> MosfetOperatingPoint {
        debug_assert!(vds >= 0.0, "evaluate_normalized requires vds >= 0");
        let n_phi_t = self.subthreshold_slope * THERMAL_VOLTAGE;
        // Linearized body effect: VT rises as the source rises above the body
        // (reverse body bias, vbs < 0) and drops symmetrically for forward bias.
        let vt = self.vth0 - self.body_effect * vbs;
        let dvt_dvbs = -self.body_effect;

        let vov = vgs - vt;
        let (vov_eff, dvov_eff_dvov) = softplus_fn(vov, 2.0 * n_phi_t);
        // Guard against a zero effective overdrive deep in subthreshold.
        let vov_eff = vov_eff.max(1e-30);

        let clm = 1.0 + self.lambda * vds;
        let k = self.k_prime;

        let (id, did_dvoveff, did_dvds) = if vds < vov_eff {
            // Triode region.
            let core = vov_eff * vds - 0.5 * vds * vds;
            let id = k * core * clm;
            let did_dvoveff = k * vds * clm;
            let did_dvds = k * (vov_eff - vds) * clm + k * core * self.lambda;
            (id, did_dvoveff, did_dvds)
        } else {
            // Saturation region.
            let core = 0.5 * vov_eff * vov_eff;
            let id = k * core * clm;
            let did_dvoveff = k * vov_eff * clm;
            let did_dvds = k * core * self.lambda;
            (id, did_dvoveff, did_dvds)
        };

        let gm = did_dvoveff * dvov_eff_dvov;
        // VT depends on VBS; VOV = VGS − VT, so ∂I/∂VBS = −∂I/∂VOV · ∂VT/∂VBS.
        let gmb = -did_dvoveff * dvov_eff_dvov * dvt_dvbs;
        MosfetOperatingPoint {
            id: id.max(0.0),
            gm: gm.max(0.0),
            gds: did_dvds.max(0.0),
            gmb: gmb.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(MosfetParams::nmos_45nm().validate().is_ok());
        assert!(MosfetParams::pmos_45nm().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut p = MosfetParams::nmos_45nm();
        p.k_prime = -1.0;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.subthreshold_slope = 0.5;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.vth0 = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.width = 0.0;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.lambda = -0.1;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.body_effect = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn vth_shift_and_width_factor() {
        let p = MosfetParams::nmos_45nm();
        let shifted = p.with_vth_shift(0.05);
        assert!((shifted.vth0 - (p.vth0 + 0.05)).abs() < 1e-15);
        let wide = p.with_width_factor(2.0);
        assert!((wide.k_prime - 2.0 * p.k_prime).abs() < 1e-15);
        assert!((wide.width - 2.0 * p.width).abs() < 1e-15);
    }

    #[test]
    fn strong_inversion_square_law() {
        let p = MosfetParams::nmos_45nm();
        // Deep saturation: vds large, vgs well above threshold.
        let op = p.evaluate_normalized(1.0, 1.0, 0.0);
        let vov = 1.0 - p.vth0;
        let expected = 0.5 * p.k_prime * vov * vov * (1.0 + p.lambda * 1.0);
        let rel = (op.id - expected).abs() / expected;
        assert!(rel < 0.02, "square law mismatch: {} vs {expected}", op.id);
        assert!(op.gm > 0.0 && op.gds > 0.0);
    }

    #[test]
    fn subthreshold_is_exponential() {
        let p = MosfetParams::nmos_45nm();
        // 200 mV below threshold vs 300 mV below threshold at fixed vds — deep
        // enough that the soft-plus interpolation has converged to its
        // exponential asymptote.
        let i1 = p.evaluate_normalized(p.vth0 - 0.2, 0.5, 0.0).id;
        let i2 = p.evaluate_normalized(p.vth0 - 0.3, 0.5, 0.0).id;
        assert!(i1 > i2);
        let decade_ratio = i1 / i2;
        // 100 mV / (n · φt · ln 10) ≈ 1.2 decades for n = 1.4.
        let expected = 10f64.powf(0.1 / (p.subthreshold_slope * THERMAL_VOLTAGE * 10f64.ln()));
        let rel = (decade_ratio - expected).abs() / expected;
        assert!(
            rel < 0.1,
            "subthreshold slope off: {decade_ratio} vs {expected}"
        );
    }

    #[test]
    fn cutoff_current_is_negligible() {
        let p = MosfetParams::nmos_45nm();
        let op = p.evaluate_normalized(0.0, 1.0, 0.0);
        assert!(op.id < 1e-9, "off current too large: {}", op.id);
        assert!(op.id > 0.0, "off current should be positive (leakage)");
    }

    #[test]
    fn triode_current_increases_with_vds_and_is_continuous_at_vdsat() {
        let p = MosfetParams::nmos_45nm();
        let vgs = 1.0;
        let vov = vgs - p.vth0;
        let below = p.evaluate_normalized(vgs, vov - 1e-6, 0.0).id;
        let above = p.evaluate_normalized(vgs, vov + 1e-6, 0.0).id;
        assert!(
            (below - above).abs() / above < 1e-3,
            "discontinuity at vdsat"
        );
        let low = p.evaluate_normalized(vgs, 0.05, 0.0).id;
        let high = p.evaluate_normalized(vgs, 0.3, 0.0).id;
        assert!(high > low);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let p = MosfetParams::nmos_45nm();
        let no_body = p.evaluate_normalized(0.8, 0.8, 0.0).id;
        let with_body = p.evaluate_normalized(0.8, 0.8, -0.3).id;
        assert!(with_body < no_body);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let p = MosfetParams::nmos_45nm();
        let cases = [
            (0.9, 0.7, -0.1),
            (0.6, 0.2, 0.0),
            (0.4, 0.9, -0.2), // near/below threshold
            (1.1, 0.05, 0.0), // deep triode
        ];
        let h = 1e-7;
        for (vgs, vds, vbs) in cases {
            let op = p.evaluate_normalized(vgs, vds, vbs);
            let gm_fd = (p.evaluate_normalized(vgs + h, vds, vbs).id
                - p.evaluate_normalized(vgs - h, vds, vbs).id)
                / (2.0 * h);
            let gds_fd = (p.evaluate_normalized(vgs, vds + h, vbs).id
                - p.evaluate_normalized(vgs, vds - h, vbs).id)
                / (2.0 * h);
            let gmb_fd = (p.evaluate_normalized(vgs, vds, vbs + h).id
                - p.evaluate_normalized(vgs, vds, vbs - h).id)
                / (2.0 * h);
            let check = |analytic: f64, fd: f64, name: &str| {
                let scale = analytic.abs().max(fd.abs()).max(1e-12);
                assert!(
                    (analytic - fd).abs() / scale < 1e-3,
                    "{name} mismatch at ({vgs},{vds},{vbs}): {analytic} vs {fd}"
                );
            };
            check(op.gm, gm_fd, "gm");
            check(op.gds, gds_fd, "gds");
            check(op.gmb, gmb_fd, "gmb");
        }
    }

    #[test]
    fn polarity_sign() {
        assert_eq!(MosfetPolarity::Nmos.sign(), 1.0);
        assert_eq!(MosfetPolarity::Pmos.sign(), -1.0);
    }

    #[test]
    fn fast_exp_and_ln_track_libm_closely() {
        let mut x: f64 = -80.0;
        while x <= 80.0 {
            let exact = x.exp();
            let fast = fast_exp(x);
            let scale = exact.abs().max(1e-300);
            assert!(
                (fast - exact).abs() / scale < 1e-12,
                "fast_exp({x}) = {fast} vs {exact}"
            );
            x += 0.0173;
        }
        let mut y: f64 = 1e-12;
        while y < 1e6 {
            let exact = y.ln();
            let fast = fast_ln(y);
            assert!(
                (fast - exact).abs() <= exact.abs().max(1.0) * 1e-13,
                "fast_ln({y}) = {fast} vs {exact}"
            );
            y *= 1.37;
        }
        assert_eq!(fast_exp(-1000.0), 0.0);
        assert_eq!(fast_exp(1000.0), f64::INFINITY);
    }

    #[test]
    fn fast_evaluation_tracks_exact_model() {
        let devices = [MosfetParams::nmos_45nm(), MosfetParams::pmos_45nm()];
        for p in devices {
            let mut vgs = -0.2;
            while vgs <= 1.2 {
                let mut vds = 0.0;
                while vds <= 1.1 {
                    let exact = p.evaluate_normalized(vgs, vds, -0.1);
                    let fast = p.evaluate_normalized_fast(vgs, vds, -0.1);
                    let tol = |a: f64, b: f64| (a - b).abs() <= a.abs().max(1e-15) * 1e-9;
                    assert!(tol(exact.id, fast.id), "id: {} vs {}", exact.id, fast.id);
                    assert!(tol(exact.gm, fast.gm), "gm: {} vs {}", exact.gm, fast.gm);
                    assert!(tol(exact.gds, fast.gds));
                    assert!(tol(exact.gmb, fast.gmb));
                    vds += 0.11;
                }
                vgs += 0.07;
            }
        }
    }

    #[test]
    fn current_monotone_in_vgs() {
        let p = MosfetParams::nmos_45nm();
        let mut prev = 0.0;
        let mut vgs = 0.0;
        while vgs <= 1.2 {
            let id = p.evaluate_normalized(vgs, 0.6, 0.0).id;
            assert!(id >= prev, "current not monotone at vgs={vgs}");
            prev = id;
            vgs += 0.02;
        }
    }
}
