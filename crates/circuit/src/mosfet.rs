//! MOSFET compact model.
//!
//! The model is a smooth long-channel square-law/EKV hybrid:
//!
//! * the effective overdrive is a soft-plus interpolation
//!   `V_ov,eff = 2nφ_t · ln(1 + exp((V_GS − V_T)/(2nφ_t)))`, which gives the
//!   classic square law in strong inversion and an exponential subthreshold
//!   characteristic in weak inversion — both matter for high-sigma SRAM
//!   failures, where one transistor can easily be pushed 5σ into subthreshold;
//! * triode and saturation regions are joined continuously at `V_DS = V_ov,eff`
//!   with channel-length modulation `(1 + λ V_DS)`;
//! * a linearized body effect `V_T = V_T0 + γ_lin · V_SB` captures the
//!   source-degeneration of the SRAM pass gates.
//!
//! The model returns the drain current and its partial derivatives
//! (`g_m`, `g_ds`, `g_mb`) so that the Newton solver can stamp a consistent
//! linearization.

use serde::{Deserialize, Serialize};

/// Thermal voltage at room temperature, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.02585;

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosfetPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosfetPolarity {
    /// Sign convention multiplier: +1 for NMOS, −1 for PMOS.
    pub fn sign(self) -> f64 {
        match self {
            MosfetPolarity::Nmos => 1.0,
            MosfetPolarity::Pmos => -1.0,
        }
    }
}

/// Technology/model-card parameters of a MOSFET.
///
/// The defaults approximate a generic 45 nm low-power CMOS device and are the
/// basis of the SRAM cell used throughout the evaluation; per-instance
/// threshold-voltage shifts (process variation) are applied on top via
/// [`MosfetParams::with_vth_shift`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Channel polarity.
    pub polarity: MosfetPolarity,
    /// Zero-bias threshold voltage magnitude in volts (positive for both polarities).
    pub vth0: f64,
    /// Transconductance factor `k' · W/L` in A/V².
    pub k_prime: f64,
    /// Channel width in metres (used by the Pelgrom mismatch model).
    pub width: f64,
    /// Channel length in metres (used by the Pelgrom mismatch model).
    pub length: f64,
    /// Channel-length modulation coefficient λ in 1/V.
    pub lambda: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub subthreshold_slope: f64,
    /// Linearized body-effect coefficient γ_lin (dimensionless): `ΔV_T = γ_lin · V_SB`.
    pub body_effect: f64,
}

impl MosfetParams {
    /// Generic NMOS device for the 45 nm-class SRAM cell.
    pub fn nmos_45nm() -> Self {
        MosfetParams {
            polarity: MosfetPolarity::Nmos,
            vth0: 0.45,
            k_prime: 4.0e-4,
            width: 90e-9,
            length: 45e-9,
            lambda: 0.08,
            subthreshold_slope: 1.4,
            body_effect: 0.15,
        }
    }

    /// Generic PMOS device for the 45 nm-class SRAM cell (weaker than NMOS,
    /// reflecting the hole-mobility deficit).
    pub fn pmos_45nm() -> Self {
        MosfetParams {
            polarity: MosfetPolarity::Pmos,
            vth0: 0.45,
            k_prime: 2.0e-4,
            width: 90e-9,
            length: 45e-9,
            lambda: 0.10,
            subthreshold_slope: 1.4,
            body_effect: 0.15,
        }
    }

    /// Returns a copy with the channel width scaled by `factor` (the drive
    /// strength `k' W/L` scales along with it).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn with_width_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "width factor must be positive");
        self.width *= factor;
        self.k_prime *= factor;
        self
    }

    /// Returns a copy with the threshold voltage shifted by `delta_v` volts.
    ///
    /// This is the hook through which the process-variation layer perturbs each
    /// transistor of the SRAM cell.
    pub fn with_vth_shift(mut self, delta_v: f64) -> Self {
        self.vth0 += delta_v;
        self
    }

    /// Validates the parameter set, returning a human-readable reason when invalid.
    pub fn validate(&self) -> Result<(), String> {
        if !self.vth0.is_finite() {
            return Err(format!("vth0 must be finite, got {}", self.vth0));
        }
        if !(self.k_prime > 0.0) || !self.k_prime.is_finite() {
            return Err(format!("k_prime must be positive, got {}", self.k_prime));
        }
        if !(self.width > 0.0) || !(self.length > 0.0) {
            return Err("width and length must be positive".to_string());
        }
        if self.lambda < 0.0 || !self.lambda.is_finite() {
            return Err(format!("lambda must be non-negative, got {}", self.lambda));
        }
        if self.subthreshold_slope < 1.0 {
            return Err(format!(
                "subthreshold slope factor must be >= 1, got {}",
                self.subthreshold_slope
            ));
        }
        if self.body_effect < 0.0 {
            return Err(format!(
                "body effect coefficient must be non-negative, got {}",
                self.body_effect
            ));
        }
        Ok(())
    }
}

/// Operating-point evaluation of a MOSFET: drain current and small-signal
/// conductances, all in the *device's own* polarity convention (current flows
/// drain→source for positive overdrive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetOperatingPoint {
    /// Drain current in amperes (positive flowing into the drain terminal for
    /// NMOS in normal operation; sign handled by the caller for PMOS).
    pub id: f64,
    /// Transconductance ∂I_D/∂V_GS in siemens.
    pub gm: f64,
    /// Output conductance ∂I_D/∂V_DS in siemens.
    pub gds: f64,
    /// Body transconductance ∂I_D/∂V_BS in siemens.
    pub gmb: f64,
}

/// Numerically safe soft-plus `s·ln(1 + exp(x/s))` and its derivative (the
/// logistic function).
#[inline]
fn softplus(x: f64, s: f64) -> (f64, f64) {
    let t = x / s;
    if t > 40.0 {
        (x, 1.0)
    } else if t < -40.0 {
        (s * t.exp(), t.exp())
    } else {
        let e = t.exp();
        (s * (1.0 + e).ln(), e / (1.0 + e))
    }
}

impl MosfetParams {
    /// Evaluates the drain current and conductances for the *normalized* bias
    /// voltages of an N-type device: `vgs`, `vds ≥ 0`, `vbs ≤ 0` (for a PMOS
    /// the caller flips terminal voltages before calling and flips the current
    /// sign afterwards — see [`crate::mna`]).
    ///
    /// The returned current is guaranteed finite for finite inputs.
    #[inline]
    pub fn evaluate_normalized(&self, vgs: f64, vds: f64, vbs: f64) -> MosfetOperatingPoint {
        debug_assert!(vds >= 0.0, "evaluate_normalized requires vds >= 0");
        let n_phi_t = self.subthreshold_slope * THERMAL_VOLTAGE;
        // Linearized body effect: VT rises as the source rises above the body
        // (reverse body bias, vbs < 0) and drops symmetrically for forward bias.
        let vt = self.vth0 - self.body_effect * vbs;
        let dvt_dvbs = -self.body_effect;

        let vov = vgs - vt;
        let (vov_eff, dvov_eff_dvov) = softplus(vov, 2.0 * n_phi_t);
        // Guard against a zero effective overdrive deep in subthreshold.
        let vov_eff = vov_eff.max(1e-30);

        let clm = 1.0 + self.lambda * vds;
        let k = self.k_prime;

        let (id, did_dvoveff, did_dvds) = if vds < vov_eff {
            // Triode region.
            let core = vov_eff * vds - 0.5 * vds * vds;
            let id = k * core * clm;
            let did_dvoveff = k * vds * clm;
            let did_dvds = k * (vov_eff - vds) * clm + k * core * self.lambda;
            (id, did_dvoveff, did_dvds)
        } else {
            // Saturation region.
            let core = 0.5 * vov_eff * vov_eff;
            let id = k * core * clm;
            let did_dvoveff = k * vov_eff * clm;
            let did_dvds = k * core * self.lambda;
            (id, did_dvoveff, did_dvds)
        };

        let gm = did_dvoveff * dvov_eff_dvov;
        // VT depends on VBS; VOV = VGS − VT, so ∂I/∂VBS = −∂I/∂VOV · ∂VT/∂VBS.
        let gmb = -did_dvoveff * dvov_eff_dvov * dvt_dvbs;
        MosfetOperatingPoint {
            id: id.max(0.0),
            gm: gm.max(0.0),
            gds: did_dvds.max(0.0),
            gmb: gmb.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(MosfetParams::nmos_45nm().validate().is_ok());
        assert!(MosfetParams::pmos_45nm().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut p = MosfetParams::nmos_45nm();
        p.k_prime = -1.0;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.subthreshold_slope = 0.5;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.vth0 = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.width = 0.0;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.lambda = -0.1;
        assert!(p.validate().is_err());
        let mut p = MosfetParams::nmos_45nm();
        p.body_effect = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn vth_shift_and_width_factor() {
        let p = MosfetParams::nmos_45nm();
        let shifted = p.with_vth_shift(0.05);
        assert!((shifted.vth0 - (p.vth0 + 0.05)).abs() < 1e-15);
        let wide = p.with_width_factor(2.0);
        assert!((wide.k_prime - 2.0 * p.k_prime).abs() < 1e-15);
        assert!((wide.width - 2.0 * p.width).abs() < 1e-15);
    }

    #[test]
    fn strong_inversion_square_law() {
        let p = MosfetParams::nmos_45nm();
        // Deep saturation: vds large, vgs well above threshold.
        let op = p.evaluate_normalized(1.0, 1.0, 0.0);
        let vov = 1.0 - p.vth0;
        let expected = 0.5 * p.k_prime * vov * vov * (1.0 + p.lambda * 1.0);
        let rel = (op.id - expected).abs() / expected;
        assert!(rel < 0.02, "square law mismatch: {} vs {expected}", op.id);
        assert!(op.gm > 0.0 && op.gds > 0.0);
    }

    #[test]
    fn subthreshold_is_exponential() {
        let p = MosfetParams::nmos_45nm();
        // 200 mV below threshold vs 300 mV below threshold at fixed vds — deep
        // enough that the soft-plus interpolation has converged to its
        // exponential asymptote.
        let i1 = p.evaluate_normalized(p.vth0 - 0.2, 0.5, 0.0).id;
        let i2 = p.evaluate_normalized(p.vth0 - 0.3, 0.5, 0.0).id;
        assert!(i1 > i2);
        let decade_ratio = i1 / i2;
        // 100 mV / (n · φt · ln 10) ≈ 1.2 decades for n = 1.4.
        let expected = 10f64.powf(0.1 / (p.subthreshold_slope * THERMAL_VOLTAGE * 10f64.ln()));
        let rel = (decade_ratio - expected).abs() / expected;
        assert!(
            rel < 0.1,
            "subthreshold slope off: {decade_ratio} vs {expected}"
        );
    }

    #[test]
    fn cutoff_current_is_negligible() {
        let p = MosfetParams::nmos_45nm();
        let op = p.evaluate_normalized(0.0, 1.0, 0.0);
        assert!(op.id < 1e-9, "off current too large: {}", op.id);
        assert!(op.id > 0.0, "off current should be positive (leakage)");
    }

    #[test]
    fn triode_current_increases_with_vds_and_is_continuous_at_vdsat() {
        let p = MosfetParams::nmos_45nm();
        let vgs = 1.0;
        let vov = vgs - p.vth0;
        let below = p.evaluate_normalized(vgs, vov - 1e-6, 0.0).id;
        let above = p.evaluate_normalized(vgs, vov + 1e-6, 0.0).id;
        assert!(
            (below - above).abs() / above < 1e-3,
            "discontinuity at vdsat"
        );
        let low = p.evaluate_normalized(vgs, 0.05, 0.0).id;
        let high = p.evaluate_normalized(vgs, 0.3, 0.0).id;
        assert!(high > low);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let p = MosfetParams::nmos_45nm();
        let no_body = p.evaluate_normalized(0.8, 0.8, 0.0).id;
        let with_body = p.evaluate_normalized(0.8, 0.8, -0.3).id;
        assert!(with_body < no_body);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let p = MosfetParams::nmos_45nm();
        let cases = [
            (0.9, 0.7, -0.1),
            (0.6, 0.2, 0.0),
            (0.4, 0.9, -0.2), // near/below threshold
            (1.1, 0.05, 0.0), // deep triode
        ];
        let h = 1e-7;
        for (vgs, vds, vbs) in cases {
            let op = p.evaluate_normalized(vgs, vds, vbs);
            let gm_fd = (p.evaluate_normalized(vgs + h, vds, vbs).id
                - p.evaluate_normalized(vgs - h, vds, vbs).id)
                / (2.0 * h);
            let gds_fd = (p.evaluate_normalized(vgs, vds + h, vbs).id
                - p.evaluate_normalized(vgs, vds - h, vbs).id)
                / (2.0 * h);
            let gmb_fd = (p.evaluate_normalized(vgs, vds, vbs + h).id
                - p.evaluate_normalized(vgs, vds, vbs - h).id)
                / (2.0 * h);
            let check = |analytic: f64, fd: f64, name: &str| {
                let scale = analytic.abs().max(fd.abs()).max(1e-12);
                assert!(
                    (analytic - fd).abs() / scale < 1e-3,
                    "{name} mismatch at ({vgs},{vds},{vbs}): {analytic} vs {fd}"
                );
            };
            check(op.gm, gm_fd, "gm");
            check(op.gds, gds_fd, "gds");
            check(op.gmb, gmb_fd, "gmb");
        }
    }

    #[test]
    fn polarity_sign() {
        assert_eq!(MosfetPolarity::Nmos.sign(), 1.0);
        assert_eq!(MosfetPolarity::Pmos.sign(), -1.0);
    }

    #[test]
    fn current_monotone_in_vgs() {
        let p = MosfetParams::nmos_45nm();
        let mut prev = 0.0;
        let mut vgs = 0.0;
        while vgs <= 1.2 {
            let id = p.evaluate_normalized(vgs, 0.6, 0.0).id;
            assert!(id >= prev, "current not monotone at vgs={vgs}");
            prev = id;
            vgs += 0.02;
        }
    }
}
