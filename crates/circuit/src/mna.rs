//! Modified nodal analysis (MNA): system assembly and Newton–Raphson solution.
//!
//! Unknown ordering: the voltages of all non-ground nodes come first
//! (node `k` maps to index `k − 1`), followed by one branch current per
//! independent voltage source. Nonlinear devices (MOSFETs) are stamped as their
//! Norton linearization around the current iterate; capacitors are stamped as
//! backward-Euler companion models during transient analysis and are open
//! circuits during DC analysis.

use crate::error::CircuitError;
use crate::netlist::{Circuit, Device, NodeId, GROUND};
use gis_linalg::{LuDecomposition, Matrix, Vector};

/// Minimum conductance tied from every non-ground node to ground. Prevents
/// singular systems from floating nodes (e.g. the internal node of a stack of
/// off transistors) at the cost of a negligible leakage path.
pub const GMIN: f64 = 1e-12;

/// Absolute voltage convergence tolerance for Newton iterations, in volts.
pub const VOLTAGE_TOLERANCE: f64 = 1e-6;

/// Relative convergence tolerance for Newton iterations.
pub const RELATIVE_TOLERANCE: f64 = 1e-4;

/// Maximum voltage change applied per Newton iteration, in volts (damping).
pub const MAX_VOLTAGE_STEP: f64 = 0.3;

/// Default Newton iteration limit.
pub const MAX_NEWTON_ITERATIONS: usize = 200;

/// State carried between transient time points, enabling the capacitor
/// companion models.
#[derive(Debug, Clone)]
pub struct DynamicState {
    /// Node voltages (full, including ground at index 0) at the previous accepted time point.
    pub previous_node_voltages: Vec<f64>,
    /// Time step in seconds.
    pub dt: f64,
}

/// An assembled view of a circuit ready for MNA analysis.
#[derive(Debug, Clone)]
pub struct MnaSystem<'a> {
    circuit: &'a Circuit,
    num_nodes: usize,
    vsrc_branch: Vec<Option<usize>>,
    dim: usize,
}

impl<'a> MnaSystem<'a> {
    /// Builds the unknown mapping for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if any device references a node
    /// that does not exist, or [`CircuitError::InvalidAnalysis`] if the circuit
    /// has no devices.
    pub fn new(circuit: &'a Circuit) -> Result<Self, CircuitError> {
        circuit.validate()?;
        if circuit.num_devices() == 0 {
            return Err(CircuitError::InvalidAnalysis(
                "circuit has no devices".to_string(),
            ));
        }
        let num_nodes = circuit.num_nodes();
        let mut vsrc_branch = vec![None; circuit.num_devices()];
        let mut next_branch = 0usize;
        for (i, d) in circuit.devices().iter().enumerate() {
            if matches!(d, Device::VoltageSource { .. }) {
                vsrc_branch[i] = Some(next_branch);
                next_branch += 1;
            }
        }
        let dim = (num_nodes - 1) + next_branch;
        Ok(MnaSystem {
            circuit,
            num_nodes,
            vsrc_branch,
            dim,
        })
    }

    /// Number of unknowns (non-ground node voltages plus voltage-source branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The circuit this system was built from.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Index of node `node` in the unknown vector, or `None` for ground.
    fn node_index(&self, node: NodeId) -> Option<usize> {
        if node == GROUND {
            None
        } else {
            Some(node - 1)
        }
    }

    /// Voltage of `node` in the solution vector `x` (0 for ground).
    pub fn node_voltage(&self, x: &Vector, node: NodeId) -> f64 {
        match self.node_index(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    }

    /// Expands a solution vector into per-node voltages (index = node id,
    /// ground included as 0.0).
    pub fn node_voltages(&self, x: &Vector) -> Vec<f64> {
        (0..self.num_nodes)
            .map(|n| self.node_voltage(x, n))
            .collect()
    }

    /// Branch current through the `k`-th voltage source in the solution `x`.
    ///
    /// Returns `None` if the device at `device_index` is not a voltage source.
    pub fn voltage_source_current(&self, x: &Vector, device_index: usize) -> Option<f64> {
        let branch = self.vsrc_branch.get(device_index).copied().flatten()?;
        Some(x[(self.num_nodes - 1) + branch])
    }

    fn stamp_conductance(&self, a: NodeId, b: NodeId, g: f64, matrix: &mut Matrix) {
        let ia = self.node_index(a);
        let ib = self.node_index(b);
        if let Some(i) = ia {
            matrix.add_at(i, i, g);
        }
        if let Some(j) = ib {
            matrix.add_at(j, j, g);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            matrix.add_at(i, j, -g);
            matrix.add_at(j, i, -g);
        }
    }

    fn stamp_current(&self, from: NodeId, into: NodeId, current: f64, rhs: &mut Vector) {
        if let Some(i) = self.node_index(into) {
            rhs[i] += current;
        }
        if let Some(i) = self.node_index(from) {
            rhs[i] -= current;
        }
    }

    /// Assembles the linearized MNA system `A · x_new = z` around the iterate `x`.
    pub fn assemble(
        &self,
        x: &Vector,
        time: f64,
        dynamic: Option<&DynamicState>,
    ) -> (Matrix, Vector) {
        let mut a = Matrix::zeros(self.dim, self.dim);
        let mut z = Vector::zeros(self.dim);

        // GMIN from every non-ground node to ground.
        for n in 1..self.num_nodes {
            let i = n - 1;
            a.add_at(i, i, GMIN);
        }

        for (dev_index, device) in self.circuit.devices().iter().enumerate() {
            match device {
                Device::Resistor {
                    a: na,
                    b: nb,
                    resistance,
                    ..
                } => {
                    self.stamp_conductance(*na, *nb, 1.0 / resistance, &mut a);
                }
                Device::Capacitor {
                    a: na,
                    b: nb,
                    capacitance,
                    ..
                } => {
                    if let Some(state) = dynamic {
                        // Backward-Euler companion model.
                        let geq = capacitance / state.dt;
                        let v_prev =
                            state.previous_node_voltages[*na] - state.previous_node_voltages[*nb];
                        self.stamp_conductance(*na, *nb, geq, &mut a);
                        // The history term acts as a current source from b into a.
                        self.stamp_current(*nb, *na, geq * v_prev, &mut z);
                    }
                    // DC: capacitor is an open circuit — nothing to stamp.
                }
                Device::VoltageSource {
                    positive,
                    negative,
                    waveform,
                    ..
                } => {
                    let branch = self.vsrc_branch[dev_index]
                        .expect("voltage source has a branch index by construction");
                    let row = (self.num_nodes - 1) + branch;
                    if let Some(i) = self.node_index(*positive) {
                        a.add_at(i, row, 1.0);
                        a.add_at(row, i, 1.0);
                    }
                    if let Some(i) = self.node_index(*negative) {
                        a.add_at(i, row, -1.0);
                        a.add_at(row, i, -1.0);
                    }
                    z[row] = waveform.value_at(time);
                }
                Device::CurrentSource {
                    from,
                    into,
                    waveform,
                    ..
                } => {
                    self.stamp_current(*from, *into, waveform.value_at(time), &mut z);
                }
                Device::Mosfet {
                    drain,
                    gate,
                    source,
                    body,
                    params,
                    ..
                } => {
                    self.stamp_mosfet(*drain, *gate, *source, *body, params, x, &mut a, &mut z);
                }
            }
        }
        (a, z)
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_mosfet(
        &self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        body: NodeId,
        params: &crate::mosfet::MosfetParams,
        x: &Vector,
        a: &mut Matrix,
        z: &mut Vector,
    ) {
        let sign = params.polarity.sign();
        let vd = self.node_voltage(x, drain);
        let vg = self.node_voltage(x, gate);
        let vs = self.node_voltage(x, source);
        let vb = self.node_voltage(x, body);

        // Normalize to an N-type device: for PMOS flip all voltages.
        let (nvd, nvg, nvs, nvb) = (sign * vd, sign * vg, sign * vs, sign * vb);
        // Symmetric conduction: pick the higher of the two channel terminals as
        // the effective drain.
        let swapped = nvd < nvs;
        let (evd, evs) = if swapped { (nvs, nvd) } else { (nvd, nvs) };
        let vgs = nvg - evs;
        let vds = evd - evs;
        let vbs = nvb - evs;

        let op = params.evaluate_normalized(vgs, vds, vbs);

        // Norton linearization around the iterate:
        // i_d ≈ id0 + gm·Δvgs + gds·Δvds + gmb·Δvbs
        // Equivalent current source: ieq = ±(id0 − gm·vgs − gds·vds − gmb·vbs).
        // The polarity sign appears only here: expressed in terms of *real*
        // node-voltage differences the conductance stamps of NMOS and PMOS are
        // identical, while the current injected at the effective drain flips.
        let ieq = sign * (op.id - op.gm * vgs - op.gds * vds - op.gmb * vbs);

        // Terminals in the normalized (possibly swapped) frame.
        let (eff_drain, eff_source) = if swapped {
            (source, drain)
        } else {
            (drain, source)
        };

        // In the normalized frame current `id` flows from eff_drain to eff_source
        // inside the device. For PMOS (sign = −1) the real current direction is
        // reversed, which is equivalent to stamping in the flipped frame with
        // flipped voltage differences — handled by multiplying the stamped
        // current by `sign` while conductances stay positive.
        let stamp_row = |node: NodeId| self.node_index(node);

        let gd = stamp_row(eff_drain);
        let gs_idx = stamp_row(eff_source);
        let gg = stamp_row(gate);
        let gb = stamp_row(body);

        // Conductance stamps (Jacobian contributions). Row for eff_drain gets
        // +∂i/∂v_terminal, row for eff_source gets the negative.
        // i depends on vgs = vg − vs, vds = vd − vs, vbs = vb − vs
        // (all in the normalized frame; the sign flip for PMOS cancels because
        // both the current and the voltages flip).
        let add = |m: &mut Matrix, row: Option<usize>, col: Option<usize>, val: f64| {
            if let (Some(r), Some(c)) = (row, col) {
                m.add_at(r, c, val);
            }
        };

        // Row eff_drain.
        add(a, gd, gg, op.gm);
        add(a, gd, gd, op.gds);
        add(a, gd, gb, op.gmb);
        add(a, gd, gs_idx, -(op.gm + op.gds + op.gmb));
        // Row eff_source (current leaves the source terminal).
        add(a, gs_idx, gg, -op.gm);
        add(a, gs_idx, gd, -op.gds);
        add(a, gs_idx, gb, -op.gmb);
        add(a, gs_idx, gs_idx, op.gm + op.gds + op.gmb);

        // Equivalent current source: flows out of eff_drain, into eff_source.
        if let Some(r) = gd {
            z[r] -= ieq;
        }
        if let Some(r) = gs_idx {
            z[r] += ieq;
        }
    }

    /// Runs damped Newton–Raphson from the initial guess `x0`.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::SingularSystem`] if a linearized system cannot be solved.
    /// * [`CircuitError::NewtonDidNotConverge`] if the iteration limit is reached.
    pub fn solve_newton(
        &self,
        x0: Vector,
        time: f64,
        dynamic: Option<&DynamicState>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<Vector, CircuitError> {
        let mut x = if x0.len() == self.dim {
            x0
        } else {
            Vector::zeros(self.dim)
        };
        let mut last_delta = f64::INFINITY;
        for iteration in 0..max_iterations {
            let (a, z) = self.assemble(&x, time, dynamic);
            let lu = LuDecomposition::new(&a)
                .map_err(|source| CircuitError::SingularSystem { time, source })?;
            let x_new = lu
                .solve(&z)
                .map_err(|source| CircuitError::SingularSystem { time, source })?;

            // Damped update: limit per-iteration voltage change. If the
            // iteration has not settled after half the budget (typically a
            // limit cycle between two near-solutions in weak inversion), shrink
            // the step progressively to force convergence.
            let relaxation = if iteration * 2 > max_iterations {
                0.25
            } else {
                1.0
            };
            let mut max_delta: f64 = 0.0;
            let mut x_next = x.clone();
            let node_unknowns = self.num_nodes - 1;
            for i in 0..self.dim {
                let mut delta = x_new[i] - x[i];
                if i < node_unknowns {
                    delta = relaxation * delta.clamp(-MAX_VOLTAGE_STEP, MAX_VOLTAGE_STEP);
                    max_delta = max_delta.max(delta.abs());
                }
                x_next[i] = x[i] + delta;
            }
            x = x_next;
            last_delta = max_delta;
            if max_delta < VOLTAGE_TOLERANCE + RELATIVE_TOLERANCE * x.norm_inf().min(1.0) {
                return Ok(x);
            }
        }
        Err(CircuitError::NewtonDidNotConverge {
            analysis,
            time,
            iterations: max_iterations,
            residual: last_delta,
        })
    }

    /// Computes the DC operating point, optionally warm-started from
    /// `initial_node_voltages` (index = node id; ground entry ignored).
    ///
    /// # Errors
    ///
    /// See [`MnaSystem::solve_newton`].
    pub fn dc_operating_point(
        &self,
        initial_node_voltages: Option<&[f64]>,
    ) -> Result<Vector, CircuitError> {
        let mut x0 = Vector::zeros(self.dim);
        if let Some(init) = initial_node_voltages {
            for node in 1..self.num_nodes.min(init.len()) {
                x0[node - 1] = init[node];
            }
        }
        self.solve_newton(x0, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::netlist::SourceWaveform;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor("R1", vin, mid, 1e3).unwrap();
        ckt.add_resistor("R2", mid, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        assert_eq!(sys.dim(), 3);
        let x = sys.dc_operating_point(None).unwrap();
        assert!((sys.node_voltage(&x, mid) - 1.0).abs() < 1e-6);
        assert!((sys.node_voltage(&x, vin) - 2.0).abs() < 1e-9);
        // Current through the source: 2 V across 2 kΩ = 1 mA, flowing out of the
        // positive terminal, so the MNA branch current is −1 mA.
        let i = sys.voltage_source_current(&x, 0).unwrap();
        assert!((i + 1e-3).abs() < 1e-6, "source current {i}");
        assert!(sys.voltage_source_current(&x, 1).is_none());
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_current_source("I1", GROUND, out, SourceWaveform::dc(1e-3));
        ckt.add_resistor("R1", out, GROUND, 2e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        assert!((sys.node_voltage(&x, out) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        // NMOS with gate at 1.0 V, drain pulled to 1.0 V through 10 kΩ.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source("VG", gate, GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("RD", vdd, drain, 10e3).unwrap();
        ckt.add_mosfet("M1", drain, gate, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let vd = sys.node_voltage(&x, drain);
        // The transistor is on, so the drain must be pulled well below VDD but
        // stay above ground.
        assert!(vd > 0.0 && vd < 0.9, "drain voltage {vd}");
        // KCL check: resistor current equals transistor current.
        let i_r = (1.0 - vd) / 10e3;
        let op = MosfetParams::nmos_45nm().evaluate_normalized(1.0, vd, 0.0);
        assert!(
            (i_r - op.id).abs() / i_r < 0.02,
            "KCL violated: {i_r} vs {}",
            op.id
        );
    }

    #[test]
    fn pmos_pull_up() {
        // PMOS source at VDD, gate at 0: device on, pulls output high through itself
        // against a resistor to ground.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_mosfet("MP", out, GROUND, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_resistor("RL", out, GROUND, 100e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let vout = sys.node_voltage(&x, out);
        assert!(vout > 0.8, "PMOS failed to pull up: {vout}");
    }

    #[test]
    fn cmos_inverter_transfer() {
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let input = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
            ckt.add_voltage_source("VIN", input, GROUND, SourceWaveform::dc(vin));
            ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
                .unwrap();
            ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
                .unwrap();
            ckt
        };
        let solve = |vin: f64, guess: f64| {
            let ckt = build(vin);
            let sys = MnaSystem::new(&ckt).unwrap();
            let init = vec![0.0, 1.0, vin, guess];
            let x = sys.dc_operating_point(Some(&init)).unwrap();
            sys.node_voltage(&x, 3)
        };
        let high = solve(0.0, 1.0);
        let low = solve(1.0, 0.0);
        assert!(high > 0.95, "inverter output should be high, got {high}");
        assert!(low < 0.05, "inverter output should be low, got {low}");
    }

    #[test]
    fn empty_circuit_rejected() {
        let ckt = Circuit::new();
        assert!(MnaSystem::new(&ckt).is_err());
    }

    #[test]
    fn dangling_node_rejected() {
        let mut ckt = Circuit::new();
        ckt.add_voltage_source("V", 3, GROUND, SourceWaveform::dc(1.0));
        assert!(MnaSystem::new(&ckt).is_err());
    }

    #[test]
    fn node_voltages_expansion() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V", a, GROUND, SourceWaveform::dc(0.7));
        ckt.add_resistor("R", a, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let v = sys.node_voltages(&x);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.7).abs() < 1e-9);
    }
}
