//! Modified nodal analysis (MNA): system assembly and Newton–Raphson solution.
//!
//! Unknown ordering: the voltages of all non-ground nodes come first
//! (node `k` maps to index `k − 1`), followed by one branch current per
//! independent voltage source. Nonlinear devices (MOSFETs) are stamped as their
//! Norton linearization around the current iterate; capacitors are stamped as
//! backward-Euler companion models during transient analysis and are open
//! circuits during DC analysis.
//!
//! # Two kernels, one arithmetic
//!
//! The solver exists in two bit-identical flavours:
//!
//! * the **dense reference kernel** ([`MnaSystem::solve_newton`]) allocates a
//!   fresh [`Matrix`]/[`Vector`]/[`LuDecomposition`] per Newton iteration —
//!   simple, kept as the golden reference;
//! * the **sparse production kernel** ([`MnaSystem::solve_newton_in`])
//!   assembles into a reusable [`SimulationWorkspace`] whose symbolic LU plan
//!   is computed once per netlist topology; the steady-state Newton loop
//!   performs zero heap allocations and skips all structurally-zero
//!   arithmetic, which is floating-point exact (see [`gis_linalg::sparse`]).
//!
//! Both kernels stamp through the same generic assembly walk, so every sum is
//! accumulated in the same order and fixed-seed results are bit-identical
//! regardless of the kernel.

use crate::error::CircuitError;
use crate::mosfet::{evaluate_normalized_fast_lanes, MosfetParams, THERMAL_VOLTAGE};
use crate::netlist::{Circuit, Device, NodeId, GROUND};
use gis_linalg::sparse::{LockstepLu, PatternBuilder, SparseLu, SymbolicLu};
use gis_linalg::{LuDecomposition, Matrix, Vector};

pub use gis_linalg::sparse::MAX_LANES;

/// Loads the `L` lane values starting at `base` into an array (lane-group
/// load; the mirror of the helper in [`gis_linalg::sparse`]).
#[inline]
fn lane_group<const L: usize>(values: &[f64], base: usize) -> [f64; L] {
    let mut out = [0.0; L];
    out.copy_from_slice(&values[base..base + L]);
    out
}

/// Dispatches a lane-generic free function to its const-lane-count
/// monomorphization. The inner lane loops only unroll and vectorize when the
/// trip count is a compile-time constant, so every hot lockstep path funnels
/// through this match.
macro_rules! lanes_dispatch {
    ($lanes:expr, $func:ident ( $($arg:expr),* $(,)? )) => {
        match $lanes {
            1 => $func::<1>($($arg),*),
            2 => $func::<2>($($arg),*),
            3 => $func::<3>($($arg),*),
            4 => $func::<4>($($arg),*),
            5 => $func::<5>($($arg),*),
            6 => $func::<6>($($arg),*),
            7 => $func::<7>($($arg),*),
            8 => $func::<8>($($arg),*),
            // Unreachable: lane count is bounded by MAX_LANES at bind.
            _ => unreachable!("lane count bounded by MAX_LANES"),
        }
    };
}

/// Minimum conductance tied from every non-ground node to ground. Prevents
/// singular systems from floating nodes (e.g. the internal node of a stack of
/// off transistors) at the cost of a negligible leakage path.
pub const GMIN: f64 = 1e-12;

/// Absolute voltage convergence tolerance for Newton iterations, in volts.
pub const VOLTAGE_TOLERANCE: f64 = 1e-6;

/// Relative convergence tolerance for Newton iterations.
pub const RELATIVE_TOLERANCE: f64 = 1e-4;

/// Maximum voltage change applied per Newton iteration, in volts (damping).
pub const MAX_VOLTAGE_STEP: f64 = 0.3;

/// Default Newton iteration limit.
pub const MAX_NEWTON_ITERATIONS: usize = 200;

/// State carried between transient time points, enabling the capacitor
/// companion models. Borrows the previous time point's node voltages so the
/// per-step clone of the dense-era implementation is gone.
#[derive(Debug, Clone, Copy)]
pub struct DynamicState<'a> {
    /// Node voltages (full, including ground at index 0) at the previous accepted time point.
    pub previous_node_voltages: &'a [f64],
    /// Time step in seconds.
    pub dt: f64,
}

/// Destination of an assembly walk: the dense matrix, the sparse workspace,
/// and the pattern extractor all receive the identical stamp sequence.
trait Stamper {
    fn mat_add(&mut self, i: usize, j: usize, v: f64);
    fn rhs_add(&mut self, i: usize, v: f64);
    fn rhs_set(&mut self, i: usize, v: f64);
}

/// Stamps into a dense [`Matrix`]/[`Vector`] pair (reference kernel).
struct DenseStamper<'a> {
    a: &'a mut Matrix,
    z: &'a mut Vector,
}

impl Stamper for DenseStamper<'_> {
    #[inline]
    fn mat_add(&mut self, i: usize, j: usize, v: f64) {
        self.a.add_at(i, j, v);
    }
    #[inline]
    fn rhs_add(&mut self, i: usize, v: f64) {
        self.z[i] += v;
    }
    #[inline]
    fn rhs_set(&mut self, i: usize, v: f64) {
        self.z[i] = v;
    }
}

/// Records the set of touched matrix slots (symbolic pre-pass).
struct PatternStamper<'a> {
    pattern: &'a mut PatternBuilder,
}

impl Stamper for PatternStamper<'_> {
    #[inline]
    fn mat_add(&mut self, i: usize, j: usize, _v: f64) {
        self.pattern.insert(i, j);
    }
    #[inline]
    fn rhs_add(&mut self, _i: usize, _v: f64) {}
    #[inline]
    fn rhs_set(&mut self, _i: usize, _v: f64) {}
}

/// Sentinel slot/index for "terminal is ground / stamp absent".
const NONE_SLOT: u32 = u32::MAX;

/// One precompiled assembly action of a [`SimulationWorkspace`].
///
/// The sparse hot loop re-assembles the MNA system hundreds of times per
/// sample with the *same* topology; the workspace therefore compiles the
/// netlist walk once into a flat program with every matrix slot and unknown
/// index precomputed, leaving only the value arithmetic for the per-iteration
/// replay. The replay performs the identical floating-point operations in the
/// identical order as [`MnaSystem::assemble`]'s generic walk (asserted by the
/// kernel-equivalence golden tests).
#[derive(Debug, Clone)]
enum StampOp {
    /// Conductance `g = 1/R` from device `dev`: `+g` on the diagonal slots,
    /// `-g` on the cross slots ([`NONE_SLOT`] entries are skipped).
    Resistor {
        dev: u32,
        diag: [u32; 2],
        cross: [u32; 2],
    },
    /// Backward-Euler companion stamp (transient only): conductance
    /// `geq = C/dt` plus the history current `geq · v_prev` into the RHS.
    /// `node_a`/`node_b` index the previous-step node-voltage array;
    /// `rhs_into`/`rhs_from` are unknown rows.
    Capacitor {
        dev: u32,
        node_a: u32,
        node_b: u32,
        diag: [u32; 2],
        cross: [u32; 2],
        rhs_into: u32,
        rhs_from: u32,
    },
    /// Voltage-source branch stamps (`±1` incidence) and the RHS drive.
    VoltageSource {
        dev: u32,
        row: u32,
        plus: [u32; 2],
        minus: [u32; 2],
    },
    /// Current-source RHS stamps.
    CurrentSource {
        dev: u32,
        rhs_into: u32,
        rhs_from: u32,
    },
    /// MOSFET Norton linearization stamps. `eval` indexes the per-iteration
    /// scratch filled by the batched evaluation pass; the slot arrays hold
    /// the 8 Jacobian stamp destinations for the normal and the
    /// drain/source-swapped orientation, and `rhs_*` the equivalent-current
    /// rows (eff-drain, eff-source).
    Mosfet {
        eval: u32,
        slots_normal: [u32; 8],
        slots_swapped: [u32; 8],
        rhs_normal: [u32; 2],
        rhs_swapped: [u32; 2],
    },
}

/// One MOSFET's evaluation inputs for the batched model pass: device index
/// plus the four terminal unknown indices ([`NONE_SLOT`] = ground).
#[derive(Debug, Clone, Copy)]
struct MosfetEvalSpec {
    dev: u32,
    d: u32,
    g: u32,
    s: u32,
    b: u32,
}

/// Output of one MOSFET evaluation, consumed by the stamp replay.
///
/// Evaluating all transistors *before* stamping lets their independent
/// floating-point dependency chains overlap in the out-of-order window; the
/// stamp replay then applies the results in exact netlist order, so the
/// assembled system is bit-identical to the interleaved walk.
#[derive(Debug, Clone, Copy, Default)]
struct MosfetScratch {
    /// The 8 Jacobian stamp values in `stamp_mosfet`'s order.
    values: [f64; 8],
    /// Norton equivalent current.
    ieq: f64,
    /// Whether the symmetric-conduction swap is active this iterate.
    swapped: bool,
}

/// Compact per-device topology signature used to detect whether a workspace's
/// symbolic plan is still valid for a circuit. Values (resistances, model
/// cards, waveforms) are deliberately excluded: only connectivity determines
/// the stamp pattern.
type DeviceSignature = (u8, NodeId, NodeId, NodeId, NodeId);

fn device_signature(device: &Device) -> DeviceSignature {
    match device {
        Device::Resistor { a, b, .. } => (0, *a, *b, 0, 0),
        Device::Capacitor { a, b, .. } => (1, *a, *b, 0, 0),
        Device::VoltageSource {
            positive, negative, ..
        } => (2, *positive, *negative, 0, 0),
        Device::CurrentSource { from, into, .. } => (3, *from, *into, 0, 0),
        Device::Mosfet {
            drain,
            gate,
            source,
            body,
            ..
        } => (4, *drain, *gate, *source, *body),
    }
}

/// Reusable, allocation-free state for the sparse transient kernel.
///
/// A workspace binds lazily to a netlist *topology*: the first
/// [`MnaSystem::solve_newton_in`] (or [`SimulationWorkspace::bind`]) call
/// builds the stamp pattern and the symbolic LU plan; every further solve with
/// the same connectivity — Newton iterations, time steps, and Monte-Carlo
/// samples that only change device *values* — reuses the plan and the numeric
/// buffers without touching the heap.
///
/// The SRAM sessions hold one workspace each, so an executor work chunk
/// carries exactly one plan for its whole batch.
#[derive(Debug, Clone, Default)]
pub struct SimulationWorkspace {
    core: Option<WorkspaceCore>,
}

#[derive(Debug, Clone)]
struct WorkspaceCore {
    num_nodes: usize,
    dim: usize,
    signature: Vec<DeviceSignature>,
    /// The compiled assembly program (netlist walk with precomputed slots).
    program: Vec<StampOp>,
    /// Evaluation inputs of every MOSFET, in netlist order.
    mosfet_evals: Vec<MosfetEvalSpec>,
    /// Per-iteration outputs of the batched MOSFET evaluation pass.
    mosfet_scratch: Vec<MosfetScratch>,
    lu: SparseLu,
    /// Right-hand side of the linearized system.
    z: Vec<f64>,
    /// Newton iterate (the solution after a successful solve).
    x: Vec<f64>,
    /// Raw solution of one linearized system before damping.
    x_new: Vec<f64>,
}

impl SimulationWorkspace {
    /// Creates an empty workspace; it binds to a topology on first use.
    pub fn new() -> Self {
        SimulationWorkspace::default()
    }

    /// Returns `true` if the workspace's symbolic plan matches `system`'s
    /// topology (same dimension, node count, and device connectivity).
    fn matches(&self, system: &MnaSystem) -> bool {
        let Some(core) = &self.core else {
            return false;
        };
        core.dim == system.dim
            && core.num_nodes == system.num_nodes
            && core.signature.len() == system.circuit.num_devices()
            && core
                .signature
                .iter()
                .zip(system.circuit.devices())
                .all(|(sig, dev)| *sig == device_signature(dev))
    }

    /// Binds the workspace to `system`, rebuilding the symbolic plan only if
    /// the topology changed. Value-only changes (the Monte-Carlo hot path)
    /// are free.
    pub fn bind(&mut self, system: &MnaSystem) {
        if self.matches(system) {
            return;
        }
        let dim = system.dim;
        let mut builder = PatternBuilder::new(dim);
        // Symbolic pre-pass over the same assembly walk as the numeric
        // kernels. Capacitor companion stamps are included (dummy dynamic
        // state) so one plan covers both DC and transient solves; the extra
        // slots hold exact zeros during DC, which is arithmetic-exact.
        let zeros_x = vec![0.0; dim];
        let zeros_nodes = vec![0.0; system.num_nodes];
        let dynamic = DynamicState {
            previous_node_voltages: &zeros_nodes,
            dt: 1.0,
        };
        system.assemble_with(
            &zeros_x,
            0.0,
            Some(&dynamic),
            &mut PatternStamper {
                pattern: &mut builder,
            },
        );
        let symbolic = SymbolicLu::analyze(&builder.build());
        let (program, mosfet_evals) = compile_program(system);
        let mosfet_scratch = vec![MosfetScratch::default(); mosfet_evals.len()];
        self.core = Some(WorkspaceCore {
            num_nodes: system.num_nodes,
            dim,
            signature: system
                .circuit
                .devices()
                .iter()
                .map(device_signature)
                .collect(),
            program,
            mosfet_evals,
            mosfet_scratch,
            lu: SparseLu::new(symbolic),
            z: vec![0.0; dim],
            x: vec![0.0; dim],
            x_new: vec![0.0; dim],
        });
    }

    /// The current solution/iterate vector (length = system dimension).
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been bound.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn state(&self) -> &[f64] {
        &self.core.as_ref().expect("workspace is bound").x
    }

    /// Seeds the Newton iterate. Entries beyond `x0.len()` are zeroed, which
    /// mirrors the dense kernel's zero-padding of short initial guesses.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been bound.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn set_state(&mut self, x0: &[f64]) {
        let core = self.core.as_mut().expect("workspace is bound");
        let n = core.x.len().min(x0.len());
        core.x[..n].copy_from_slice(&x0[..n]);
        for v in &mut core.x[n..] {
            *v = 0.0;
        }
    }

    /// The symbolic plan, if the workspace is bound (for diagnostics/tests).
    pub fn symbolic(&self) -> Option<&SymbolicLu> {
        self.core.as_ref().map(|c| c.lu.symbolic())
    }
}

/// Lane-major dynamic state of the lockstep kernel. Node `n` of lane `l`
/// lives at `previous_node_voltages[n * lanes + l]`; the time step is shared
/// because every lane advances through the identical discretization.
#[derive(Debug, Clone, Copy)]
pub struct LockstepDynamicState<'a> {
    /// Node voltages (full, including ground rows) at the previous accepted
    /// time point, lane-major.
    pub previous_node_voltages: &'a [f64],
    /// Time step in seconds.
    pub dt: f64,
}

/// Reusable, allocation-free state for the multi-sample lockstep kernel: the
/// lane-batched counterpart of [`SimulationWorkspace`].
///
/// One workspace advances up to [`MAX_LANES`] independent Monte-Carlo samples
/// — same netlist topology, different device values — through **one** compiled
/// stamp program and **one** [`LockstepLu`] factorization plan. All numeric
/// buffers are lane-strided (unknown `i` of lane `l` at `i * lanes + l`), so
/// the per-lane arithmetic is the scalar kernel's arithmetic in the scalar
/// kernel's order and every lane's trajectory is bit-identical to a scalar
/// [`SimulationWorkspace`] run of the same circuit.
#[derive(Debug, Clone, Default)]
pub struct LockstepWorkspace {
    core: Option<LockstepCore>,
}

/// Per-solve staged device values of the lockstep kernel (lane-major per
/// program op of each kind): every value the stamp replay needs that does not
/// depend on the Newton iterate, extracted once per solve by
/// [`stage_lockstep_values`] so the per-iteration replay walks flat `f64`
/// arrays instead of matching per-lane `Device` enums. All buffers are sized
/// at bind time; staging only overwrites them.
#[derive(Debug, Clone, Default)]
struct LockstepStage {
    /// Resistor conductances `g = 1/R` (program-resistor-major × lanes).
    res_g: Vec<f64>,
    /// Capacitor companion conductances `geq = C/dt`; untouched (and unread)
    /// during DC solves, where capacitors are open circuits.
    cap_geq: Vec<f64>,
    /// Voltage-source drives `value_at(time)`.
    vsrc_v: Vec<f64>,
    /// Current-source drives `value_at(time)`.
    isrc_i: Vec<f64>,
    /// MOSFET model cards (eval-major × lanes), for the exact model path.
    params: Vec<MosfetParams>,
    /// Fast-lane structure-of-arrays model cards (eval-major × lanes), only
    /// filled when the solve runs the fast model.
    vth0: Vec<f64>,
    /// Transconductance factors `k' · W/L`.
    k_prime: Vec<f64>,
    /// Channel-length modulation coefficients.
    lambda: Vec<f64>,
    /// Soft-plus scales `2 n φ_t`.
    two_n_phi_t: Vec<f64>,
    /// Linearized body-effect coefficients.
    body_effect: Vec<f64>,
    /// Per-eval polarity signs (polarity is part of the shared topology, so
    /// one sign covers all lanes — asserted during staging).
    sign: Vec<f64>,
}

#[derive(Debug, Clone)]
struct LockstepCore {
    num_nodes: usize,
    dim: usize,
    lanes: usize,
    signature: Vec<DeviceSignature>,
    program: Vec<StampOp>,
    mosfet_evals: Vec<MosfetEvalSpec>,
    /// Lane-major per-iteration MOSFET outputs: `scratch[eval * lanes + lane]`.
    mosfet_scratch: Vec<MosfetScratch>,
    /// Per-solve staged device values (see [`LockstepStage`]).
    staged: LockstepStage,
    lu: LockstepLu,
    /// Lane-major right-hand side (`dim × lanes`).
    z: Vec<f64>,
    /// Lane-major Newton iterates.
    x: Vec<f64>,
    x_new: Vec<f64>,
    /// Per-lane "still iterating" mask of the current Newton solve.
    running: [bool; MAX_LANES],
}

impl LockstepWorkspace {
    /// Creates an empty workspace; it binds to a topology on first use.
    pub fn new() -> Self {
        LockstepWorkspace::default()
    }

    /// Returns `true` if the workspace's plan matches `system`'s topology at
    /// the given lane count.
    fn matches(&self, system: &MnaSystem, lanes: usize) -> bool {
        let Some(core) = &self.core else {
            return false;
        };
        core.lanes == lanes
            && core.dim == system.dim
            && core.num_nodes == system.num_nodes
            && core.signature.len() == system.circuit.num_devices()
            && core
                .signature
                .iter()
                .zip(system.circuit.devices())
                .all(|(sig, dev)| *sig == device_signature(dev))
    }

    /// Binds the workspace to `system`'s topology for `lanes` lockstep
    /// samples, rebuilding the symbolic plan only if the topology or the lane
    /// count changed. Value-only changes (the Monte-Carlo hot path) are free.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_LANES`].
    pub fn bind(&mut self, system: &MnaSystem, lanes: usize) {
        if self.matches(system, lanes) {
            return;
        }
        let dim = system.dim;
        let mut builder = PatternBuilder::new(dim);
        // Identical symbolic pre-pass as the scalar workspace: all lanes share
        // the connectivity, so one pattern covers every lane.
        let zeros_x = vec![0.0; dim];
        let zeros_nodes = vec![0.0; system.num_nodes];
        let dynamic = DynamicState {
            previous_node_voltages: &zeros_nodes,
            dt: 1.0,
        };
        system.assemble_with(
            &zeros_x,
            0.0,
            Some(&dynamic),
            &mut PatternStamper {
                pattern: &mut builder,
            },
        );
        let symbolic = SymbolicLu::analyze(&builder.build());
        let (program, mosfet_evals) = compile_program(system);
        let mosfet_scratch = vec![MosfetScratch::default(); mosfet_evals.len() * lanes];
        let count = |probe: fn(&StampOp) -> bool| program.iter().filter(|op| probe(op)).count();
        let ne = mosfet_evals.len();
        // All staging buffers are pre-sized here so the per-solve staging pass
        // (and with it the whole steady-state solve) stays allocation-free.
        // The model cards start as placeholder defaults; staging overwrites
        // every entry before the first read.
        let staged = LockstepStage {
            res_g: vec![0.0; count(|op| matches!(op, StampOp::Resistor { .. })) * lanes],
            cap_geq: vec![0.0; count(|op| matches!(op, StampOp::Capacitor { .. })) * lanes],
            vsrc_v: vec![0.0; count(|op| matches!(op, StampOp::VoltageSource { .. })) * lanes],
            isrc_i: vec![0.0; count(|op| matches!(op, StampOp::CurrentSource { .. })) * lanes],
            params: vec![MosfetParams::nmos_45nm(); ne * lanes],
            vth0: vec![0.0; ne * lanes],
            k_prime: vec![0.0; ne * lanes],
            lambda: vec![0.0; ne * lanes],
            two_n_phi_t: vec![0.0; ne * lanes],
            body_effect: vec![0.0; ne * lanes],
            sign: vec![0.0; ne],
        };
        self.core = Some(LockstepCore {
            num_nodes: system.num_nodes,
            dim,
            lanes,
            signature: system
                .circuit
                .devices()
                .iter()
                .map(device_signature)
                .collect(),
            program,
            mosfet_evals,
            mosfet_scratch,
            staged,
            lu: LockstepLu::new(symbolic, lanes),
            z: vec![0.0; dim * lanes],
            x: vec![0.0; dim * lanes],
            x_new: vec![0.0; dim * lanes],
            running: [false; MAX_LANES],
        });
    }

    /// The lane count the workspace is bound at, if bound.
    pub fn lanes(&self) -> Option<usize> {
        self.core.as_ref().map(|c| c.lanes)
    }

    /// The lane-major iterate/solution vector (`dim × lanes`, unknown `i` of
    /// lane `l` at `i * lanes + l`).
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been bound.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn state(&self) -> &[f64] {
        &self.core.as_ref().expect("workspace is bound").x
    }

    /// Seeds every lane's Newton iterate with the same initial guess
    /// (entries beyond `x0.len()` are zeroed), mirroring
    /// [`SimulationWorkspace::set_state`] per lane.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been bound.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn set_state_broadcast(&mut self, x0: &[f64]) {
        let core = self.core.as_mut().expect("workspace is bound");
        for i in 0..core.dim {
            let value = if i < x0.len() { x0[i] } else { 0.0 };
            for lane in 0..core.lanes {
                core.x[i * core.lanes + lane] = value;
            }
        }
    }

    /// Writes lane `lane`'s per-node voltages into the lane-major `out`
    /// buffer (`out[node * lanes + lane]`, ground as 0.0), without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never been bound or `out` is shorter than
    /// `num_nodes × lanes`.
    /// gis-analyze: no_alloc
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn lane_node_voltages_into_strided(&self, lane: usize, out: &mut [f64]) {
        let core = self.core.as_ref().expect("workspace is bound");
        out[lane] = 0.0; // ground row
        for node in 1..core.num_nodes {
            out[node * core.lanes + lane] = core.x[(node - 1) * core.lanes + lane];
        }
    }

    /// The symbolic plan, if the workspace is bound (for diagnostics/tests).
    pub fn symbolic(&self) -> Option<&SymbolicLu> {
        self.core.as_ref().map(|c| c.lu.symbolic())
    }
}

/// `true` when `a` and `b` have the same node count and identical device
/// connectivity (device *values* are free to differ) — the precondition for
/// advancing them through one shared lockstep plan.
pub fn same_topology(a: &Circuit, b: &Circuit) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_devices() == b.num_devices()
        && a.devices()
            .iter()
            .zip(b.devices())
            .all(|(da, db)| device_signature(da) == device_signature(db))
}

/// An assembled view of a circuit ready for MNA analysis.
#[derive(Debug, Clone)]
pub struct MnaSystem<'a> {
    circuit: &'a Circuit,
    num_nodes: usize,
    vsrc_branch: Vec<Option<usize>>,
    dim: usize,
}

impl<'a> MnaSystem<'a> {
    /// Builds the unknown mapping for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if any device references a node
    /// that does not exist, or [`CircuitError::InvalidAnalysis`] if the circuit
    /// has no devices.
    pub fn new(circuit: &'a Circuit) -> Result<Self, CircuitError> {
        circuit.validate()?;
        if circuit.num_devices() == 0 {
            return Err(CircuitError::InvalidAnalysis(
                "circuit has no devices".to_string(),
            ));
        }
        let num_nodes = circuit.num_nodes();
        let mut vsrc_branch = vec![None; circuit.num_devices()];
        let mut next_branch = 0usize;
        for (i, d) in circuit.devices().iter().enumerate() {
            if matches!(d, Device::VoltageSource { .. }) {
                vsrc_branch[i] = Some(next_branch);
                next_branch += 1;
            }
        }
        let dim = (num_nodes - 1) + next_branch;
        Ok(MnaSystem {
            circuit,
            num_nodes,
            vsrc_branch,
            dim,
        })
    }

    /// Number of unknowns (non-ground node voltages plus voltage-source branch currents).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The circuit this system was built from.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Index of node `node` in the unknown vector, or `None` for ground.
    #[inline]
    fn node_index(&self, node: NodeId) -> Option<usize> {
        if node == GROUND {
            None
        } else {
            Some(node - 1)
        }
    }

    /// Voltage of `node` in the solution vector `x` (0 for ground).
    pub fn node_voltage(&self, x: &Vector, node: NodeId) -> f64 {
        self.node_voltage_in(x.as_slice(), node)
    }

    /// Voltage of `node` in the solution slice `x` (0 for ground).
    #[inline]
    pub fn node_voltage_in(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_index(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    }

    /// Expands a solution vector into per-node voltages (index = node id,
    /// ground included as 0.0).
    pub fn node_voltages(&self, x: &Vector) -> Vec<f64> {
        let mut out = vec![0.0; self.num_nodes];
        self.node_voltages_into(x.as_slice(), &mut out);
        out
    }

    /// Writes per-node voltages of the solution slice `x` into `out`
    /// (index = node id, ground as 0.0), without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != num_nodes`.
    pub fn node_voltages_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.num_nodes, "node voltage buffer mismatch");
        for (n, slot) in out.iter_mut().enumerate() {
            *slot = self.node_voltage_in(x, n);
        }
    }

    /// Branch current through the `k`-th voltage source in the solution `x`.
    ///
    /// Returns `None` if the device at `device_index` is not a voltage source.
    pub fn voltage_source_current(&self, x: &Vector, device_index: usize) -> Option<f64> {
        let branch = self.vsrc_branch.get(device_index).copied().flatten()?;
        Some(x[(self.num_nodes - 1) + branch])
    }

    #[inline]
    fn stamp_conductance<S: Stamper>(&self, a: NodeId, b: NodeId, g: f64, stamper: &mut S) {
        let ia = self.node_index(a);
        let ib = self.node_index(b);
        if let Some(i) = ia {
            stamper.mat_add(i, i, g);
        }
        if let Some(j) = ib {
            stamper.mat_add(j, j, g);
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            stamper.mat_add(i, j, -g);
            stamper.mat_add(j, i, -g);
        }
    }

    #[inline]
    fn stamp_current<S: Stamper>(&self, from: NodeId, into: NodeId, current: f64, stamper: &mut S) {
        if let Some(i) = self.node_index(into) {
            stamper.rhs_add(i, current);
        }
        if let Some(i) = self.node_index(from) {
            stamper.rhs_add(i, -current);
        }
    }

    /// Assembles the linearized MNA system `A · x_new = z` around the iterate
    /// `x` into fresh dense storage. This is the reference path; the hot loop
    /// uses the workspace-backed sparse assembly via
    /// [`MnaSystem::solve_newton_in`].
    pub fn assemble(
        &self,
        x: &Vector,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
    ) -> (Matrix, Vector) {
        let mut a = Matrix::zeros(self.dim, self.dim);
        let mut z = Vector::zeros(self.dim);
        self.assemble_with(
            x.as_slice(),
            time,
            dynamic,
            &mut DenseStamper {
                a: &mut a,
                z: &mut z,
            },
        );
        (a, z)
    }

    /// The single assembly walk shared by every kernel: identical stamp order
    /// (and therefore identical floating-point accumulation order) regardless
    /// of the destination.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn assemble_with<S: Stamper>(
        &self,
        x: &[f64],
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        stamper: &mut S,
    ) {
        // GMIN from every non-ground node to ground.
        for n in 1..self.num_nodes {
            let i = n - 1;
            stamper.mat_add(i, i, GMIN);
        }

        for (dev_index, device) in self.circuit.devices().iter().enumerate() {
            match device {
                Device::Resistor {
                    a: na,
                    b: nb,
                    resistance,
                    ..
                } => {
                    self.stamp_conductance(*na, *nb, 1.0 / resistance, stamper);
                }
                Device::Capacitor {
                    a: na,
                    b: nb,
                    capacitance,
                    ..
                } => {
                    if let Some(state) = dynamic {
                        // Backward-Euler companion model.
                        let geq = capacitance / state.dt;
                        let v_prev =
                            state.previous_node_voltages[*na] - state.previous_node_voltages[*nb];
                        self.stamp_conductance(*na, *nb, geq, stamper);
                        // The history term acts as a current source from b into a.
                        self.stamp_current(*nb, *na, geq * v_prev, stamper);
                    }
                    // DC: capacitor is an open circuit — nothing to stamp.
                }
                Device::VoltageSource {
                    positive,
                    negative,
                    waveform,
                    ..
                } => {
                    let branch = self.vsrc_branch[dev_index]
                        .expect("voltage source has a branch index by construction");
                    let row = (self.num_nodes - 1) + branch;
                    if let Some(i) = self.node_index(*positive) {
                        stamper.mat_add(i, row, 1.0);
                        stamper.mat_add(row, i, 1.0);
                    }
                    if let Some(i) = self.node_index(*negative) {
                        stamper.mat_add(i, row, -1.0);
                        stamper.mat_add(row, i, -1.0);
                    }
                    stamper.rhs_set(row, waveform.value_at(time));
                }
                Device::CurrentSource {
                    from,
                    into,
                    waveform,
                    ..
                } => {
                    self.stamp_current(*from, *into, waveform.value_at(time), stamper);
                }
                Device::Mosfet {
                    drain,
                    gate,
                    source,
                    body,
                    params,
                    ..
                } => {
                    self.stamp_mosfet(*drain, *gate, *source, *body, params, x, stamper);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_mosfet<S: Stamper>(
        &self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        body: NodeId,
        params: &crate::mosfet::MosfetParams,
        x: &[f64],
        stamper: &mut S,
    ) {
        let sign = params.polarity.sign();
        let vd = self.node_voltage_in(x, drain);
        let vg = self.node_voltage_in(x, gate);
        let vs = self.node_voltage_in(x, source);
        let vb = self.node_voltage_in(x, body);

        // Normalize to an N-type device: for PMOS flip all voltages.
        let (nvd, nvg, nvs, nvb) = (sign * vd, sign * vg, sign * vs, sign * vb);
        // Symmetric conduction: pick the higher of the two channel terminals as
        // the effective drain.
        let swapped = nvd < nvs;
        let (evd, evs) = if swapped { (nvs, nvd) } else { (nvd, nvs) };
        let vgs = nvg - evs;
        let vds = evd - evs;
        let vbs = nvb - evs;

        let op = params.evaluate_normalized(vgs, vds, vbs);

        // Norton linearization around the iterate:
        // i_d ≈ id0 + gm·Δvgs + gds·Δvds + gmb·Δvbs
        // Equivalent current source: ieq = ±(id0 − gm·vgs − gds·vds − gmb·vbs).
        // The polarity sign appears only here: expressed in terms of *real*
        // node-voltage differences the conductance stamps of NMOS and PMOS are
        // identical, while the current injected at the effective drain flips.
        let ieq = sign * (op.id - op.gm * vgs - op.gds * vds - op.gmb * vbs);

        // Terminals in the normalized (possibly swapped) frame.
        let (eff_drain, eff_source) = if swapped {
            (source, drain)
        } else {
            (drain, source)
        };

        // In the normalized frame current `id` flows from eff_drain to eff_source
        // inside the device. For PMOS (sign = −1) the real current direction is
        // reversed, which is equivalent to stamping in the flipped frame with
        // flipped voltage differences — handled by multiplying the stamped
        // current by `sign` while conductances stay positive.
        let gd = self.node_index(eff_drain);
        let gs_idx = self.node_index(eff_source);
        let gg = self.node_index(gate);
        let gb = self.node_index(body);

        // Conductance stamps (Jacobian contributions). Row for eff_drain gets
        // +∂i/∂v_terminal, row for eff_source gets the negative.
        // i depends on vgs = vg − vs, vds = vd − vs, vbs = vb − vs
        // (all in the normalized frame; the sign flip for PMOS cancels because
        // both the current and the voltages flip).
        let add = |s: &mut S, row: Option<usize>, col: Option<usize>, val: f64| {
            if let (Some(r), Some(c)) = (row, col) {
                s.mat_add(r, c, val);
            }
        };

        // Row eff_drain.
        add(stamper, gd, gg, op.gm);
        add(stamper, gd, gd, op.gds);
        add(stamper, gd, gb, op.gmb);
        add(stamper, gd, gs_idx, -(op.gm + op.gds + op.gmb));
        // Row eff_source (current leaves the source terminal).
        add(stamper, gs_idx, gg, -op.gm);
        add(stamper, gs_idx, gd, -op.gds);
        add(stamper, gs_idx, gb, -op.gmb);
        add(stamper, gs_idx, gs_idx, op.gm + op.gds + op.gmb);

        // Equivalent current source: flows out of eff_drain, into eff_source.
        if let Some(r) = gd {
            stamper.rhs_add(r, -ieq);
        }
        if let Some(r) = gs_idx {
            stamper.rhs_add(r, ieq);
        }
    }

    /// Runs damped Newton–Raphson from the initial guess `x0` using the dense
    /// reference kernel.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::SingularSystem`] if a linearized system cannot be solved.
    /// * [`CircuitError::NewtonDidNotConverge`] if the iteration limit is reached.
    pub fn solve_newton(
        &self,
        x0: Vector,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<Vector, CircuitError> {
        self.solve_newton_counted(x0, time, dynamic, analysis, max_iterations)
            .map(|(x, _)| x)
    }

    /// Dense-kernel Newton solve that also reports the iterations spent.
    ///
    /// # Errors
    ///
    /// See [`MnaSystem::solve_newton`].
    pub fn solve_newton_counted(
        &self,
        x0: Vector,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<(Vector, usize), CircuitError> {
        let mut x = if x0.len() == self.dim {
            x0
        } else {
            Vector::zeros(self.dim)
        };
        let mut last_delta = f64::INFINITY;
        for iteration in 0..max_iterations {
            let (a, z) = self.assemble(&x, time, dynamic);
            let lu = LuDecomposition::new(&a)
                .map_err(|source| CircuitError::SingularSystem { time, source })?;
            let x_new = lu
                .solve(&z)
                .map_err(|source| CircuitError::SingularSystem { time, source })?;

            let (max_delta, norm_inf) = newton_update(
                x.as_mut_slice(),
                x_new.as_slice(),
                self.num_nodes - 1,
                iteration,
                max_iterations,
            );
            last_delta = max_delta;
            if newton_converged(max_delta, norm_inf) {
                return Ok((x, iteration + 1));
            }
        }
        Err(CircuitError::NewtonDidNotConverge {
            analysis,
            time,
            iterations: max_iterations,
            residual: last_delta,
        })
    }

    /// Runs damped Newton–Raphson in place on `workspace` using the sparse
    /// kernel, returning the iterations spent. The converged solution is left
    /// in [`SimulationWorkspace::state`]; the incoming state is the initial
    /// guess (warm start).
    ///
    /// The workspace binds (or re-binds) to this system's topology
    /// automatically; in the steady state — same topology, new values — the
    /// entire call is allocation-free. The arithmetic is bit-identical to
    /// [`MnaSystem::solve_newton`].
    ///
    /// # Errors
    ///
    /// See [`MnaSystem::solve_newton`].
    /// gis-analyze: no_alloc
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn solve_newton_in(
        &self,
        workspace: &mut SimulationWorkspace,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<usize, CircuitError> {
        workspace.bind(self);
        let core = workspace.core.as_mut().expect("workspace bound above");
        self.solve_newton_bound(core, time, dynamic, analysis, max_iterations)
    }

    /// Like [`MnaSystem::solve_newton_in`] but assumes the workspace is
    /// already bound to this system (used by the transient driver, which
    /// binds once per analysis instead of once per time step).
    /// gis-analyze: no_alloc
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub(crate) fn solve_newton_prebound(
        &self,
        workspace: &mut SimulationWorkspace,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<usize, CircuitError> {
        debug_assert!(workspace.matches(self), "workspace not bound to system");
        let core = workspace.core.as_mut().expect("caller bound the workspace");
        self.solve_newton_bound(core, time, dynamic, analysis, max_iterations)
    }

    /// The bound sparse Newton loop: `core` must already belong to this
    /// system's topology (the transient driver binds once per analysis and
    /// then skips the per-step signature check).
    /// gis-analyze: no_alloc
    fn solve_newton_bound(
        &self,
        core: &mut WorkspaceCore,
        time: f64,
        dynamic: Option<&DynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
    ) -> Result<usize, CircuitError> {
        let devices = self.circuit.devices();
        let node_unknowns = self.num_nodes - 1;
        let mut last_delta = f64::INFINITY;
        for iteration in 0..max_iterations {
            core.lu.clear();
            core.z.iter_mut().for_each(|v| *v = 0.0);
            execute_program(
                &core.program,
                &core.mosfet_evals,
                &mut core.mosfet_scratch,
                devices,
                node_unknowns,
                &core.x,
                time,
                dynamic,
                &mut core.lu,
                &mut core.z,
            );
            core.lu
                .factorize()
                .map_err(|source| CircuitError::SingularSystem { time, source })?;
            core.lu
                .solve(&core.z, &mut core.x_new)
                .map_err(|source| CircuitError::SingularSystem { time, source })?;

            let (max_delta, norm_inf) = newton_update(
                &mut core.x,
                &core.x_new,
                node_unknowns,
                iteration,
                max_iterations,
            );
            last_delta = max_delta;
            if newton_converged(max_delta, norm_inf) {
                return Ok(iteration + 1);
            }
        }
        Err(CircuitError::NewtonDidNotConverge {
            analysis,
            time,
            iterations: max_iterations,
            residual: last_delta,
        })
    }

    /// Runs the damped Newton iteration for `circuits.len()` lockstep lanes
    /// in place on `workspace`. `circuits[lane]` supplies lane `lane`'s
    /// device values; every circuit must share `self`'s topology (the caller
    /// checks via [`same_topology`], debug-asserted here).
    ///
    /// `alive[lane]` selects the lanes to solve. The method is infallible at
    /// the batch level: a lane that hits a singular system or fails to
    /// converge gets its error stored in `errors[lane]` and its `alive` flag
    /// cleared, without perturbing the other lanes. A converged lane's spent
    /// iterations are *added* to `newton_iterations[lane]` (the transient
    /// driver accumulates across time steps).
    ///
    /// Each lane performs exactly the scalar [`MnaSystem::solve_newton_in`]
    /// arithmetic in the scalar order, so surviving lanes are bit-identical
    /// to scalar runs of the same circuit. In the steady state — bound
    /// workspace, new values — the call is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `alive`/`errors`/`newton_iterations` are shorter than the
    /// lane count, or if `circuits` is empty or longer than [`MAX_LANES`].
    /// gis-analyze: no_alloc
    #[allow(clippy::too_many_arguments)] // lane-batched mirror of solve_newton_in
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn solve_newton_lockstep_in(
        &self,
        workspace: &mut LockstepWorkspace,
        circuits: &[&Circuit],
        time: f64,
        dynamic: Option<&LockstepDynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
        fast: bool,
        alive: &mut [bool],
        errors: &mut [Option<CircuitError>],
        newton_iterations: &mut [usize],
    ) {
        workspace.bind(self, circuits.len());
        let core = workspace.core.as_mut().expect("workspace bound above");
        self.solve_newton_lockstep_bound(
            core,
            circuits,
            time,
            dynamic,
            analysis,
            max_iterations,
            fast,
            alive,
            errors,
            newton_iterations,
        );
    }

    /// Like [`MnaSystem::solve_newton_lockstep_in`] but assumes the workspace
    /// is already bound to this system at `circuits.len()` lanes (used by the
    /// lockstep transient driver, which binds once per analysis instead of
    /// paying the per-step signature walk).
    /// gis-analyze: no_alloc
    #[allow(clippy::too_many_arguments)] // lane-batched mirror of solve_newton_prebound
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub(crate) fn solve_newton_lockstep_prebound(
        &self,
        workspace: &mut LockstepWorkspace,
        circuits: &[&Circuit],
        time: f64,
        dynamic: Option<&LockstepDynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
        fast: bool,
        alive: &mut [bool],
        errors: &mut [Option<CircuitError>],
        newton_iterations: &mut [usize],
    ) {
        debug_assert!(
            workspace.matches(self, circuits.len()),
            "workspace not bound to system"
        );
        let core = workspace.core.as_mut().expect("caller bound the workspace");
        self.solve_newton_lockstep_bound(
            core,
            circuits,
            time,
            dynamic,
            analysis,
            max_iterations,
            fast,
            alive,
            errors,
            newton_iterations,
        );
    }

    /// The bound lockstep Newton loop (see [`MnaSystem::solve_newton_lockstep_in`]).
    /// gis-analyze: no_alloc
    #[allow(clippy::too_many_arguments)] // lane-batched mirror of solve_newton_bound
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn solve_newton_lockstep_bound(
        &self,
        core: &mut LockstepCore,
        circuits: &[&Circuit],
        time: f64,
        dynamic: Option<&LockstepDynamicState<'_>>,
        analysis: &'static str,
        max_iterations: usize,
        fast: bool,
        alive: &mut [bool],
        errors: &mut [Option<CircuitError>],
        newton_iterations: &mut [usize],
    ) {
        let lanes = core.lanes;
        debug_assert_eq!(circuits.len(), lanes, "one circuit per lane");
        debug_assert!(circuits.iter().all(|c| same_topology(circuits[0], c)));
        assert!(alive.len() >= lanes && errors.len() >= lanes && newton_iterations.len() >= lanes);
        let node_unknowns = self.num_nodes - 1;
        core.running[..lanes].copy_from_slice(&alive[..lanes]);
        stage_lockstep_values(
            &core.program,
            &core.mosfet_evals,
            circuits,
            time,
            dynamic.map(|d| d.dt),
            fast,
            &mut core.staged,
        );
        let mut last_delta = [f64::INFINITY; MAX_LANES];
        for iteration in 0..max_iterations {
            if !core.running[..lanes].iter().any(|&r| r) {
                return;
            }
            core.lu.clear();
            core.z.iter_mut().for_each(|v| *v = 0.0);
            execute_program_lockstep(
                &core.program,
                &core.mosfet_evals,
                &mut core.mosfet_scratch,
                &core.staged,
                &core.running[..lanes],
                node_unknowns,
                &core.x,
                dynamic,
                &mut core.lu,
                &mut core.z,
                fast,
            );
            core.lu.factorize(&core.running[..lanes]);
            for lane in 0..lanes {
                if core.running[lane] {
                    if let Err(source) = core.lu.lane_result(lane) {
                        errors[lane] = Some(CircuitError::SingularSystem { time, source });
                        alive[lane] = false;
                        core.running[lane] = false;
                    }
                }
            }
            if !core.running[..lanes].iter().any(|&r| r) {
                return;
            }
            core.lu
                .solve(&core.z, &mut core.x_new, &core.running[..lanes])
                .expect("lockstep buffers are sized by bind");
            for lane in 0..lanes {
                if !core.running[lane] {
                    continue;
                }
                let (max_delta, norm_inf) = newton_update_lane(
                    &mut core.x,
                    &core.x_new,
                    lanes,
                    lane,
                    node_unknowns,
                    iteration,
                    max_iterations,
                );
                last_delta[lane] = max_delta;
                if newton_converged(max_delta, norm_inf) {
                    newton_iterations[lane] += iteration + 1;
                    core.running[lane] = false;
                }
            }
        }
        for lane in 0..lanes {
            if core.running[lane] {
                errors[lane] = Some(CircuitError::NewtonDidNotConverge {
                    analysis,
                    time,
                    iterations: max_iterations,
                    residual: last_delta[lane],
                });
                alive[lane] = false;
                core.running[lane] = false;
            }
        }
    }

    /// Computes the DC operating point, optionally warm-started from
    /// `initial_node_voltages` (index = node id; ground entry ignored).
    ///
    /// # Errors
    ///
    /// See [`MnaSystem::solve_newton`].
    pub fn dc_operating_point(
        &self,
        initial_node_voltages: Option<&[f64]>,
    ) -> Result<Vector, CircuitError> {
        let mut x0 = Vector::zeros(self.dim);
        if let Some(init) = initial_node_voltages {
            for node in 1..self.num_nodes.min(init.len()) {
                x0[node - 1] = init[node];
            }
        }
        self.solve_newton(x0, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
    }
}

/// The damped Newton update shared by both kernels: applies the step from
/// `x_new` onto `x` in place and returns `(max_delta, norm_inf(x))` of the
/// updated iterate. Identical arithmetic to the historical dense loop (which
/// cloned `x` per iteration and took `norm_inf` in a second pass — `max` is a
/// pure selection, so fusing the passes returns the same value).
#[inline]
/// gis-analyze: no_alloc
fn newton_update(
    x: &mut [f64],
    x_new: &[f64],
    node_unknowns: usize,
    iteration: usize,
    max_iterations: usize,
) -> (f64, f64) {
    // Damped update: limit per-iteration voltage change. If the iteration has
    // not settled after half the budget (typically a limit cycle between two
    // near-solutions in weak inversion), shrink the step progressively to
    // force convergence.
    let relaxation = if iteration * 2 > max_iterations {
        0.25
    } else {
        1.0
    };
    let mut max_delta: f64 = 0.0;
    let mut norm_inf: f64 = 0.0;
    for i in 0..x.len() {
        let mut delta = x_new[i] - x[i];
        if i < node_unknowns {
            delta = relaxation * delta.clamp(-MAX_VOLTAGE_STEP, MAX_VOLTAGE_STEP);
            max_delta = max_delta.max(delta.abs());
        }
        let updated = x[i] + delta;
        x[i] = updated;
        norm_inf = norm_inf.max(updated.abs());
    }
    (max_delta, norm_inf)
}

/// The convergence test shared by both kernels (same expression as the
/// historical dense loop).
#[inline]
fn newton_converged(max_delta: f64, norm_inf: f64) -> bool {
    max_delta < VOLTAGE_TOLERANCE + RELATIVE_TOLERANCE * norm_inf.min(1.0)
}

/// Per-lane damped Newton update of the lockstep kernel: the identical
/// arithmetic as [`newton_update`], applied to lane `lane` of the lane-major
/// iterate (`x[i * lanes + lane]`). The stride only changes *where* values
/// live, not a single operation or its order, so the update is bit-identical
/// to the scalar kernel's.
#[inline]
/// gis-analyze: no_alloc
fn newton_update_lane(
    x: &mut [f64],
    x_new: &[f64],
    lanes: usize,
    lane: usize,
    node_unknowns: usize,
    iteration: usize,
    max_iterations: usize,
) -> (f64, f64) {
    let relaxation = if iteration * 2 > max_iterations {
        0.25
    } else {
        1.0
    };
    let dim = x.len() / lanes;
    let mut max_delta: f64 = 0.0;
    let mut norm_inf: f64 = 0.0;
    for i in 0..dim {
        let xi = i * lanes + lane;
        let mut delta = x_new[xi] - x[xi];
        if i < node_unknowns {
            delta = relaxation * delta.clamp(-MAX_VOLTAGE_STEP, MAX_VOLTAGE_STEP);
            max_delta = max_delta.max(delta.abs());
        }
        let updated = x[xi] + delta;
        x[xi] = updated;
        norm_inf = norm_inf.max(updated.abs());
    }
    (max_delta, norm_inf)
}

/// Compiles the netlist walk of `system` into a flat stamp program with every
/// matrix slot precomputed (see [`StampOp`]).
#[allow(clippy::expect_used)] // invariants stated in the expect messages
fn compile_program(system: &MnaSystem) -> (Vec<StampOp>, Vec<MosfetEvalSpec>) {
    let n = system.dim;
    let idx = |node: NodeId| -> u32 {
        match system.node_index(node) {
            None => NONE_SLOT,
            Some(i) => i as u32,
        }
    };
    let slot = |r: u32, c: u32| -> u32 {
        if r == NONE_SLOT || c == NONE_SLOT {
            NONE_SLOT
        } else {
            r * n as u32 + c
        }
    };
    // Conductance stamp destinations in the generic walk's order:
    // (ia,ia), (ib,ib) on the diagonal, then (ia,ib), (ib,ia) across.
    let conductance = |a: NodeId, b: NodeId| -> ([u32; 2], [u32; 2]) {
        let ia = idx(a);
        let ib = idx(b);
        ([slot(ia, ia), slot(ib, ib)], [slot(ia, ib), slot(ib, ia)])
    };

    let mut program = Vec::with_capacity(system.circuit.num_devices());
    let mut mosfet_evals = Vec::new();
    for (dev_index, device) in system.circuit.devices().iter().enumerate() {
        let dev = dev_index as u32;
        match device {
            Device::Resistor { a, b, .. } => {
                let (diag, cross) = conductance(*a, *b);
                program.push(StampOp::Resistor { dev, diag, cross });
            }
            Device::Capacitor { a, b, .. } => {
                let (diag, cross) = conductance(*a, *b);
                program.push(StampOp::Capacitor {
                    dev,
                    node_a: *a as u32,
                    node_b: *b as u32,
                    diag,
                    cross,
                    // stamp_current(from = b, into = a): rhs[a] += i, rhs[b] -= i.
                    rhs_into: idx(*a),
                    rhs_from: idx(*b),
                });
            }
            Device::VoltageSource {
                positive, negative, ..
            } => {
                let branch = system.vsrc_branch[dev_index]
                    .expect("voltage source has a branch index by construction");
                let row = ((system.num_nodes - 1) + branch) as u32;
                let ip = idx(*positive);
                let ineg = idx(*negative);
                program.push(StampOp::VoltageSource {
                    dev,
                    row,
                    plus: [slot(ip, row), slot(row, ip)],
                    minus: [slot(ineg, row), slot(row, ineg)],
                });
            }
            Device::CurrentSource { from, into, .. } => {
                program.push(StampOp::CurrentSource {
                    dev,
                    rhs_into: idx(*into),
                    rhs_from: idx(*from),
                });
            }
            Device::Mosfet {
                drain,
                gate,
                source,
                body,
                ..
            } => {
                let d = idx(*drain);
                let g = idx(*gate);
                let s = idx(*source);
                let b = idx(*body);
                // The 8 Jacobian stamps of `stamp_mosfet`, in its exact order,
                // for eff_drain/eff_source = (d, s) and the swapped (s, d).
                let jacobian = |gd: u32, gs: u32| -> [u32; 8] {
                    [
                        slot(gd, g),
                        slot(gd, gd),
                        slot(gd, b),
                        slot(gd, gs),
                        slot(gs, g),
                        slot(gs, gd),
                        slot(gs, b),
                        slot(gs, gs),
                    ]
                };
                program.push(StampOp::Mosfet {
                    eval: mosfet_evals.len() as u32,
                    slots_normal: jacobian(d, s),
                    slots_swapped: jacobian(s, d),
                    rhs_normal: [d, s],
                    rhs_swapped: [s, d],
                });
                mosfet_evals.push(MosfetEvalSpec { dev, d, g, s, b });
            }
        }
    }
    (program, mosfet_evals)
}

/// The batched MOSFET evaluation pass: runs every transistor's compact model
/// against the current iterate and leaves the stamp values in `scratch`.
/// Each evaluation is the identical arithmetic `stamp_mosfet` performs
/// in-line; only the scheduling differs (all evaluations before any stamp).
#[inline]
fn evaluate_mosfets(
    evals: &[MosfetEvalSpec],
    devices: &[Device],
    x: &[f64],
    scratch: &mut [MosfetScratch],
) {
    for (spec, out) in evals.iter().zip(scratch) {
        let Device::Mosfet { params, .. } = &devices[spec.dev as usize] else {
            unreachable!("program op desynchronized from netlist");
        };
        let volt = |i: u32| if i == NONE_SLOT { 0.0 } else { x[i as usize] };
        let sign = params.polarity.sign();
        let vd = volt(spec.d);
        let vg = volt(spec.g);
        let vs = volt(spec.s);
        let vb = volt(spec.b);

        // Identical normalization as `stamp_mosfet` (see there for the sign
        // conventions).
        let (nvd, nvg, nvs, nvb) = (sign * vd, sign * vg, sign * vs, sign * vb);
        let swapped = nvd < nvs;
        let (evd, evs) = if swapped { (nvs, nvd) } else { (nvd, nvs) };
        let vgs = nvg - evs;
        let vds = evd - evs;
        let vbs = nvb - evs;
        let op_point = params.evaluate_normalized(vgs, vds, vbs);
        let ieq =
            sign * (op_point.id - op_point.gm * vgs - op_point.gds * vds - op_point.gmb * vbs);

        let total = op_point.gm + op_point.gds + op_point.gmb;
        out.values = [
            op_point.gm,
            op_point.gds,
            op_point.gmb,
            -total,
            -op_point.gm,
            -op_point.gds,
            -op_point.gmb,
            total,
        ];
        out.ieq = ieq;
        out.swapped = swapped;
    }
}

/// Replays a compiled stamp program: the allocation-free, dispatch-free
/// equivalent of [`MnaSystem::assemble`] used by the sparse Newton loop.
/// Performs the identical floating-point operations in the identical order.
#[allow(clippy::too_many_arguments)]
#[inline]
/// gis-analyze: no_alloc
fn execute_program(
    program: &[StampOp],
    mosfet_evals: &[MosfetEvalSpec],
    mosfet_scratch: &mut [MosfetScratch],
    devices: &[Device],
    num_node_unknowns: usize,
    x: &[f64],
    time: f64,
    dynamic: Option<&DynamicState<'_>>,
    lu: &mut SparseLu,
    z: &mut [f64],
) {
    evaluate_mosfets(mosfet_evals, devices, x, mosfet_scratch);
    let n = z.len() as u32;
    // GMIN from every non-ground node to ground.
    for i in 0..num_node_unknowns as u32 {
        lu.add_to_slot(i * n + i, GMIN);
    }
    let stamp = |lu: &mut SparseLu, slot: u32, v: f64| {
        if slot != NONE_SLOT {
            lu.add_to_slot(slot, v);
        }
    };
    let rhs = |z: &mut [f64], row: u32, v: f64| {
        if row != NONE_SLOT {
            z[row as usize] += v;
        }
    };
    for op in program {
        match op {
            StampOp::Resistor { dev, diag, cross } => {
                let Device::Resistor { resistance, .. } = &devices[*dev as usize] else {
                    unreachable!("program op desynchronized from netlist");
                };
                let g = 1.0 / resistance;
                stamp(lu, diag[0], g);
                stamp(lu, diag[1], g);
                stamp(lu, cross[0], -g);
                stamp(lu, cross[1], -g);
            }
            StampOp::Capacitor {
                dev,
                node_a,
                node_b,
                diag,
                cross,
                rhs_into,
                rhs_from,
            } => {
                if let Some(state) = dynamic {
                    let Device::Capacitor { capacitance, .. } = &devices[*dev as usize] else {
                        unreachable!("program op desynchronized from netlist");
                    };
                    // Backward-Euler companion model.
                    let geq = capacitance / state.dt;
                    let v_prev = state.previous_node_voltages[*node_a as usize]
                        - state.previous_node_voltages[*node_b as usize];
                    stamp(lu, diag[0], geq);
                    stamp(lu, diag[1], geq);
                    stamp(lu, cross[0], -geq);
                    stamp(lu, cross[1], -geq);
                    let current = geq * v_prev;
                    rhs(z, *rhs_into, current);
                    rhs(z, *rhs_from, -current);
                }
                // DC: capacitor is an open circuit — nothing to stamp.
            }
            StampOp::VoltageSource {
                dev,
                row,
                plus,
                minus,
            } => {
                let Device::VoltageSource { waveform, .. } = &devices[*dev as usize] else {
                    unreachable!("program op desynchronized from netlist");
                };
                stamp(lu, plus[0], 1.0);
                stamp(lu, plus[1], 1.0);
                stamp(lu, minus[0], -1.0);
                stamp(lu, minus[1], -1.0);
                z[*row as usize] = waveform.value_at(time);
            }
            StampOp::CurrentSource {
                dev,
                rhs_into,
                rhs_from,
            } => {
                let Device::CurrentSource { waveform, .. } = &devices[*dev as usize] else {
                    unreachable!("program op desynchronized from netlist");
                };
                let current = waveform.value_at(time);
                rhs(z, *rhs_into, current);
                rhs(z, *rhs_from, -current);
            }
            StampOp::Mosfet {
                eval,
                slots_normal,
                slots_swapped,
                rhs_normal,
                rhs_swapped,
            } => {
                let result = &mosfet_scratch[*eval as usize];
                let (slots, rhs_rows) = if result.swapped {
                    (slots_swapped, rhs_swapped)
                } else {
                    (slots_normal, rhs_normal)
                };
                for (&slot_id, &v) in slots.iter().zip(&result.values) {
                    stamp(lu, slot_id, v);
                }
                rhs(z, rhs_rows[0], -result.ieq);
                rhs(z, rhs_rows[1], result.ieq);
            }
        }
    }
}

/// Stages every iterate-independent device value of one lockstep solve into
/// `stage` (see [`LockstepStage`]): one netlist walk per solve instead of one
/// per Newton iteration. Every staged value is the identical deterministic
/// expression the scalar kernel re-evaluates inside its per-iteration walk
/// (`1/R`, `C/dt`, `value_at(time)`, plain model-card reads), so reusing the
/// staged copy across iterations is floating-point exact.
/// gis-analyze: no_alloc
fn stage_lockstep_values(
    program: &[StampOp],
    mosfet_evals: &[MosfetEvalSpec],
    circuits: &[&Circuit],
    time: f64,
    dt: Option<f64>,
    fast: bool,
    stage: &mut LockstepStage,
) {
    let lanes = circuits.len();
    let (mut ri, mut ci, mut vi, mut ii) = (0usize, 0usize, 0usize, 0usize);
    for op in program {
        match op {
            StampOp::Resistor { dev, .. } => {
                for (lane, circuit) in circuits.iter().enumerate() {
                    let Device::Resistor { resistance, .. } = &circuit.devices()[*dev as usize]
                    else {
                        unreachable!("program op desynchronized from netlist");
                    };
                    stage.res_g[ri * lanes + lane] = 1.0 / resistance;
                }
                ri += 1;
            }
            StampOp::Capacitor { dev, .. } => {
                if let Some(dt) = dt {
                    for (lane, circuit) in circuits.iter().enumerate() {
                        let Device::Capacitor { capacitance, .. } =
                            &circuit.devices()[*dev as usize]
                        else {
                            unreachable!("program op desynchronized from netlist");
                        };
                        stage.cap_geq[ci * lanes + lane] = capacitance / dt;
                    }
                }
                ci += 1;
            }
            StampOp::VoltageSource { dev, .. } => {
                for (lane, circuit) in circuits.iter().enumerate() {
                    let Device::VoltageSource { waveform, .. } = &circuit.devices()[*dev as usize]
                    else {
                        unreachable!("program op desynchronized from netlist");
                    };
                    stage.vsrc_v[vi * lanes + lane] = waveform.value_at(time);
                }
                vi += 1;
            }
            StampOp::CurrentSource { dev, .. } => {
                for (lane, circuit) in circuits.iter().enumerate() {
                    let Device::CurrentSource { waveform, .. } = &circuit.devices()[*dev as usize]
                    else {
                        unreachable!("program op desynchronized from netlist");
                    };
                    stage.isrc_i[ii * lanes + lane] = waveform.value_at(time);
                }
                ii += 1;
            }
            StampOp::Mosfet { eval, .. } => {
                let e = *eval as usize;
                let spec = &mosfet_evals[e];
                for (lane, circuit) in circuits.iter().enumerate() {
                    let Device::Mosfet { params, .. } = &circuit.devices()[spec.dev as usize]
                    else {
                        unreachable!("program op desynchronized from netlist");
                    };
                    stage.params[e * lanes + lane] = *params;
                    debug_assert_eq!(
                        params.polarity,
                        stage.params[e * lanes].polarity,
                        "lockstep lanes share device polarity (topology contract)"
                    );
                    if fast {
                        stage.vth0[e * lanes + lane] = params.vth0;
                        stage.k_prime[e * lanes + lane] = params.k_prime;
                        stage.lambda[e * lanes + lane] = params.lambda;
                        // Same association as the scalar model:
                        // `2.0 * (n · φ_t)`.
                        stage.two_n_phi_t[e * lanes + lane] =
                            2.0 * (params.subthreshold_slope * THERMAL_VOLTAGE);
                        stage.body_effect[e * lanes + lane] = params.body_effect;
                    }
                }
                stage.sign[e] = stage.params[e * lanes].polarity.sign();
            }
        }
    }
}

/// The lane-batched exact MOSFET evaluation pass of the lockstep kernel: runs
/// every transistor of every running lane against the lane's iterate, reading
/// the staged model cards instead of the per-lane `Device` enums. The
/// per-lane arithmetic is exactly [`evaluate_mosfets`]'s (same normalization,
/// same model call, same `ieq`), evaluated in the same per-lane device order —
/// lanes never mix, so each lane's scratch is bit-identical to a scalar pass
/// over that lane's circuit.
#[inline]
/// gis-analyze: no_alloc
fn evaluate_mosfets_lockstep_exact(
    evals: &[MosfetEvalSpec],
    staged: &LockstepStage,
    x: &[f64],
    running: &[bool],
    scratch: &mut [MosfetScratch],
    lanes: usize,
) {
    for (e, spec) in evals.iter().enumerate() {
        for (lane, &run) in running.iter().enumerate() {
            if !run {
                continue;
            }
            let params = &staged.params[e * lanes + lane];
            let volt = |i: u32| {
                if i == NONE_SLOT {
                    0.0
                } else {
                    x[i as usize * lanes + lane]
                }
            };
            let sign = params.polarity.sign();
            let vd = volt(spec.d);
            let vg = volt(spec.g);
            let vs = volt(spec.s);
            let vb = volt(spec.b);

            let (nvd, nvg, nvs, nvb) = (sign * vd, sign * vg, sign * vs, sign * vb);
            let swapped = nvd < nvs;
            let (evd, evs) = if swapped { (nvs, nvd) } else { (nvd, nvs) };
            let vgs = nvg - evs;
            let vds = evd - evs;
            let vbs = nvb - evs;
            let op_point = params.evaluate_normalized(vgs, vds, vbs);
            let ieq =
                sign * (op_point.id - op_point.gm * vgs - op_point.gds * vds - op_point.gmb * vbs);

            let total = op_point.gm + op_point.gds + op_point.gmb;
            let out = &mut scratch[e * lanes + lane];
            out.values = [
                op_point.gm,
                op_point.gds,
                op_point.gmb,
                -total,
                -op_point.gm,
                -op_point.gds,
                -op_point.gmb,
                total,
            ];
            out.ieq = ieq;
            out.swapped = swapped;
        }
    }
}

/// The fast-lane MOSFET evaluation pass: every transistor of *all* lanes
/// evaluated through the branch-free lane-group model
/// ([`evaluate_normalized_fast_lanes`]) in one straight-line pass whose
/// transcendentals vectorize across lanes. Deliberately not bit-identical to
/// the exact path; only reachable through the opt-in
/// [`crate::TransientKernel::Fast`], which is calibration-gated at the bench
/// layer.
#[inline]
/// gis-analyze: no_alloc
fn evaluate_mosfets_lockstep_fast<const L: usize>(
    evals: &[MosfetEvalSpec],
    staged: &LockstepStage,
    x: &[f64],
    scratch: &mut [MosfetScratch],
) {
    for (e, spec) in evals.iter().enumerate() {
        let volt = |i: u32| {
            if i == NONE_SLOT {
                [0.0; L]
            } else {
                lane_group::<L>(x, i as usize * L)
            }
        };
        let sign = staged.sign[e];
        let vd = volt(spec.d);
        let vg = volt(spec.g);
        let vs = volt(spec.s);
        let vb = volt(spec.b);

        let mut swapped = [false; L];
        let mut vgs = [0.0; L];
        let mut vds = [0.0; L];
        let mut vbs = [0.0; L];
        for lane in 0..L {
            let (nvd, nvg, nvs, nvb) = (
                sign * vd[lane],
                sign * vg[lane],
                sign * vs[lane],
                sign * vb[lane],
            );
            let sw = nvd < nvs;
            swapped[lane] = sw;
            let evd = if sw { nvs } else { nvd };
            let evs = if sw { nvd } else { nvs };
            vgs[lane] = nvg - evs;
            vds[lane] = evd - evs;
            vbs[lane] = nvb - evs;
        }
        let op = evaluate_normalized_fast_lanes::<L>(
            lane_group::<L>(&staged.vth0, e * L),
            lane_group::<L>(&staged.k_prime, e * L),
            lane_group::<L>(&staged.lambda, e * L),
            lane_group::<L>(&staged.two_n_phi_t, e * L),
            lane_group::<L>(&staged.body_effect, e * L),
            vgs,
            vds,
            vbs,
        );
        for lane in 0..L {
            let ieq = sign
                * (op.id[lane]
                    - op.gm[lane] * vgs[lane]
                    - op.gds[lane] * vds[lane]
                    - op.gmb[lane] * vbs[lane]);
            let total = op.gm[lane] + op.gds[lane] + op.gmb[lane];
            let out = &mut scratch[e * L + lane];
            out.values = [
                op.gm[lane],
                op.gds[lane],
                op.gmb[lane],
                -total,
                -op.gm[lane],
                -op.gds[lane],
                -op.gmb[lane],
                total,
            ];
            out.ieq = ieq;
            out.swapped = swapped[lane];
        }
    }
}

/// Replays a compiled stamp program for the lockstep kernel from the staged
/// device values — dispatching to the const-lane-count monomorphization so
/// every lane-group load/add vectorizes.
#[allow(clippy::too_many_arguments)]
#[inline]
/// gis-analyze: no_alloc
fn execute_program_lockstep(
    program: &[StampOp],
    mosfet_evals: &[MosfetEvalSpec],
    mosfet_scratch: &mut [MosfetScratch],
    staged: &LockstepStage,
    running: &[bool],
    num_node_unknowns: usize,
    x: &[f64],
    dynamic: Option<&LockstepDynamicState<'_>>,
    lu: &mut LockstepLu,
    z: &mut [f64],
    fast: bool,
) {
    lanes_dispatch!(
        running.len(),
        execute_program_lockstep_const(
            program,
            mosfet_evals,
            mosfet_scratch,
            staged,
            running,
            num_node_unknowns,
            x,
            dynamic,
            lu,
            z,
            fast,
        )
    )
}

/// The const-lane-count stamp replay of the lockstep kernel. Every lane of
/// every device is stamped unconditionally from the staged values — the
/// factorization ignores non-running lanes, and stamping all lanes as
/// lane-wide vector adds is cheaper than branching per lane. Per running lane
/// this performs exactly [`execute_program`]'s floating-point operations in
/// exactly its order — lane-group adds are elementwise and never mix or
/// reorder a lane's additions — so the assembled lane systems are
/// bit-identical to scalar assembly of each lane's circuit.
#[allow(clippy::too_many_arguments)]
#[inline]
/// gis-analyze: no_alloc
fn execute_program_lockstep_const<const L: usize>(
    program: &[StampOp],
    mosfet_evals: &[MosfetEvalSpec],
    mosfet_scratch: &mut [MosfetScratch],
    staged: &LockstepStage,
    running: &[bool],
    num_node_unknowns: usize,
    x: &[f64],
    dynamic: Option<&LockstepDynamicState<'_>>,
    lu: &mut LockstepLu,
    z: &mut [f64],
    fast: bool,
) {
    if fast {
        evaluate_mosfets_lockstep_fast::<L>(mosfet_evals, staged, x, mosfet_scratch);
    } else {
        evaluate_mosfets_lockstep_exact(mosfet_evals, staged, x, running, mosfet_scratch, L);
    }
    let n = (z.len() / L) as u32;
    // GMIN from every non-ground node to ground, all lanes at once.
    for i in 0..num_node_unknowns as u32 {
        lu.add_group_to_slot::<L>(i * n + i, [GMIN; L]);
    }
    let stamp = |lu: &mut LockstepLu, slot: u32, v: [f64; L]| {
        if slot != NONE_SLOT {
            lu.add_group_to_slot::<L>(slot, v);
        }
    };
    let rhs = |z: &mut [f64], row: u32, v: [f64; L]| {
        if row != NONE_SLOT {
            let base = row as usize * L;
            for lane in 0..L {
                z[base + lane] += v[lane];
            }
        }
    };
    let neg = |v: [f64; L]| {
        let mut out = v;
        for slot in &mut out {
            *slot = -*slot;
        }
        out
    };
    let (mut ri, mut ci, mut vi, mut ii) = (0usize, 0usize, 0usize, 0usize);
    for op in program {
        match op {
            StampOp::Resistor { diag, cross, .. } => {
                let g = lane_group::<L>(&staged.res_g, ri * L);
                ri += 1;
                stamp(lu, diag[0], g);
                stamp(lu, diag[1], g);
                let ng = neg(g);
                stamp(lu, cross[0], ng);
                stamp(lu, cross[1], ng);
            }
            StampOp::Capacitor {
                node_a,
                node_b,
                diag,
                cross,
                rhs_into,
                rhs_from,
                ..
            } => {
                let k = ci;
                ci += 1;
                if let Some(state) = dynamic {
                    // Backward-Euler companion model.
                    let geq = lane_group::<L>(&staged.cap_geq, k * L);
                    let va = lane_group::<L>(state.previous_node_voltages, *node_a as usize * L);
                    let vb = lane_group::<L>(state.previous_node_voltages, *node_b as usize * L);
                    stamp(lu, diag[0], geq);
                    stamp(lu, diag[1], geq);
                    let ngeq = neg(geq);
                    stamp(lu, cross[0], ngeq);
                    stamp(lu, cross[1], ngeq);
                    let mut current = [0.0; L];
                    for lane in 0..L {
                        current[lane] = geq[lane] * (va[lane] - vb[lane]);
                    }
                    rhs(z, *rhs_into, current);
                    rhs(z, *rhs_from, neg(current));
                }
                // DC: capacitor is an open circuit — nothing to stamp.
            }
            StampOp::VoltageSource {
                row, plus, minus, ..
            } => {
                let v = lane_group::<L>(&staged.vsrc_v, vi * L);
                vi += 1;
                stamp(lu, plus[0], [1.0; L]);
                stamp(lu, plus[1], [1.0; L]);
                stamp(lu, minus[0], [-1.0; L]);
                stamp(lu, minus[1], [-1.0; L]);
                let base = *row as usize * L;
                z[base..base + L].copy_from_slice(&v);
            }
            StampOp::CurrentSource {
                rhs_into, rhs_from, ..
            } => {
                let current = lane_group::<L>(&staged.isrc_i, ii * L);
                ii += 1;
                rhs(z, *rhs_into, current);
                rhs(z, *rhs_from, neg(current));
            }
            StampOp::Mosfet {
                eval,
                slots_normal,
                slots_swapped,
                rhs_normal,
                rhs_swapped,
            } => {
                // Per-lane scatter: the swapped orientation differs per lane,
                // so the 8-slot Jacobian stamp stays a lane loop. Non-running
                // lanes stamp their (finite, possibly stale) scratch — never
                // factored, so harmless.
                for lane in 0..L {
                    let result = &mosfet_scratch[*eval as usize * L + lane];
                    let (slots, rhs_rows) = if result.swapped {
                        (slots_swapped, rhs_swapped)
                    } else {
                        (slots_normal, rhs_normal)
                    };
                    for (&slot_id, &v) in slots.iter().zip(&result.values) {
                        if slot_id != NONE_SLOT {
                            lu.add_to_slot(slot_id, lane, v);
                        }
                    }
                    if rhs_rows[0] != NONE_SLOT {
                        z[rhs_rows[0] as usize * L + lane] -= result.ieq;
                    }
                    if rhs_rows[1] != NONE_SLOT {
                        z[rhs_rows[1] as usize * L + lane] += result.ieq;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::netlist::SourceWaveform;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(2.0));
        ckt.add_resistor("R1", vin, mid, 1e3).unwrap();
        ckt.add_resistor("R2", mid, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        assert_eq!(sys.dim(), 3);
        let x = sys.dc_operating_point(None).unwrap();
        assert!((sys.node_voltage(&x, mid) - 1.0).abs() < 1e-6);
        assert!((sys.node_voltage(&x, vin) - 2.0).abs() < 1e-9);
        // Current through the source: 2 V across 2 kΩ = 1 mA, flowing out of the
        // positive terminal, so the MNA branch current is −1 mA.
        let i = sys.voltage_source_current(&x, 0).unwrap();
        assert!((i + 1e-3).abs() < 1e-6, "source current {i}");
        assert!(sys.voltage_source_current(&x, 1).is_none());
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_current_source("I1", GROUND, out, SourceWaveform::dc(1e-3));
        ckt.add_resistor("R1", out, GROUND, 2e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        assert!((sys.node_voltage(&x, out) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_common_source_amplifier_bias() {
        // NMOS with gate at 1.0 V, drain pulled to 1.0 V through 10 kΩ.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let drain = ckt.node("d");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source("VG", gate, GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("RD", vdd, drain, 10e3).unwrap();
        ckt.add_mosfet("M1", drain, gate, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let vd = sys.node_voltage(&x, drain);
        // The transistor is on, so the drain must be pulled well below VDD but
        // stay above ground.
        assert!(vd > 0.0 && vd < 0.9, "drain voltage {vd}");
        // KCL check: resistor current equals transistor current.
        let i_r = (1.0 - vd) / 10e3;
        let op = MosfetParams::nmos_45nm().evaluate_normalized(1.0, vd, 0.0);
        assert!(
            (i_r - op.id).abs() / i_r < 0.02,
            "KCL violated: {i_r} vs {}",
            op.id
        );
    }

    #[test]
    fn pmos_pull_up() {
        // PMOS source at VDD, gate at 0: device on, pulls output high through itself
        // against a resistor to ground.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_mosfet("MP", out, GROUND, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_resistor("RL", out, GROUND, 100e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let vout = sys.node_voltage(&x, out);
        assert!(vout > 0.8, "PMOS failed to pull up: {vout}");
    }

    #[test]
    fn cmos_inverter_transfer() {
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let input = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
            ckt.add_voltage_source("VIN", input, GROUND, SourceWaveform::dc(vin));
            ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
                .unwrap();
            ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
                .unwrap();
            ckt
        };
        let solve = |vin: f64, guess: f64| {
            let ckt = build(vin);
            let sys = MnaSystem::new(&ckt).unwrap();
            let init = vec![0.0, 1.0, vin, guess];
            let x = sys.dc_operating_point(Some(&init)).unwrap();
            sys.node_voltage(&x, 3)
        };
        let high = solve(0.0, 1.0);
        let low = solve(1.0, 0.0);
        assert!(high > 0.95, "inverter output should be high, got {high}");
        assert!(low < 0.05, "inverter output should be low, got {low}");
    }

    #[test]
    fn empty_circuit_rejected() {
        let ckt = Circuit::new();
        assert!(MnaSystem::new(&ckt).is_err());
    }

    #[test]
    fn dangling_node_rejected() {
        let mut ckt = Circuit::new();
        ckt.add_voltage_source("V", 3, GROUND, SourceWaveform::dc(1.0));
        assert!(MnaSystem::new(&ckt).is_err());
    }

    #[test]
    fn node_voltages_expansion() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V", a, GROUND, SourceWaveform::dc(0.7));
        ckt.add_resistor("R", a, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let x = sys.dc_operating_point(None).unwrap();
        let v = sys.node_voltages(&x);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 0.0);
        assert!((v[1] - 0.7).abs() < 1e-9);
    }

    /// Solves the same system with both kernels and asserts bit-identity.
    fn assert_kernels_agree(ckt: &Circuit, init: Option<&[f64]>) {
        let sys = MnaSystem::new(ckt).unwrap();
        let mut x0 = Vector::zeros(sys.dim());
        if let Some(init) = init {
            for node in 1..sys.circuit().num_nodes().min(init.len()) {
                x0[node - 1] = init[node];
            }
        }
        let (dense_x, dense_iters) = sys
            .solve_newton_counted(x0.clone(), 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
            .unwrap();
        let mut ws = SimulationWorkspace::new();
        ws.bind(&sys);
        ws.set_state(x0.as_slice());
        let sparse_iters = sys
            .solve_newton_in(&mut ws, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)
            .unwrap();
        assert_eq!(dense_iters, sparse_iters);
        for i in 0..sys.dim() {
            assert_eq!(
                dense_x[i].to_bits(),
                ws.state()[i].to_bits(),
                "kernel divergence at unknown {i}"
            );
        }
    }

    #[test]
    fn sparse_kernel_matches_dense_on_dc_solves() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source("VIN", input, GROUND, SourceWaveform::dc(0.45));
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        assert_kernels_agree(&ckt, Some(&[0.0, 1.0, 0.45, 0.5]));

        let mut divider = Circuit::new();
        let a = divider.node("a");
        let b = divider.node("b");
        divider.add_voltage_source("V", a, GROUND, SourceWaveform::dc(1.8));
        divider.add_resistor("R1", a, b, 4.7e3).unwrap();
        divider.add_resistor("R2", b, GROUND, 10e3).unwrap();
        assert_kernels_agree(&divider, None);
    }

    #[test]
    fn workspace_rebinds_on_topology_change_only() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V", a, GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R", a, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let mut ws = SimulationWorkspace::new();
        assert!(ws.symbolic().is_none());
        ws.bind(&sys);
        let nnz = ws.symbolic().unwrap().stamp_nnz();
        assert!(nnz > 0);
        // Value-only change: same plan (binding is a no-op and keeps state).
        ws.set_state(&[0.0, 0.123]);
        let mut changed = ckt.clone();
        if let Device::Resistor { resistance, .. } = &mut changed.devices_mut()[1] {
            *resistance = 2e3;
        }
        let sys2 = MnaSystem::new(&changed).unwrap();
        assert!(ws.matches(&sys2));
        ws.bind(&sys2);
        assert_eq!(ws.state()[1], 0.123);
        // Topology change: rebind.
        let mut grown = ckt.clone();
        let b = grown.node("b");
        grown.add_resistor("R2", a, b, 1e3).unwrap();
        grown.add_capacitor("C", b, GROUND, 1e-12).unwrap();
        let sys3 = MnaSystem::new(&grown).unwrap();
        assert!(!ws.matches(&sys3));
        ws.bind(&sys3);
        assert_eq!(ws.state().len(), sys3.dim());
    }

    #[test]
    fn workspace_pattern_is_genuinely_sparse() {
        // A chain of resistors produces a tridiagonal-ish pattern; the fill
        // bound must stay far below dense.
        let mut ckt = Circuit::new();
        let first = ckt.node("n0");
        ckt.add_voltage_source("V", first, GROUND, SourceWaveform::dc(1.0));
        let mut prev = first;
        for i in 1..12 {
            let next = ckt.node(&format!("n{i}"));
            ckt.add_resistor(&format!("R{i}"), prev, next, 1e3).unwrap();
            prev = next;
        }
        ckt.add_resistor("Rend", prev, GROUND, 1e3).unwrap();
        let sys = MnaSystem::new(&ckt).unwrap();
        let mut ws = SimulationWorkspace::new();
        ws.bind(&sys);
        let sym = ws.symbolic().unwrap();
        assert!(
            sym.fill_fraction() < 0.5,
            "chain circuit should be sparse, fill fraction {}",
            sym.fill_fraction()
        );
        assert!(sym.fill_nnz() >= sym.stamp_nnz());
        // And the kernels still agree on it.
        assert_kernels_agree(&ckt, None);
    }
}
