//! Sampled waveforms and SPICE-style `.measure` operations.
//!
//! Two representations share one set of measurement algorithms:
//!
//! * [`Waveform`] — an owning waveform whose time axis is an `Arc<[f64]>`, so
//!   the many waveforms extracted from one transient share a single time-axis
//!   allocation instead of cloning it per node;
//! * [`WaveformView`] — a zero-copy borrowed view used on the metric hot path
//!   (the SRAM sessions measure thousands of transients per second and never
//!   need an owned copy).

use crate::error::CircuitError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossingDirection {
    /// Signal passes the level going up.
    Rising,
    /// Signal passes the level going down.
    Falling,
    /// Either direction counts.
    Either,
}

/// A sampled signal: strictly increasing time points with one value each.
///
/// ```
/// use gis_circuit::{Waveform, CrossingDirection};
///
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]).unwrap();
/// let t = w.crossing_time(0.5, CrossingDirection::Rising, 0.0).unwrap();
/// assert!((t - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    times: Arc<[f64]>,
    values: Vec<f64>,
}

/// Validates parallel time/value axes for waveform construction.
fn validate_samples(times: &[f64], values: &[f64]) -> Result<(), CircuitError> {
    if times.is_empty() || times.len() != values.len() {
        return Err(CircuitError::MeasurementFailed(format!(
            "waveform needs equal, non-zero numbers of times and values (got {} / {})",
            times.len(),
            values.len()
        )));
    }
    if times.windows(2).any(|w| w[1] <= w[0]) {
        return Err(CircuitError::MeasurementFailed(
            "waveform times must be strictly increasing".to_string(),
        ));
    }
    Ok(())
}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if the vectors are empty,
    /// have different lengths, or the times are not strictly increasing.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Result<Self, CircuitError> {
        Waveform::from_shared(times.into(), values)
    }

    /// Creates a waveform that shares an existing time axis (no copy of
    /// `times`). This is how [`crate::TransientResult::waveform`] hands every
    /// node's waveform the same time-axis allocation.
    ///
    /// # Errors
    ///
    /// See [`Waveform::from_samples`].
    pub fn from_shared(times: Arc<[f64]>, values: Vec<f64>) -> Result<Self, CircuitError> {
        validate_samples(&times, &values)?;
        Ok(Waveform { times, values })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the waveform has no samples (never true for a
    /// successfully constructed waveform).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sampled time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The shared time axis (cheap to clone into another waveform).
    pub fn shared_times(&self) -> Arc<[f64]> {
        Arc::clone(&self.times)
    }

    /// Sampled values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// A zero-copy view of this waveform.
    pub fn view(&self) -> WaveformView<'_> {
        WaveformView {
            times: &self.times,
            values: &self.values,
        }
    }

    /// First time point.
    pub fn start_time(&self) -> f64 {
        self.times[0]
    }

    /// Last time point.
    pub fn end_time(&self) -> f64 {
        self.view().end_time()
    }

    /// Value at the final time point.
    pub fn final_value(&self) -> f64 {
        self.view().final_value()
    }

    /// Minimum value over the whole waveform.
    pub fn min_value(&self) -> f64 {
        self.view().min_value()
    }

    /// Maximum value over the whole waveform.
    pub fn max_value(&self) -> f64 {
        self.view().max_value()
    }

    /// Linearly interpolated value at time `t`. Clamps to the first/last sample
    /// outside the sampled range.
    pub fn value_at(&self, t: f64) -> f64 {
        self.view().value_at(t)
    }

    /// Time of the first crossing of `level` in the given `direction` at or
    /// after `after` (linear interpolation between samples).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if no such crossing exists.
    pub fn crossing_time(
        &self,
        level: f64,
        direction: CrossingDirection,
        after: f64,
    ) -> Result<f64, CircuitError> {
        self.view().crossing_time(level, direction, after)
    }

    /// Convenience: 50%-to-50% delay between this waveform and `other`, i.e.
    /// the time from this signal crossing `level_self` to `other` crossing
    /// `level_other`, both measured at or after `after`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if either crossing is missing
    /// or the measured delay is negative.
    pub fn delay_to(
        &self,
        level_self: f64,
        other: &Waveform,
        level_other: f64,
        after: f64,
    ) -> Result<f64, CircuitError> {
        self.view()
            .delay_to(level_self, &other.view(), level_other, after)
    }
}

/// A borrowed, zero-copy waveform: the same `.measure` operations as
/// [`Waveform`], without owning (or copying) either axis.
///
/// Obtained from [`Waveform::view`] or
/// [`crate::TransientResult::waveform_view`]. The constructor does *not*
/// re-validate monotonicity — views are taken from already-validated sources
/// (a constructed [`Waveform`] or a transient result, whose time axis is
/// strictly increasing by construction).
#[derive(Debug, Clone, Copy)]
pub struct WaveformView<'a> {
    times: &'a [f64],
    values: &'a [f64],
}

impl<'a> WaveformView<'a> {
    /// Creates a view over parallel borrowed axes.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths (monotonicity is
    /// the caller's contract, see the type-level docs).
    pub fn new(times: &'a [f64], values: &'a [f64]) -> Self {
        assert!(
            !times.is_empty() && times.len() == values.len(),
            "waveform view needs equal, non-zero numbers of times and values"
        );
        WaveformView { times, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Always `false` for a constructed view.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sampled time points.
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// Sampled values.
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// First time point.
    pub fn start_time(&self) -> f64 {
        self.times[0]
    }

    /// Last time point.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn end_time(&self) -> f64 {
        *self.times.last().expect("waveform is never empty")
    }

    /// Value at the final time point.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("waveform is never empty")
    }

    /// Minimum value over the whole waveform.
    pub fn min_value(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over the whole waveform.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Linearly interpolated value at time `t`. Clamps to the first/last sample
    /// outside the sampled range.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= self.end_time() {
            return self.final_value();
        }
        // Binary search for the bracketing interval.
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("times are finite"))
        {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Time of the first crossing of `level` in the given `direction` at or
    /// after `after` (linear interpolation between samples).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if no such crossing exists.
    pub fn crossing_time(
        &self,
        level: f64,
        direction: CrossingDirection,
        after: f64,
    ) -> Result<f64, CircuitError> {
        for i in 1..self.times.len() {
            let (t0, t1) = (self.times[i - 1], self.times[i]);
            if t1 < after {
                continue;
            }
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let rising = v0 < level && v1 >= level;
            let falling = v0 > level && v1 <= level;
            let hit = match direction {
                CrossingDirection::Rising => rising,
                CrossingDirection::Falling => falling,
                CrossingDirection::Either => rising || falling,
            };
            if hit {
                let frac = if (v1 - v0).abs() < f64::MIN_POSITIVE {
                    0.0
                } else {
                    (level - v0) / (v1 - v0)
                };
                let t_cross = t0 + frac * (t1 - t0);
                if t_cross >= after {
                    return Ok(t_cross);
                }
            }
        }
        Err(CircuitError::MeasurementFailed(format!(
            "signal never crosses {level} ({direction:?}) after t = {after:.3e}s"
        )))
    }

    /// Delay from this signal crossing `level_self` to `other` crossing
    /// `level_other`, both measured at or after `after`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MeasurementFailed`] if either crossing is missing
    /// or the measured delay is negative.
    pub fn delay_to(
        &self,
        level_self: f64,
        other: &WaveformView<'_>,
        level_other: f64,
        after: f64,
    ) -> Result<f64, CircuitError> {
        let t0 = self.crossing_time(level_self, CrossingDirection::Either, after)?;
        let t1 = other.crossing_time(level_other, CrossingDirection::Either, t0)?;
        if t1 < t0 {
            return Err(CircuitError::MeasurementFailed(
                "negative delay measured".to_string(),
            ));
        }
        Ok(t1 - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0, 4.0], vec![0.0, 1.0, 2.0, 1.0, 0.0])
            .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Waveform::from_samples(vec![], vec![]).is_err());
        assert!(Waveform::from_samples(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Waveform::from_samples(vec![1.0, 0.5], vec![1.0, 2.0]).is_err());
        let w = ramp();
        assert_eq!(w.len(), 5);
        assert!(!w.is_empty());
        assert_eq!(w.times().len(), w.values().len());
    }

    #[test]
    fn basic_accessors() {
        let w = ramp();
        assert_eq!(w.start_time(), 0.0);
        assert_eq!(w.end_time(), 4.0);
        assert_eq!(w.final_value(), 0.0);
        assert_eq!(w.min_value(), 0.0);
        assert_eq!(w.max_value(), 2.0);
    }

    #[test]
    fn interpolation() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 0.5);
        assert_eq!(w.value_at(1.0), 1.0);
        assert_eq!(w.value_at(2.5), 1.5);
        assert_eq!(w.value_at(9.0), 0.0);
    }

    #[test]
    fn crossings() {
        let w = ramp();
        let t = w
            .crossing_time(1.5, CrossingDirection::Rising, 0.0)
            .unwrap();
        assert!((t - 1.5).abs() < 1e-12);
        let t = w
            .crossing_time(1.5, CrossingDirection::Falling, 0.0)
            .unwrap();
        assert!((t - 2.5).abs() < 1e-12);
        let t = w
            .crossing_time(1.5, CrossingDirection::Either, 2.0)
            .unwrap();
        assert!((t - 2.5).abs() < 1e-12);
        assert!(w
            .crossing_time(5.0, CrossingDirection::Rising, 0.0)
            .is_err());
        assert!(w
            .crossing_time(1.5, CrossingDirection::Rising, 3.0)
            .is_err());
    }

    #[test]
    fn delay_measurement() {
        let a = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let b = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 1.0]).unwrap();
        let d = a.delay_to(0.5, &b, 0.5, 0.0).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        // Missing crossing propagates an error.
        let flat = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 0.0]).unwrap();
        assert!(a.delay_to(0.5, &flat, 0.5, 0.0).is_err());
    }

    #[test]
    fn shared_time_axis_is_one_allocation() {
        let w = ramp();
        let sibling = Waveform::from_shared(w.shared_times(), vec![5.0; 5]).unwrap();
        assert!(Arc::ptr_eq(&w.times, &sibling.times));
        assert_eq!(sibling.max_value(), 5.0);
        // from_shared still validates the value axis length.
        assert!(Waveform::from_shared(w.shared_times(), vec![1.0; 3]).is_err());
    }

    #[test]
    fn views_measure_identically_to_owned_waveforms() {
        let w = ramp();
        let v = w.view();
        assert_eq!(v.len(), w.len());
        assert!(!v.is_empty());
        assert_eq!(v.start_time(), w.start_time());
        assert_eq!(v.end_time(), w.end_time());
        assert_eq!(v.min_value(), w.min_value());
        assert_eq!(v.max_value(), w.max_value());
        assert_eq!(v.final_value(), w.final_value());
        for t in [-1.0, 0.3, 1.7, 2.5, 6.0] {
            assert_eq!(v.value_at(t).to_bits(), w.value_at(t).to_bits());
        }
        assert_eq!(
            v.crossing_time(1.5, CrossingDirection::Falling, 0.0)
                .unwrap()
                .to_bits(),
            w.crossing_time(1.5, CrossingDirection::Falling, 0.0)
                .unwrap()
                .to_bits()
        );
        let other = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 0.0, 2.0]).unwrap();
        assert_eq!(
            v.delay_to(0.5, &other.view(), 1.0, 0.0).unwrap().to_bits(),
            w.delay_to(0.5, &other, 1.0, 0.0).unwrap().to_bits()
        );
        assert_eq!(v.times(), w.times());
        assert_eq!(v.values(), w.values());
    }

    #[test]
    #[should_panic(expected = "equal, non-zero")]
    fn view_construction_validates_lengths() {
        let _ = WaveformView::new(&[0.0, 1.0], &[1.0]);
    }

    #[test]
    fn serde_round_trip_preserves_shared_times() {
        let w = ramp();
        let json = serde_json::to_string(&w).unwrap();
        let back: Waveform = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
    }
}
