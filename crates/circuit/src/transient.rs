//! Fixed-step transient analysis with backward-Euler integration.
//!
//! The SRAM dynamic metrics (read access time, write delay) are measured on
//! nanosecond-scale transients of a dozen-node circuit. A fixed, user-chosen
//! time step with backward Euler is robust (strongly stable, no ringing from
//! the integrator) and — because the statistical layer compares *relative*
//! behaviour across millions of samples — more important than a higher-order
//! integrator is that every sample sees the identical discretization.
//!
//! # Kernels
//!
//! [`transient_analysis`] runs on the sparse, allocation-free kernel (see
//! [`crate::mna::SimulationWorkspace`]); [`transient_analysis_with`] is the
//! Monte-Carlo hot path, reusing a caller-owned workspace across samples so
//! even the per-call symbolic analysis disappears.
//! [`transient_analysis_dense`] is the dense reference kernel kept for golden
//! tests; all paths produce bit-identical results.

use crate::error::CircuitError;
use crate::mna::{DynamicState, MnaSystem, SimulationWorkspace, MAX_NEWTON_ITERATIONS};
use crate::netlist::{Circuit, NodeId};
use crate::waveform::{Waveform, WaveformView};
use gis_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which solver kernel a transient runs on. Both produce bit-identical
/// results; [`TransientKernel::Sparse`] is the production default and
/// [`TransientKernel::Dense`] is the allocation-heavy reference kept for
/// end-to-end verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransientKernel {
    /// Sparse, workspace-reusing kernel (default).
    Sparse,
    /// Dense reference kernel.
    Dense,
}

impl TransientKernel {
    /// Stable name used in benchmark artifacts ("sparse"/"dense").
    pub fn name(self) -> &'static str {
        match self {
            TransientKernel::Sparse => "sparse",
            TransientKernel::Dense => "dense",
        }
    }
}

/// Configuration of a transient analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Total simulated time in seconds.
    pub stop_time: f64,
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Initial node voltages indexed by node id (missing/short vectors are
    /// zero-padded). When `None`, the initial state is the DC operating point.
    pub initial_conditions: Option<Vec<f64>>,
    /// Maximum Newton iterations per time point.
    pub max_newton_iterations: usize,
}

impl TransientConfig {
    /// Creates a configuration with the given stop time and step, starting from
    /// the DC operating point.
    pub fn new(stop_time: f64, time_step: f64) -> Self {
        TransientConfig {
            stop_time,
            time_step,
            initial_conditions: None,
            max_newton_iterations: MAX_NEWTON_ITERATIONS,
        }
    }

    /// Starts the transient from explicit initial node voltages (SPICE `uic`).
    pub fn with_initial_conditions(mut self, node_voltages: Vec<f64>) -> Self {
        self.initial_conditions = Some(node_voltages);
        self
    }

    /// Validates the configuration.
    fn validate(&self) -> Result<(), CircuitError> {
        if !(self.stop_time > 0.0) || !self.stop_time.is_finite() {
            return Err(CircuitError::InvalidAnalysis(format!(
                "stop time must be positive and finite, got {}",
                self.stop_time
            )));
        }
        if !(self.time_step > 0.0) || self.time_step > self.stop_time {
            return Err(CircuitError::InvalidAnalysis(format!(
                "time step must be positive and no larger than the stop time, got {}",
                self.time_step
            )));
        }
        if self.max_newton_iterations == 0 {
            return Err(CircuitError::InvalidAnalysis(
                "max_newton_iterations must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Result of a transient analysis: node voltages over time.
///
/// The time axis is stored once behind an [`Arc`] and shared by every
/// [`Waveform`] extracted from the result; [`TransientResult::waveform_view`]
/// avoids even the value copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    times: Arc<[f64]>,
    /// `node_voltages[node][step]`.
    node_voltages: Vec<Vec<f64>>,
    newton_iterations_total: usize,
}

impl TransientResult {
    /// Simulated time points (including `t = 0`).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored time points.
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    /// Total Newton iterations spent across all time points (a cheap proxy for
    /// simulation cost reported by the benchmark harness). Identical between
    /// the sparse and dense kernels.
    pub fn newton_iterations_total(&self) -> usize {
        self.newton_iterations_total
    }

    /// Voltage samples of `node` over time.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn node_voltage_samples(&self, node: NodeId) -> Result<&[f64], CircuitError> {
        self.node_voltages
            .get(node)
            .map(|v| v.as_slice())
            .ok_or(CircuitError::UnknownNode {
                node,
                num_nodes: self.node_voltages.len(),
            })
    }

    /// Builds a [`Waveform`] for `node`. The returned waveform shares this
    /// result's time axis (no time-vector copy); only the values are cloned.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn waveform(&self, node: NodeId) -> Result<Waveform, CircuitError> {
        let values = self.node_voltage_samples(node)?.to_vec();
        Waveform::from_shared(Arc::clone(&self.times), values)
    }

    /// A zero-copy measurement view of `node`'s waveform — the hot path for
    /// metric extraction (nothing is cloned).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn waveform_view(&self, node: NodeId) -> Result<WaveformView<'_>, CircuitError> {
        let values = self.node_voltage_samples(node)?;
        Ok(WaveformView::new(&self.times, values))
    }

    /// Final voltage of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn final_voltage(&self, node: NodeId) -> Result<f64, CircuitError> {
        Ok(*self
            .node_voltage_samples(node)?
            .last()
            .expect("transient result always contains t = 0"))
    }
}

/// Runs a backward-Euler transient analysis of `circuit` on the sparse kernel.
///
/// # Errors
///
/// * [`CircuitError::InvalidAnalysis`] for an inconsistent configuration.
/// * [`CircuitError::NewtonDidNotConverge`] / [`CircuitError::SingularSystem`]
///   if a time point cannot be solved.
///
/// # Examples
///
/// ```
/// use gis_circuit::{Circuit, SourceWaveform, TransientConfig, transient_analysis, GROUND};
///
/// # fn main() -> Result<(), gis_circuit::CircuitError> {
/// // RC low-pass step response.
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
/// ckt.add_resistor("R1", vin, out, 1e3)?;
/// ckt.add_capacitor("C1", out, GROUND, 1e-9)?;
/// let cfg = TransientConfig::new(5e-6, 10e-9).with_initial_conditions(vec![0.0, 1.0, 0.0]);
/// let result = transient_analysis(&ckt, &cfg)?;
/// let v_end = result.final_voltage(out)?;
/// assert!((v_end - 1.0).abs() < 1e-2); // fully charged after 5 time constants
/// # Ok(())
/// # }
/// ```
pub fn transient_analysis(
    circuit: &Circuit,
    config: &TransientConfig,
) -> Result<TransientResult, CircuitError> {
    let mut workspace = SimulationWorkspace::new();
    transient_analysis_with(circuit, config, &mut workspace)
}

/// Runs a transient analysis on the sparse kernel, reusing `workspace`.
///
/// This is the Monte-Carlo hot path: when the same netlist topology is
/// simulated repeatedly with different device values (the SRAM sessions), the
/// workspace's symbolic LU plan and every numeric buffer carry over between
/// calls, leaving only the result storage to allocate. Bit-identical to
/// [`transient_analysis`] and [`transient_analysis_dense`].
///
/// # Errors
///
/// See [`transient_analysis`].
pub fn transient_analysis_with(
    circuit: &Circuit,
    config: &TransientConfig,
    workspace: &mut SimulationWorkspace,
) -> Result<TransientResult, CircuitError> {
    config.validate()?;
    let system = MnaSystem::new(circuit)?;
    let num_nodes = circuit.num_nodes();
    workspace.bind(&system);

    // Initial state.
    match &config.initial_conditions {
        Some(ic) => {
            let mut x0 = vec![0.0; system.dim()];
            for node in 1..num_nodes {
                if node < ic.len() {
                    x0[node - 1] = ic[node];
                }
            }
            // Solve the t = 0 system with the capacitors holding their initial
            // voltages (treated as ideal voltage history) so branch currents of
            // the voltage sources start consistent.
            workspace.set_state(&x0);
        }
        None => {
            workspace.set_state(&[]);
            system.solve_newton_in(workspace, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)?;
        }
    }

    let num_steps = (config.stop_time / config.time_step).ceil() as usize; // gis-analyze: allow(float-cast, step count from ceil of validated positive durations)
    let mut times = Vec::with_capacity(num_steps + 1);
    let mut node_voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(num_steps + 1); num_nodes];

    let record = |t: f64, voltages: &[f64], times: &mut Vec<f64>, store: &mut Vec<Vec<f64>>| {
        times.push(t);
        for (node, value) in voltages.iter().enumerate() {
            store[node].push(*value);
        }
    };

    let mut previous = vec![0.0; num_nodes];
    system.node_voltages_into(workspace.state(), &mut previous);
    // If explicit initial conditions were given they take precedence over the
    // (zero-filled) solution vector for the recorded t = 0 point.
    if let Some(ic) = &config.initial_conditions {
        for node in 0..num_nodes {
            if node < ic.len() {
                previous[node] = ic[node];
            }
        }
    }
    record(0.0, &previous, &mut times, &mut node_voltages);

    let mut newton_total = 0usize;
    for step in 1..=num_steps {
        let t = (step as f64 * config.time_step).min(config.stop_time);
        let dynamic = DynamicState {
            previous_node_voltages: &previous,
            dt: config.time_step,
        };
        newton_total += system.solve_newton_prebound(
            workspace,
            t,
            Some(&dynamic),
            "transient",
            config.max_newton_iterations,
        )?;
        system.node_voltages_into(workspace.state(), &mut previous);
        record(t, &previous, &mut times, &mut node_voltages);
        if t >= config.stop_time {
            break;
        }
    }

    Ok(TransientResult {
        times: times.into(),
        node_voltages,
        newton_iterations_total: newton_total,
    })
}

/// Runs a transient analysis on the dense reference kernel.
///
/// Allocates fresh dense systems every Newton iteration; kept as the golden
/// reference the sparse kernel is validated against (and selectable through
/// the SRAM layer for end-to-end verification). Bit-identical to
/// [`transient_analysis`].
///
/// # Errors
///
/// See [`transient_analysis`].
pub fn transient_analysis_dense(
    circuit: &Circuit,
    config: &TransientConfig,
) -> Result<TransientResult, CircuitError> {
    config.validate()?;
    let system = MnaSystem::new(circuit)?;
    let num_nodes = circuit.num_nodes();

    // Initial state.
    let x0 = match &config.initial_conditions {
        Some(ic) => {
            let mut x = Vector::zeros(system.dim());
            for node in 1..num_nodes {
                if node < ic.len() {
                    x[node - 1] = ic[node];
                }
            }
            x
        }
        None => system.dc_operating_point(None)?,
    };

    let num_steps = (config.stop_time / config.time_step).ceil() as usize; // gis-analyze: allow(float-cast, step count from ceil of validated positive durations)
    let mut times = Vec::with_capacity(num_steps + 1);
    let mut node_voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(num_steps + 1); num_nodes];

    let record = |t: f64, voltages: &[f64], times: &mut Vec<f64>, store: &mut Vec<Vec<f64>>| {
        times.push(t);
        for (node, value) in voltages.iter().enumerate() {
            store[node].push(*value);
        }
    };

    let mut previous = system.node_voltages(&x0);
    if let Some(ic) = &config.initial_conditions {
        for node in 0..num_nodes {
            if node < ic.len() {
                previous[node] = ic[node];
            }
        }
    }
    record(0.0, &previous, &mut times, &mut node_voltages);

    let mut x = x0;
    let mut newton_total = 0usize;
    for step in 1..=num_steps {
        let t = (step as f64 * config.time_step).min(config.stop_time);
        let dynamic = DynamicState {
            previous_node_voltages: &previous,
            dt: config.time_step,
        };
        let (x_next, iterations) = system.solve_newton_counted(
            x,
            t,
            Some(&dynamic),
            "transient",
            config.max_newton_iterations,
        )?;
        x = x_next;
        newton_total += iterations;
        system.node_voltages_into(x.as_slice(), &mut previous);
        record(t, &previous, &mut times, &mut node_voltages);
        if t >= config.stop_time {
            break;
        }
    }

    Ok(TransientResult {
        times: times.into(),
        node_voltages,
        newton_iterations_total: newton_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::netlist::{SourceWaveform, GROUND};

    #[test]
    fn config_validation() {
        assert!(TransientConfig::new(0.0, 1e-9).validate().is_err());
        assert!(TransientConfig::new(1e-9, 0.0).validate().is_err());
        assert!(TransientConfig::new(1e-9, 2e-9).validate().is_err());
        let mut c = TransientConfig::new(1e-9, 1e-11);
        c.max_newton_iterations = 0;
        assert!(c.validate().is_err());
        assert!(TransientConfig::new(1e-9, 1e-11).validate().is_ok());
    }

    #[test]
    fn rc_charging_matches_analytic_solution() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, GROUND, c).unwrap();
        let cfg = TransientConfig::new(5.0 * tau, tau / 200.0)
            .with_initial_conditions(vec![0.0, 1.0, 0.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let wave = result.waveform(out).unwrap();
        for &t_check in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
            let expected = 1.0 - (-t_check / tau).exp();
            let got = wave.value_at(t_check);
            assert!(
                (got - expected).abs() < 0.01,
                "RC mismatch at t={t_check:e}: {got} vs {expected}"
            );
        }
        assert!(result.newton_iterations_total() > 0);
        assert_eq!(result.num_points(), result.times().len());
    }

    #[test]
    fn rc_discharge_from_initial_condition() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let tau = 1e-6;
        let cfg =
            TransientConfig::new(3.0 * tau, tau / 100.0).with_initial_conditions(vec![0.0, 1.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let wave = result.waveform(out).unwrap();
        let expected = (-1.0f64).exp();
        assert!((wave.value_at(tau) - expected).abs() < 0.01);
        assert!(wave.value_at(0.0) > 0.99);
    }

    #[test]
    fn inverter_switching_delay_is_positive_and_finite() {
        // CMOS inverter driving a load capacitor, input pulse.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source(
            "VIN",
            input,
            GROUND,
            SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
        );
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        ckt.add_capacitor("CL", out, GROUND, 2e-15).unwrap();
        let cfg =
            TransientConfig::new(3e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let win = result.waveform(input).unwrap();
        let wout = result.waveform(out).unwrap();
        // Output falls after the input rises.
        let delay = win.delay_to(0.5, &wout, 0.5, 0.1e-9).unwrap();
        assert!(delay > 0.0 && delay < 1e-9, "implausible delay {delay:e}");
        // Output returns high after the input falls again.
        assert!(wout.final_value() > 0.9);
    }

    #[test]
    fn unknown_node_in_result_is_an_error() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let cfg = TransientConfig::new(1e-6, 1e-8);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        assert!(result.waveform(57).is_err());
        assert!(result.waveform_view(57).is_err());
        assert!(result.final_voltage(57).is_err());
        assert!(result.node_voltage_samples(out).is_ok());
    }

    #[test]
    fn waveforms_share_the_result_time_axis() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let cfg = TransientConfig::new(1e-6, 1e-8).with_initial_conditions(vec![0.0, 0.5]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let w0 = result.waveform(0).unwrap();
        let w1 = result.waveform(out).unwrap();
        assert!(Arc::ptr_eq(&w0.shared_times(), &w1.shared_times()));
        // Views borrow the same axis without any clone.
        let v = result.waveform_view(out).unwrap();
        assert_eq!(v.times().as_ptr(), result.times().as_ptr());
        assert_eq!(v.final_value(), result.final_voltage(out).unwrap());
    }

    #[test]
    fn sparse_and_dense_transients_are_bit_identical() {
        // Inverter + load: nonlinear devices, voltage sources, capacitor.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source(
            "VIN",
            input,
            GROUND,
            SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
        );
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        ckt.add_capacitor("CL", out, GROUND, 2e-15).unwrap();
        let cfg =
            TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let sparse = transient_analysis(&ckt, &cfg).unwrap();
        let dense = transient_analysis_dense(&ckt, &cfg).unwrap();
        assert_eq!(
            sparse.newton_iterations_total(),
            dense.newton_iterations_total()
        );
        assert_eq!(sparse.times().len(), dense.times().len());
        for node in 0..ckt.num_nodes() {
            let s = sparse.node_voltage_samples(node).unwrap();
            let d = dense.node_voltage_samples(node).unwrap();
            for (i, (a, b)) in s.iter().zip(d).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "node {node} step {i}: {a:e} vs {b:e}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_across_samples_is_bit_identical() {
        // The session pattern: same topology, different device values, one
        // long-lived workspace.
        let build = |r: f64| {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
            ckt.add_resistor("R1", vin, out, r).unwrap();
            ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
            ckt
        };
        let cfg = TransientConfig::new(2e-6, 2e-8).with_initial_conditions(vec![0.0, 1.0, 0.0]);
        let mut ws = SimulationWorkspace::new();
        for r in [1e3, 3.3e3, 470.0, 1e3] {
            let ckt = build(r);
            let reused = transient_analysis_with(&ckt, &cfg, &mut ws).unwrap();
            let fresh = transient_analysis(&ckt, &cfg).unwrap();
            assert_eq!(reused, fresh, "workspace reuse diverged at R={r}");
        }
    }
}
