//! Fixed-step transient analysis with backward-Euler integration.
//!
//! The SRAM dynamic metrics (read access time, write delay) are measured on
//! nanosecond-scale transients of a dozen-node circuit. A fixed, user-chosen
//! time step with backward Euler is robust (strongly stable, no ringing from
//! the integrator) and — because the statistical layer compares *relative*
//! behaviour across millions of samples — more important than a higher-order
//! integrator is that every sample sees the identical discretization.
//!
//! # Kernels
//!
//! [`transient_analysis`] runs on the sparse, allocation-free kernel (see
//! [`crate::mna::SimulationWorkspace`]); [`transient_analysis_with`] is the
//! Monte-Carlo hot path, reusing a caller-owned workspace across samples so
//! even the per-call symbolic analysis disappears.
//! [`transient_analysis_dense`] is the dense reference kernel kept for golden
//! tests; all paths produce bit-identical results.

use crate::error::CircuitError;
use crate::mna::{
    same_topology, DynamicState, LockstepDynamicState, LockstepWorkspace, MnaSystem,
    SimulationWorkspace, MAX_LANES, MAX_NEWTON_ITERATIONS,
};
use crate::netlist::{Circuit, NodeId};
use crate::waveform::{Waveform, WaveformView};
use gis_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which solver kernel a transient runs on. [`TransientKernel::Sparse`] is
/// the scalar production default, [`TransientKernel::Dense`] the
/// allocation-heavy reference kept for end-to-end verification, and
/// [`TransientKernel::Lockstep`] the multi-sample batched kernel — all three
/// produce bit-identical results per sample. [`TransientKernel::Fast`] is the
/// lockstep kernel on approximate transcendentals: deliberately *not*
/// bit-identical, opt-in, and accepted only through the calibration gate (see
/// the bench crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransientKernel {
    /// Sparse, workspace-reusing scalar kernel (default).
    Sparse,
    /// Dense reference kernel.
    Dense,
    /// Multi-sample lockstep sparse kernel (bit-identical per lane).
    Lockstep,
    /// Lockstep kernel with fast exp/ln approximations (NOT bit-identical;
    /// calibration-gated).
    Fast,
}

impl TransientKernel {
    /// Stable name used in benchmark artifacts
    /// ("sparse"/"dense"/"lockstep"/"fast").
    pub fn name(self) -> &'static str {
        match self {
            TransientKernel::Sparse => "sparse",
            TransientKernel::Dense => "dense",
            TransientKernel::Lockstep => "lockstep",
            TransientKernel::Fast => "fast",
        }
    }

    /// `true` for the kernels whose waveforms are bit-identical to the
    /// sparse reference ([`TransientKernel::Fast`] is the only exception).
    pub fn bit_identical(self) -> bool {
        !matches!(self, TransientKernel::Fast)
    }
}

/// Configuration of a transient analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// Total simulated time in seconds.
    pub stop_time: f64,
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// Initial node voltages indexed by node id (missing/short vectors are
    /// zero-padded). When `None`, the initial state is the DC operating point.
    pub initial_conditions: Option<Vec<f64>>,
    /// Maximum Newton iterations per time point.
    pub max_newton_iterations: usize,
}

impl TransientConfig {
    /// Creates a configuration with the given stop time and step, starting from
    /// the DC operating point.
    pub fn new(stop_time: f64, time_step: f64) -> Self {
        TransientConfig {
            stop_time,
            time_step,
            initial_conditions: None,
            max_newton_iterations: MAX_NEWTON_ITERATIONS,
        }
    }

    /// Starts the transient from explicit initial node voltages (SPICE `uic`).
    pub fn with_initial_conditions(mut self, node_voltages: Vec<f64>) -> Self {
        self.initial_conditions = Some(node_voltages);
        self
    }

    /// Validates the configuration.
    fn validate(&self) -> Result<(), CircuitError> {
        if !(self.stop_time > 0.0) || !self.stop_time.is_finite() {
            return Err(CircuitError::InvalidAnalysis(format!(
                "stop time must be positive and finite, got {}",
                self.stop_time
            )));
        }
        if !(self.time_step > 0.0) || self.time_step > self.stop_time {
            return Err(CircuitError::InvalidAnalysis(format!(
                "time step must be positive and no larger than the stop time, got {}",
                self.time_step
            )));
        }
        if self.max_newton_iterations == 0 {
            return Err(CircuitError::InvalidAnalysis(
                "max_newton_iterations must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Result of a transient analysis: node voltages over time.
///
/// The time axis is stored once behind an [`Arc`] and shared by every
/// [`Waveform`] extracted from the result; [`TransientResult::waveform_view`]
/// avoids even the value copy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    times: Arc<[f64]>,
    /// `node_voltages[node][step]`.
    node_voltages: Vec<Vec<f64>>,
    newton_iterations_total: usize,
}

impl TransientResult {
    /// Simulated time points (including `t = 0`).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored time points.
    pub fn num_points(&self) -> usize {
        self.times.len()
    }

    /// Total Newton iterations spent across all time points (a cheap proxy for
    /// simulation cost reported by the benchmark harness). Identical between
    /// the sparse and dense kernels.
    pub fn newton_iterations_total(&self) -> usize {
        self.newton_iterations_total
    }

    /// Voltage samples of `node` over time.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn node_voltage_samples(&self, node: NodeId) -> Result<&[f64], CircuitError> {
        self.node_voltages
            .get(node)
            .map(|v| v.as_slice())
            .ok_or(CircuitError::UnknownNode {
                node,
                num_nodes: self.node_voltages.len(),
            })
    }

    /// Builds a [`Waveform`] for `node`. The returned waveform shares this
    /// result's time axis (no time-vector copy); only the values are cloned.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn waveform(&self, node: NodeId) -> Result<Waveform, CircuitError> {
        let values = self.node_voltage_samples(node)?.to_vec();
        Waveform::from_shared(Arc::clone(&self.times), values)
    }

    /// A zero-copy measurement view of `node`'s waveform — the hot path for
    /// metric extraction (nothing is cloned).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    pub fn waveform_view(&self, node: NodeId) -> Result<WaveformView<'_>, CircuitError> {
        let values = self.node_voltage_samples(node)?;
        Ok(WaveformView::new(&self.times, values))
    }

    /// Final voltage of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if the node does not exist.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn final_voltage(&self, node: NodeId) -> Result<f64, CircuitError> {
        Ok(*self
            .node_voltage_samples(node)?
            .last()
            .expect("transient result always contains t = 0"))
    }
}

/// Runs a backward-Euler transient analysis of `circuit` on the sparse kernel.
///
/// # Errors
///
/// * [`CircuitError::InvalidAnalysis`] for an inconsistent configuration.
/// * [`CircuitError::NewtonDidNotConverge`] / [`CircuitError::SingularSystem`]
///   if a time point cannot be solved.
///
/// # Examples
///
/// ```
/// use gis_circuit::{Circuit, SourceWaveform, TransientConfig, transient_analysis, GROUND};
///
/// # fn main() -> Result<(), gis_circuit::CircuitError> {
/// // RC low-pass step response.
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
/// ckt.add_resistor("R1", vin, out, 1e3)?;
/// ckt.add_capacitor("C1", out, GROUND, 1e-9)?;
/// let cfg = TransientConfig::new(5e-6, 10e-9).with_initial_conditions(vec![0.0, 1.0, 0.0]);
/// let result = transient_analysis(&ckt, &cfg)?;
/// let v_end = result.final_voltage(out)?;
/// assert!((v_end - 1.0).abs() < 1e-2); // fully charged after 5 time constants
/// # Ok(())
/// # }
/// ```
pub fn transient_analysis(
    circuit: &Circuit,
    config: &TransientConfig,
) -> Result<TransientResult, CircuitError> {
    let mut workspace = SimulationWorkspace::new();
    transient_analysis_with(circuit, config, &mut workspace)
}

/// Runs a transient analysis on the sparse kernel, reusing `workspace`.
///
/// This is the Monte-Carlo hot path: when the same netlist topology is
/// simulated repeatedly with different device values (the SRAM sessions), the
/// workspace's symbolic LU plan and every numeric buffer carry over between
/// calls, leaving only the result storage to allocate. Bit-identical to
/// [`transient_analysis`] and [`transient_analysis_dense`].
///
/// # Errors
///
/// See [`transient_analysis`].
pub fn transient_analysis_with(
    circuit: &Circuit,
    config: &TransientConfig,
    workspace: &mut SimulationWorkspace,
) -> Result<TransientResult, CircuitError> {
    config.validate()?;
    let system = MnaSystem::new(circuit)?;
    let num_nodes = circuit.num_nodes();
    workspace.bind(&system);

    // Initial state.
    match &config.initial_conditions {
        Some(ic) => {
            let mut x0 = vec![0.0; system.dim()];
            for node in 1..num_nodes {
                if node < ic.len() {
                    x0[node - 1] = ic[node];
                }
            }
            // Solve the t = 0 system with the capacitors holding their initial
            // voltages (treated as ideal voltage history) so branch currents of
            // the voltage sources start consistent.
            workspace.set_state(&x0);
        }
        None => {
            workspace.set_state(&[]);
            system.solve_newton_in(workspace, 0.0, None, "dc", MAX_NEWTON_ITERATIONS)?;
        }
    }

    let num_steps = (config.stop_time / config.time_step).ceil() as usize; // gis-analyze: allow(float-cast, step count from ceil of validated positive durations)
    let mut times = Vec::with_capacity(num_steps + 1);
    let mut node_voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(num_steps + 1); num_nodes];

    let record = |t: f64, voltages: &[f64], times: &mut Vec<f64>, store: &mut Vec<Vec<f64>>| {
        times.push(t);
        for (node, value) in voltages.iter().enumerate() {
            store[node].push(*value);
        }
    };

    let mut previous = vec![0.0; num_nodes];
    system.node_voltages_into(workspace.state(), &mut previous);
    // If explicit initial conditions were given they take precedence over the
    // (zero-filled) solution vector for the recorded t = 0 point.
    if let Some(ic) = &config.initial_conditions {
        for node in 0..num_nodes {
            if node < ic.len() {
                previous[node] = ic[node];
            }
        }
    }
    record(0.0, &previous, &mut times, &mut node_voltages);

    let mut newton_total = 0usize;
    for step in 1..=num_steps {
        let t = (step as f64 * config.time_step).min(config.stop_time);
        let dynamic = DynamicState {
            previous_node_voltages: &previous,
            dt: config.time_step,
        };
        newton_total += system.solve_newton_prebound(
            workspace,
            t,
            Some(&dynamic),
            "transient",
            config.max_newton_iterations,
        )?;
        system.node_voltages_into(workspace.state(), &mut previous);
        record(t, &previous, &mut times, &mut node_voltages);
        if t >= config.stop_time {
            break;
        }
    }

    Ok(TransientResult {
        times: times.into(),
        node_voltages,
        newton_iterations_total: newton_total,
    })
}

/// Runs the same backward-Euler transient over up to [`MAX_LANES`]
/// topology-sharing circuits in lockstep on the multi-sample sparse kernel.
///
/// Every lane advances through one shared symbolic plan, one compiled stamp
/// program and one recorded elimination program; per-lane arithmetic is the
/// scalar kernel's arithmetic in the scalar kernel's order, so each lane's
/// waveforms are **bit-identical** to [`transient_analysis_with`] run on that
/// lane's circuit alone (with `fast = false`; the fast lane trades
/// bit-identity for vectorizable exp/ln approximations and is gated at the
/// bench layer). Failures are per-lane: a lane whose system goes singular or
/// whose Newton iteration stalls gets an `Err` in its slot of the returned
/// vector while the remaining lanes finish normally — exactly the outcome of
/// running the scalar kernel per sample.
///
/// The returned results share one time axis allocation across lanes.
///
/// # Errors
///
/// The outer `Err` covers batch-level misuse: an invalid configuration, an
/// empty or over-[`MAX_LANES`] batch, an invalid lane-0 circuit, or lanes
/// that do not share a netlist topology. Per-lane simulation failures land in
/// the inner results.
pub fn transient_analysis_lockstep(
    circuits: &[&Circuit],
    config: &TransientConfig,
    workspace: &mut LockstepWorkspace,
    fast: bool,
) -> Result<Vec<Result<TransientResult, CircuitError>>, CircuitError> {
    config.validate()?;
    let lanes = circuits.len();
    if lanes == 0 || lanes > MAX_LANES {
        return Err(CircuitError::InvalidAnalysis(format!(
            "lockstep lane count must be 1..={MAX_LANES}, got {lanes}"
        )));
    }
    let system = MnaSystem::new(circuits[0])?;
    for (lane, circuit) in circuits.iter().enumerate().skip(1) {
        if !same_topology(circuits[0], circuit) {
            return Err(CircuitError::InvalidAnalysis(format!(
                "lockstep lane {lane} does not share the lane-0 netlist topology"
            )));
        }
    }
    let num_nodes = circuits[0].num_nodes();
    workspace.bind(&system, lanes);

    let mut alive = vec![true; lanes];
    let mut errors: Vec<Option<CircuitError>> = vec![None; lanes];
    let mut newton_totals = vec![0usize; lanes];

    // Initial state, mirroring the scalar driver lane by lane. The DC
    // iterations are not counted towards the per-lane Newton totals, matching
    // the scalar driver (which discards the DC solve's count).
    match &config.initial_conditions {
        Some(ic) => {
            let mut x0 = vec![0.0; system.dim()];
            for node in 1..num_nodes {
                if node < ic.len() {
                    x0[node - 1] = ic[node];
                }
            }
            workspace.set_state_broadcast(&x0);
        }
        None => {
            workspace.set_state_broadcast(&[]);
            let mut dc_iterations = vec![0usize; lanes];
            system.solve_newton_lockstep_prebound(
                workspace,
                circuits,
                0.0,
                None,
                "dc",
                MAX_NEWTON_ITERATIONS,
                fast,
                &mut alive,
                &mut errors,
                &mut dc_iterations,
            );
        }
    }

    let num_steps = (config.stop_time / config.time_step).ceil() as usize; // gis-analyze: allow(float-cast, step count from ceil of validated positive durations)
    let mut times: Vec<f64> = Vec::with_capacity(num_steps + 1);
    let mut store: Vec<Vec<Vec<f64>>> = (0..lanes)
        .map(|_| vec![Vec::with_capacity(num_steps + 1); num_nodes])
        .collect();
    // Lane-major previous node voltages: `previous[node * lanes + lane]`.
    let mut previous = vec![0.0; num_nodes * lanes];
    for (lane, &live) in alive.iter().enumerate().take(lanes) {
        if live {
            workspace.lane_node_voltages_into_strided(lane, &mut previous);
        }
    }
    // Explicit initial conditions take precedence over the solution vector
    // for the recorded t = 0 point (same rule as the scalar driver).
    if let Some(ic) = &config.initial_conditions {
        for node in 0..num_nodes.min(ic.len()) {
            for lane in 0..lanes {
                previous[node * lanes + lane] = ic[node];
            }
        }
    }
    times.push(0.0);
    for lane in 0..lanes {
        if alive[lane] {
            for node in 0..num_nodes {
                store[lane][node].push(previous[node * lanes + lane]);
            }
        }
    }

    for step in 1..=num_steps {
        if !alive.iter().any(|&a| a) {
            break;
        }
        let t = (step as f64 * config.time_step).min(config.stop_time);
        let dynamic = LockstepDynamicState {
            previous_node_voltages: &previous,
            dt: config.time_step,
        };
        system.solve_newton_lockstep_prebound(
            workspace,
            circuits,
            t,
            Some(&dynamic),
            "transient",
            config.max_newton_iterations,
            fast,
            &mut alive,
            &mut errors,
            &mut newton_totals,
        );
        times.push(t);
        for lane in 0..lanes {
            if alive[lane] {
                workspace.lane_node_voltages_into_strided(lane, &mut previous);
                for node in 0..num_nodes {
                    store[lane][node].push(previous[node * lanes + lane]);
                }
            }
        }
        if t >= config.stop_time {
            break;
        }
    }

    let times: Arc<[f64]> = times.into();
    Ok(store
        .into_iter()
        .zip(errors.iter_mut())
        .zip(newton_totals)
        .map(
            |((node_voltages, error), newton_iterations_total)| match error.take() {
                Some(e) => Err(e),
                None => Ok(TransientResult {
                    times: Arc::clone(&times),
                    node_voltages,
                    newton_iterations_total,
                }),
            },
        )
        .collect())
}

/// Runs a transient analysis on the dense reference kernel.
///
/// Allocates fresh dense systems every Newton iteration; kept as the golden
/// reference the sparse kernel is validated against (and selectable through
/// the SRAM layer for end-to-end verification). Bit-identical to
/// [`transient_analysis`].
///
/// # Errors
///
/// See [`transient_analysis`].
pub fn transient_analysis_dense(
    circuit: &Circuit,
    config: &TransientConfig,
) -> Result<TransientResult, CircuitError> {
    config.validate()?;
    let system = MnaSystem::new(circuit)?;
    let num_nodes = circuit.num_nodes();

    // Initial state.
    let x0 = match &config.initial_conditions {
        Some(ic) => {
            let mut x = Vector::zeros(system.dim());
            for node in 1..num_nodes {
                if node < ic.len() {
                    x[node - 1] = ic[node];
                }
            }
            x
        }
        None => system.dc_operating_point(None)?,
    };

    let num_steps = (config.stop_time / config.time_step).ceil() as usize; // gis-analyze: allow(float-cast, step count from ceil of validated positive durations)
    let mut times = Vec::with_capacity(num_steps + 1);
    let mut node_voltages: Vec<Vec<f64>> = vec![Vec::with_capacity(num_steps + 1); num_nodes];

    let record = |t: f64, voltages: &[f64], times: &mut Vec<f64>, store: &mut Vec<Vec<f64>>| {
        times.push(t);
        for (node, value) in voltages.iter().enumerate() {
            store[node].push(*value);
        }
    };

    let mut previous = system.node_voltages(&x0);
    if let Some(ic) = &config.initial_conditions {
        for node in 0..num_nodes {
            if node < ic.len() {
                previous[node] = ic[node];
            }
        }
    }
    record(0.0, &previous, &mut times, &mut node_voltages);

    let mut x = x0;
    let mut newton_total = 0usize;
    for step in 1..=num_steps {
        let t = (step as f64 * config.time_step).min(config.stop_time);
        let dynamic = DynamicState {
            previous_node_voltages: &previous,
            dt: config.time_step,
        };
        let (x_next, iterations) = system.solve_newton_counted(
            x,
            t,
            Some(&dynamic),
            "transient",
            config.max_newton_iterations,
        )?;
        x = x_next;
        newton_total += iterations;
        system.node_voltages_into(x.as_slice(), &mut previous);
        record(t, &previous, &mut times, &mut node_voltages);
        if t >= config.stop_time {
            break;
        }
    }

    Ok(TransientResult {
        times: times.into(),
        node_voltages,
        newton_iterations_total: newton_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosfetParams;
    use crate::netlist::{SourceWaveform, GROUND};

    #[test]
    fn config_validation() {
        assert!(TransientConfig::new(0.0, 1e-9).validate().is_err());
        assert!(TransientConfig::new(1e-9, 0.0).validate().is_err());
        assert!(TransientConfig::new(1e-9, 2e-9).validate().is_err());
        let mut c = TransientConfig::new(1e-9, 1e-11);
        c.max_newton_iterations = 0;
        assert!(c.validate().is_err());
        assert!(TransientConfig::new(1e-9, 1e-11).validate().is_ok());
    }

    #[test]
    fn rc_charging_matches_analytic_solution() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, GROUND, c).unwrap();
        let cfg = TransientConfig::new(5.0 * tau, tau / 200.0)
            .with_initial_conditions(vec![0.0, 1.0, 0.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let wave = result.waveform(out).unwrap();
        for &t_check in &[0.5 * tau, tau, 2.0 * tau, 4.0 * tau] {
            let expected = 1.0 - (-t_check / tau).exp();
            let got = wave.value_at(t_check);
            assert!(
                (got - expected).abs() < 0.01,
                "RC mismatch at t={t_check:e}: {got} vs {expected}"
            );
        }
        assert!(result.newton_iterations_total() > 0);
        assert_eq!(result.num_points(), result.times().len());
    }

    #[test]
    fn rc_discharge_from_initial_condition() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let tau = 1e-6;
        let cfg =
            TransientConfig::new(3.0 * tau, tau / 100.0).with_initial_conditions(vec![0.0, 1.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let wave = result.waveform(out).unwrap();
        let expected = (-1.0f64).exp();
        assert!((wave.value_at(tau) - expected).abs() < 0.01);
        assert!(wave.value_at(0.0) > 0.99);
    }

    #[test]
    fn inverter_switching_delay_is_positive_and_finite() {
        // CMOS inverter driving a load capacitor, input pulse.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source(
            "VIN",
            input,
            GROUND,
            SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
        );
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        ckt.add_capacitor("CL", out, GROUND, 2e-15).unwrap();
        let cfg =
            TransientConfig::new(3e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let win = result.waveform(input).unwrap();
        let wout = result.waveform(out).unwrap();
        // Output falls after the input rises.
        let delay = win.delay_to(0.5, &wout, 0.5, 0.1e-9).unwrap();
        assert!(delay > 0.0 && delay < 1e-9, "implausible delay {delay:e}");
        // Output returns high after the input falls again.
        assert!(wout.final_value() > 0.9);
    }

    #[test]
    fn unknown_node_in_result_is_an_error() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let cfg = TransientConfig::new(1e-6, 1e-8);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        assert!(result.waveform(57).is_err());
        assert!(result.waveform_view(57).is_err());
        assert!(result.final_voltage(57).is_err());
        assert!(result.node_voltage_samples(out).is_ok());
    }

    #[test]
    fn waveforms_share_the_result_time_axis() {
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        ckt.add_resistor("R1", out, GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
        let cfg = TransientConfig::new(1e-6, 1e-8).with_initial_conditions(vec![0.0, 0.5]);
        let result = transient_analysis(&ckt, &cfg).unwrap();
        let w0 = result.waveform(0).unwrap();
        let w1 = result.waveform(out).unwrap();
        assert!(Arc::ptr_eq(&w0.shared_times(), &w1.shared_times()));
        // Views borrow the same axis without any clone.
        let v = result.waveform_view(out).unwrap();
        assert_eq!(v.times().as_ptr(), result.times().as_ptr());
        assert_eq!(v.final_value(), result.final_voltage(out).unwrap());
    }

    #[test]
    fn sparse_and_dense_transients_are_bit_identical() {
        // Inverter + load: nonlinear devices, voltage sources, capacitor.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source(
            "VIN",
            input,
            GROUND,
            SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
        );
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        ckt.add_capacitor("CL", out, GROUND, 2e-15).unwrap();
        let cfg =
            TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let sparse = transient_analysis(&ckt, &cfg).unwrap();
        let dense = transient_analysis_dense(&ckt, &cfg).unwrap();
        assert_eq!(
            sparse.newton_iterations_total(),
            dense.newton_iterations_total()
        );
        assert_eq!(sparse.times().len(), dense.times().len());
        for node in 0..ckt.num_nodes() {
            let s = sparse.node_voltage_samples(node).unwrap();
            let d = dense.node_voltage_samples(node).unwrap();
            for (i, (a, b)) in s.iter().zip(d).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "node {node} step {i}: {a:e} vs {b:e}"
                );
            }
        }
    }

    /// The inverter netlist of the kernel-equivalence tests with a
    /// per-sample load capacitance (value-only variation, same topology).
    fn inverter_with_load(cl: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let input = ckt.node("in");
        let out = ckt.node("out");
        ckt.add_voltage_source("VDD", vdd, GROUND, SourceWaveform::dc(1.0));
        ckt.add_voltage_source(
            "VIN",
            input,
            GROUND,
            SourceWaveform::pulse(0.0, 1.0, 0.2e-9, 20e-12, 2e-9),
        );
        ckt.add_mosfet("MP", out, input, vdd, vdd, MosfetParams::pmos_45nm())
            .unwrap();
        ckt.add_mosfet("MN", out, input, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        ckt.add_capacitor("CL", out, GROUND, cl).unwrap();
        ckt
    }

    #[test]
    fn lockstep_transient_matches_scalar_bit_for_bit() {
        let caps = [2e-15, 3.1e-15, 1.4e-15, 2.6e-15];
        let ckts: Vec<Circuit> = caps.iter().map(|&c| inverter_with_load(c)).collect();
        let refs: Vec<&Circuit> = ckts.iter().collect();
        let cfg =
            TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let mut ws = LockstepWorkspace::new();
        // Two rounds: cold (records the elimination program) and warm
        // (replays it); both must be bit-identical to the scalar kernel.
        for round in 0..2 {
            let results = transient_analysis_lockstep(&refs, &cfg, &mut ws, false).unwrap();
            assert_eq!(results.len(), caps.len());
            for (lane, result) in results.iter().enumerate() {
                let lock = result.as_ref().unwrap();
                let scalar = transient_analysis(&ckts[lane], &cfg).unwrap();
                assert_eq!(
                    lock.newton_iterations_total(),
                    scalar.newton_iterations_total(),
                    "round {round} lane {lane}"
                );
                assert_eq!(lock.times(), scalar.times());
                for node in 0..ckts[lane].num_nodes() {
                    let a = lock.node_voltage_samples(node).unwrap();
                    let b = scalar.node_voltage_samples(node).unwrap();
                    for (i, (x, y)) in a.iter().zip(b).enumerate() {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "round {round} lane {lane} node {node} step {i}: {x:e} vs {y:e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lockstep_dc_initial_state_matches_scalar() {
        // No initial conditions: every lane starts from its own DC operating
        // point, still bit-identical to the scalar kernel.
        let build = |r: f64| {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
            ckt.add_resistor("R1", vin, out, r).unwrap();
            ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
            ckt
        };
        let ckts: Vec<Circuit> = [1e3, 3.3e3, 470.0].iter().map(|&r| build(r)).collect();
        let refs: Vec<&Circuit> = ckts.iter().collect();
        let cfg = TransientConfig::new(2e-6, 2e-8);
        let mut ws = LockstepWorkspace::new();
        let results = transient_analysis_lockstep(&refs, &cfg, &mut ws, false).unwrap();
        for (lane, result) in results.iter().enumerate() {
            let lock = result.as_ref().unwrap();
            let scalar = transient_analysis(&ckts[lane], &cfg).unwrap();
            assert_eq!(lock, &scalar, "lane {lane} diverged from scalar");
        }
    }

    #[test]
    fn fast_lane_tracks_the_exact_kernel_closely() {
        let ckt = inverter_with_load(2e-15);
        let cfg =
            TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let exact = transient_analysis(&ckt, &cfg).unwrap();
        let mut ws = LockstepWorkspace::new();
        let fast = transient_analysis_lockstep(&[&ckt], &cfg, &mut ws, true)
            .unwrap()
            .remove(0)
            .unwrap();
        assert_eq!(exact.times(), fast.times());
        let mut worst: f64 = 0.0;
        for node in 0..ckt.num_nodes() {
            let a = exact.node_voltage_samples(node).unwrap();
            let b = fast.node_voltage_samples(node).unwrap();
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        // The fast lane's <1e-12-relative exp/ln error stays far below a
        // nanovolt on volt-scale waveforms once Newton re-converges each step.
        assert!(worst < 1e-7, "fast lane deviates by {worst:e} V");
    }

    #[test]
    fn lockstep_rejects_topology_mismatch_and_oversize_batches() {
        let a = inverter_with_load(2e-15);
        let mut b = inverter_with_load(2e-15);
        let extra = b.node("extra");
        b.add_resistor("RX", extra, GROUND, 1e3).unwrap();
        let cfg =
            TransientConfig::new(1e-9, 2e-12).with_initial_conditions(vec![0.0, 1.0, 0.0, 1.0]);
        let mut ws = LockstepWorkspace::new();
        assert!(transient_analysis_lockstep(&[&a, &b], &cfg, &mut ws, false).is_err());
        assert!(transient_analysis_lockstep(&[], &cfg, &mut ws, false).is_err());
        let nine: Vec<&Circuit> = std::iter::repeat_n(&a, 9).collect();
        assert!(transient_analysis_lockstep(&nine, &cfg, &mut ws, false).is_err());
    }

    #[test]
    fn workspace_reuse_across_samples_is_bit_identical() {
        // The session pattern: same topology, different device values, one
        // long-lived workspace.
        let build = |r: f64| {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
            ckt.add_resistor("R1", vin, out, r).unwrap();
            ckt.add_capacitor("C1", out, GROUND, 1e-9).unwrap();
            ckt
        };
        let cfg = TransientConfig::new(2e-6, 2e-8).with_initial_conditions(vec![0.0, 1.0, 0.0]);
        let mut ws = SimulationWorkspace::new();
        for r in [1e3, 3.3e3, 470.0, 1e3] {
            let ckt = build(r);
            let reused = transient_analysis_with(&ckt, &cfg, &mut ws).unwrap();
            let fresh = transient_analysis(&ckt, &cfg).unwrap();
            assert_eq!(reused, fresh, "workspace reuse diverged at R={r}");
        }
    }
}
