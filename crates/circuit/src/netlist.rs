//! Circuit (netlist) representation and builder.
//!
//! A [`Circuit`] is a flat list of devices connected between named nodes.
//! Node 0 is always ground. The builder API is deliberately close to how a
//! SPICE deck reads:
//!
//! ```
//! use gis_circuit::{Circuit, SourceWaveform, MosfetParams};
//!
//! let mut ckt = Circuit::new();
//! let vdd = ckt.node("vdd");
//! let out = ckt.node("out");
//! let gnd = Circuit::ground();
//! ckt.add_voltage_source("VDD", vdd, gnd, SourceWaveform::dc(1.0));
//! ckt.add_resistor("R1", vdd, out, 10e3).unwrap();
//! ckt.add_capacitor("C1", out, gnd, 1e-12).unwrap();
//! assert_eq!(ckt.num_nodes(), 3); // ground + vdd + out
//! ```

use crate::error::CircuitError;
use crate::mosfet::MosfetParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a circuit node. Node 0 is ground.
pub type NodeId = usize;

/// Ground node id.
pub const GROUND: NodeId = 0;

/// Time-dependent value of an independent source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse waveform.
    Pulse {
        /// Initial value.
        initial: f64,
        /// Pulsed value.
        pulsed: f64,
        /// Delay before the rising edge begins, in seconds.
        delay: f64,
        /// Rise time in seconds.
        rise: f64,
        /// Fall time in seconds.
        fall: f64,
        /// Pulse width (time spent at `pulsed`), in seconds.
        width: f64,
    },
    /// Piece-wise linear waveform given as `(time, value)` breakpoints sorted by time.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// Shorthand for a DC source.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// A single rectangular-ish pulse with symmetric rise/fall times.
    pub fn pulse(initial: f64, pulsed: f64, delay: f64, edge: f64, width: f64) -> Self {
        SourceWaveform::Pulse {
            initial,
            pulsed,
            delay,
            rise: edge,
            fall: edge,
            width,
        }
    }

    /// Evaluates the waveform at time `t` (seconds).
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pulse {
                initial,
                pulsed,
                delay,
                rise,
                fall,
                width,
            } => {
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if t < *delay {
                    *initial
                } else if t < delay + rise {
                    initial + (pulsed - initial) * (t - delay) / rise
                } else if t < delay + rise + width {
                    *pulsed
                } else if t < delay + rise + width + fall {
                    pulsed + (initial - pulsed) * (t - delay - rise - width) / fall
                } else {
                    *initial
                }
            }
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points.last().expect("non-empty checked above").1
            }
        }
    }
}

/// A circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (> 0).
        resistance: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (> 0).
        capacitance: f64,
    },
    /// Independent voltage source from `positive` to `negative`.
    VoltageSource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        positive: NodeId,
        /// Negative terminal.
        negative: NodeId,
        /// Value over time.
        waveform: SourceWaveform,
    },
    /// Independent current source injecting current into `into` and pulling it
    /// from `from`.
    CurrentSource {
        /// Instance name.
        name: String,
        /// Terminal the current is pulled from.
        from: NodeId,
        /// Terminal the current is injected into.
        into: NodeId,
        /// Value over time.
        waveform: SourceWaveform,
    },
    /// Four-terminal MOSFET.
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Body/bulk terminal.
        body: NodeId,
        /// Model-card parameters (already including any per-instance variation).
        params: MosfetParams,
    },
}

impl Device {
    /// Instance name of the device.
    pub fn name(&self) -> &str {
        match self {
            Device::Resistor { name, .. }
            | Device::Capacitor { name, .. }
            | Device::VoltageSource { name, .. }
            | Device::CurrentSource { name, .. }
            | Device::Mosfet { name, .. } => name,
        }
    }

    /// Node ids this device connects to.
    pub fn terminals(&self) -> Vec<NodeId> {
        match self {
            Device::Resistor { a, b, .. } | Device::Capacitor { a, b, .. } => vec![*a, *b],
            Device::VoltageSource {
                positive, negative, ..
            } => vec![*positive, *negative],
            Device::CurrentSource { from, into, .. } => vec![*from, *into],
            Device::Mosfet {
                drain,
                gate,
                source,
                body,
                ..
            } => vec![*drain, *gate, *source, *body],
        }
    }
}

/// A flat transistor-level circuit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: BTreeMap<String, NodeId>,
    devices: Vec<Device>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        let mut ckt = Circuit {
            node_names: Vec::new(),
            name_to_node: BTreeMap::new(),
            devices: Vec::new(),
        };
        ckt.node_names.push("0".to_string());
        ckt.name_to_node.insert("0".to_string(), GROUND);
        ckt
    }

    /// The ground node id (always 0).
    pub fn ground() -> NodeId {
        GROUND
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = self.node_names.len();
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up a node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// Name of node `id`, if it exists.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.node_names.get(id).map(|s| s.as_str())
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// The devices of the circuit, in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Mutable access to the devices (used by the SRAM layer to inject
    /// per-sample threshold-voltage shifts without rebuilding the netlist).
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devices
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Number of independent voltage sources (each adds one MNA branch unknown).
    pub fn num_voltage_sources(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d, Device::VoltageSource { .. }))
            .count()
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node >= self.num_nodes() {
            Err(CircuitError::UnknownNode {
                node,
                num_nodes: self.num_nodes(),
            })
        } else {
            Ok(())
        }
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] for a non-positive or non-finite
    /// resistance, or [`CircuitError::UnknownNode`] for a bad terminal.
    pub fn add_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        resistance: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(resistance > 0.0) || !resistance.is_finite() {
            return Err(CircuitError::InvalidDevice {
                device: name.to_string(),
                reason: format!("resistance must be positive and finite, got {resistance}"),
            });
        }
        self.devices.push(Device::Resistor {
            name: name.to_string(),
            a,
            b,
            resistance,
        });
        Ok(())
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] for a non-positive or non-finite
    /// capacitance, or [`CircuitError::UnknownNode`] for a bad terminal.
    pub fn add_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        capacitance: f64,
    ) -> Result<(), CircuitError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if !(capacitance > 0.0) || !capacitance.is_finite() {
            return Err(CircuitError::InvalidDevice {
                device: name.to_string(),
                reason: format!("capacitance must be positive and finite, got {capacitance}"),
            });
        }
        self.devices.push(Device::Capacitor {
            name: name.to_string(),
            a,
            b,
            capacitance,
        });
        Ok(())
    }

    /// Adds an independent voltage source. Terminal validity is checked lazily
    /// at analysis time for sources because testbench builders commonly create
    /// them before all internal nodes exist; an out-of-range node will still be
    /// rejected when the MNA system is built.
    pub fn add_voltage_source(
        &mut self,
        name: &str,
        positive: NodeId,
        negative: NodeId,
        waveform: SourceWaveform,
    ) {
        self.devices.push(Device::VoltageSource {
            name: name.to_string(),
            positive,
            negative,
            waveform,
        });
    }

    /// Adds an independent current source injecting into `into` and drawing
    /// from `from`.
    pub fn add_current_source(
        &mut self,
        name: &str,
        from: NodeId,
        into: NodeId,
        waveform: SourceWaveform,
    ) {
        self.devices.push(Device::CurrentSource {
            name: name.to_string(),
            from,
            into,
            waveform,
        });
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidDevice`] if the model card fails
    /// validation, or [`CircuitError::UnknownNode`] for a bad terminal.
    pub fn add_mosfet(
        &mut self,
        name: &str,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        body: NodeId,
        params: MosfetParams,
    ) -> Result<(), CircuitError> {
        for node in [drain, gate, source, body] {
            self.check_node(node)?;
        }
        params
            .validate()
            .map_err(|reason| CircuitError::InvalidDevice {
                device: name.to_string(),
                reason,
            })?;
        self.devices.push(Device::Mosfet {
            name: name.to_string(),
            drain,
            gate,
            source,
            body,
            params,
        });
        Ok(())
    }

    /// Validates that every device terminal refers to an existing node.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] naming the first offending node.
    pub fn validate(&self) -> Result<(), CircuitError> {
        for d in &self.devices {
            for t in d.terminals() {
                self.check_node(t)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_creation_is_idempotent() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.num_nodes(), 2);
        assert_eq!(ckt.node_name(a), Some("a"));
        assert_eq!(ckt.find_node("a"), Some(a));
        assert_eq!(ckt.find_node("missing"), None);
        assert_eq!(Circuit::ground(), 0);
        assert_eq!(ckt.node_name(GROUND), Some("0"));
    }

    #[test]
    fn device_addition_and_counts() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, GROUND, 1e-15).unwrap();
        ckt.add_voltage_source("V1", a, GROUND, SourceWaveform::dc(1.0));
        ckt.add_current_source("I1", GROUND, b, SourceWaveform::dc(1e-6));
        ckt.add_mosfet("M1", a, b, GROUND, GROUND, MosfetParams::nmos_45nm())
            .unwrap();
        assert_eq!(ckt.num_devices(), 5);
        assert_eq!(ckt.num_voltage_sources(), 1);
        assert!(ckt.validate().is_ok());
        assert_eq!(ckt.devices()[0].name(), "R1");
        assert_eq!(ckt.devices()[4].terminals().len(), 4);
    }

    #[test]
    fn invalid_devices_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.add_resistor("R", a, GROUND, 0.0).is_err());
        assert!(ckt.add_resistor("R", a, GROUND, -5.0).is_err());
        assert!(ckt.add_resistor("R", a, 99, 1.0).is_err());
        assert!(ckt.add_capacitor("C", a, GROUND, f64::NAN).is_err());
        let mut bad = MosfetParams::nmos_45nm();
        bad.k_prime = -1.0;
        assert!(ckt.add_mosfet("M", a, a, GROUND, GROUND, bad).is_err());
        assert_eq!(ckt.num_devices(), 0);
    }

    #[test]
    fn validate_catches_dangling_source_nodes() {
        let mut ckt = Circuit::new();
        ckt.add_voltage_source("V1", 5, GROUND, SourceWaveform::dc(1.0));
        assert!(ckt.validate().is_err());
    }

    #[test]
    fn dc_waveform() {
        let w = SourceWaveform::dc(1.8);
        assert_eq!(w.value_at(0.0), 1.8);
        assert_eq!(w.value_at(1.0), 1.8);
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::pulse(0.0, 1.0, 1e-9, 0.1e-9, 2e-9);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.99e-9), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(2.0e-9), 1.0);
        assert_eq!(w.value_at(3.05e-9), 1.0);
        // Falling edge midpoint.
        assert!((w.value_at(3.15e-9) - 0.5).abs() < 1e-6);
        assert_eq!(w.value_at(4.0e-9), 0.0);
    }

    #[test]
    fn pwl_waveform_interpolation() {
        let w = SourceWaveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0), (4.0, 0.0)]);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 1.0);
        assert_eq!(w.value_at(2.0), 2.0);
        assert_eq!(w.value_at(3.5), 1.0);
        assert_eq!(w.value_at(10.0), 0.0);
        assert_eq!(SourceWaveform::Pwl(vec![]).value_at(1.0), 0.0);
    }
}
