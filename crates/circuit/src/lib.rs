//! Transistor-level circuit simulation substrate for high-sigma SRAM extraction.
//!
//! The published methodology this repository reproduces evaluates SRAM dynamic
//! characteristics with a commercial SPICE simulator. No mature SPICE engine
//! exists as a Rust crate, so this crate implements the required subset from
//! scratch:
//!
//! * a netlist/builder API ([`Circuit`]) with resistors, capacitors,
//!   independent sources and four-terminal MOSFETs,
//! * a smooth square-law/EKV MOSFET compact model with subthreshold conduction
//!   and linearized body effect ([`MosfetParams`]),
//! * modified nodal analysis with damped Newton–Raphson for DC operating
//!   points ([`MnaSystem`]), and
//! * fixed-step backward-Euler transient analysis with SPICE-style `.measure`
//!   operations on the resulting waveforms ([`transient_analysis`],
//!   [`Waveform`]).
//!
//! # Quick example
//!
//! ```
//! use gis_circuit::{Circuit, SourceWaveform, TransientConfig, transient_analysis, GROUND};
//!
//! # fn main() -> Result<(), gis_circuit::CircuitError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_voltage_source("V1", vin, GROUND, SourceWaveform::dc(1.0));
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, GROUND, 1e-9)?;
//! let result = transient_analysis(
//!     &ckt,
//!     &TransientConfig::new(5e-6, 10e-9).with_initial_conditions(vec![0.0, 1.0, 0.0]),
//! )?;
//! assert!(result.final_voltage(out)? > 0.99);
//! # Ok(())
//! # }
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod error;
pub mod mna;
pub mod mosfet;
pub mod netlist;
pub mod sweep;
pub mod transient;
pub mod waveform;

pub use error::CircuitError;
pub use mna::{
    same_topology, DynamicState, LockstepDynamicState, LockstepWorkspace, MnaSystem,
    SimulationWorkspace, MAX_LANES,
};
pub use mosfet::{MosfetOperatingPoint, MosfetParams, MosfetPolarity};
pub use netlist::{Circuit, Device, NodeId, SourceWaveform, GROUND};
pub use sweep::{dc_sweep, DcSweepResult};
pub use transient::{
    transient_analysis, transient_analysis_dense, transient_analysis_lockstep,
    transient_analysis_with, TransientConfig, TransientKernel, TransientResult,
};
pub use waveform::{CrossingDirection, Waveform, WaveformView};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
