//! Brute-force (standard) Monte Carlo failure-probability estimation.
//!
//! This is both the accuracy reference for every other method and the baseline
//! whose cost the evaluation tables compare against. Samples are drawn from the
//! nominal standard normal density of the whitened variation space; the
//! estimator is the failure fraction with its binomial standard error.
//!
//! The inner loop is batched: each batch of points is generated sequentially
//! (preserving the draw order of the stream), evaluated on the configured
//! [`crate::exec::Executor`] worker threads, and reduced in sample order — so
//! the estimate is bit-identical at every thread count.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome};
use crate::exec::ExecutionConfig;
use crate::model::FailureProblem;
use crate::result::{ConvergencePoint, ExtractionResult};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Configuration of the brute-force Monte Carlo estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Maximum number of samples (simulator calls) to spend.
    pub max_samples: u64,
    /// Samples drawn between convergence checks / trace snapshots.
    pub batch_size: u64,
    /// Target relative standard error (σ/μ); the run stops early once reached.
    pub target_relative_error: f64,
    /// Minimum number of observed failures before the stopping rule may fire
    /// (protects against spuriously "converged" estimates from 1–2 failures).
    pub min_failures: u64,
    /// Use the first-passage-corrected stopping rule and error bar (see
    /// [`crate::stopping`]). `false` restores the legacy anti-conservative
    /// rule, kept for the calibration harness's before/after measurement.
    pub corrected_stopping: bool,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            max_samples: 1_000_000,
            batch_size: 1_000,
            target_relative_error: 0.1,
            min_failures: 10,
            corrected_stopping: true,
        }
    }
}

impl MonteCarloConfig {
    /// Creates a configuration with the given sample budget and defaults for
    /// the remaining fields.
    pub fn with_budget(max_samples: u64) -> Self {
        MonteCarloConfig {
            max_samples,
            ..MonteCarloConfig::default()
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.max_samples == 0 || self.batch_size == 0 {
            return Err("sample budget and batch size must be positive".to_string());
        }
        if !(self.target_relative_error > 0.0) {
            return Err("target relative error must be positive".to_string());
        }
        Ok(())
    }
}

/// Brute-force Monte Carlo estimator.
#[derive(Debug, Clone, Default)]
pub struct MonteCarlo {
    config: MonteCarloConfig,
    exec: ExecutionConfig,
}

impl MonteCarlo {
    /// Creates an estimator with the given configuration (execution defaults
    /// to [`ExecutionConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero budget, non-positive
    /// tolerance).
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: MonteCarloConfig) -> Self {
        config
            .validate()
            .expect("invalid Monte Carlo configuration");
        MonteCarlo {
            config,
            exec: ExecutionConfig::default(),
        }
    }

    /// Sets the parallel-execution configuration (thread count changes
    /// wall-clock only, never the estimate).
    pub fn with_execution(mut self, exec: ExecutionConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// The parallel-execution configuration in use.
    pub fn execution(&self) -> ExecutionConfig {
        self.exec
    }
}

impl Estimator for MonteCarlo {
    fn name(&self) -> &str {
        "monte-carlo"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        let dim = problem.dim();
        let executor = self.exec.executor();
        let start_evals = problem.evaluations();
        let mut samples = 0u64;
        let mut failures = 0u64;
        let mut trace = Vec::new();
        let mut converged = false;
        let mut stop = crate::stopping::StopTracker::new();

        while samples < self.config.max_samples {
            let batch = self
                .config
                .batch_size
                .min(self.config.max_samples - samples);
            // Generate sequentially (fixed draw order), evaluate on the
            // executor, reduce in sample order.
            let points: Vec<Vector> = (0..batch)
                .map(|_| rng.standard_normal_vector(dim))
                .collect();
            failures += problem
                .is_failure_batch_on(&executor, &points)
                .into_iter()
                .filter(|&failed| failed)
                .count() as u64;
            samples += batch;

            let estimate = failures as f64 / samples as f64;
            let rel_err = relative_standard_error(failures, samples);
            trace.push(ConvergencePoint {
                evaluations: samples,
                estimate,
                relative_error: rel_err,
            });
            if stop.check(
                failures as f64,
                self.config.min_failures,
                rel_err,
                self.config.target_relative_error,
                self.config.corrected_stopping,
            ) {
                converged = true;
                break;
            }
        }

        let estimate = failures as f64 / samples as f64;
        let standard_error = crate::stopping::reported_standard_error(
            binomial_standard_error(failures, samples),
            failures as f64,
            converged,
            self.config.corrected_stopping,
        );
        EstimatorOutcome {
            result: ExtractionResult {
                method: "monte-carlo".to_string(),
                failure_probability: estimate,
                standard_error,
                sigma_level: ExtractionResult::sigma_from_probability(estimate),
                evaluations: problem.evaluations() - start_evals,
                sampling_evaluations: samples,
                failures_observed: failures,
                converged,
                trace,
            },
            diagnostics: Diagnostics::MonteCarlo,
        }
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        self.config.max_samples = policy.max_evaluations.max(1);
        self.config.target_relative_error = policy.target_relative_error;
        self.config.min_failures = policy.min_failures;
    }

    fn set_execution(&mut self, exec: ExecutionConfig) {
        self.exec = exec;
    }

    fn effective_execution(&self) -> ExecutionConfig {
        self.exec
    }
}

/// Binomial standard error `sqrt(p(1−p)/n)` of a failure fraction.
pub fn binomial_standard_error(failures: u64, samples: u64) -> f64 {
    if samples == 0 {
        return f64::INFINITY;
    }
    let p = failures as f64 / samples as f64;
    (p * (1.0 - p) / samples as f64).sqrt()
}

/// Relative standard error of a failure fraction; `inf` with zero failures.
pub fn relative_standard_error(failures: u64, samples: u64) -> f64 {
    if failures == 0 || samples == 0 {
        return f64::INFINITY;
    }
    let p = failures as f64 / samples as f64;
    binomial_standard_error(failures, samples) / p
}

/// Number of Monte Carlo samples required to reach a target relative standard
/// error for a given failure probability: `N ≈ (1 − p) / (p · ρ²)`.
///
/// This is the "what would brute force cost" column of the comparison tables
/// when running it outright is infeasible.
pub fn required_samples(failure_probability: f64, target_relative_error: f64) -> f64 {
    assert!(
        failure_probability > 0.0 && failure_probability < 1.0,
        "failure probability must be in (0, 1)"
    );
    assert!(
        target_relative_error > 0.0,
        "target relative error must be positive"
    );
    (1.0 - failure_probability)
        / (failure_probability * target_relative_error * target_relative_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    #[test]
    fn estimates_low_sigma_probability_accurately() {
        // β = 2 → P_fail ≈ 2.28e-2: easily reachable by plain MC.
        let ls = LinearLimitState::along_first_axis(4, 2.0);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mc = MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 200_000,
            batch_size: 5_000,
            target_relative_error: 0.05,
            min_failures: 10,
        });
        let mut rng = RngStream::from_seed(11);
        let result = mc.estimate(&problem, &mut rng).result;
        assert!(result.converged);
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.15, "MC estimate off by {rel}");
        assert!(result.failures_observed > 0);
        assert_eq!(result.evaluations, result.sampling_evaluations);
        assert!(!result.trace.is_empty());
        assert!((result.sigma_level - 2.0).abs() < 0.1);
    }

    #[test]
    fn stops_at_budget_for_rare_events() {
        // β = 5 → P_fail ≈ 2.9e-7: a 20k budget cannot converge.
        let ls = LinearLimitState::along_first_axis(3, 5.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mc = MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 20_000,
            batch_size: 5_000,
            target_relative_error: 0.1,
            min_failures: 10,
        });
        let mut rng = RngStream::from_seed(3);
        let result = mc.estimate(&problem, &mut rng).result;
        assert!(!result.converged);
        assert_eq!(result.sampling_evaluations, 20_000);
        assert!(result.failure_probability < 1e-3);
    }

    #[test]
    fn trace_is_monotone_in_evaluations() {
        let ls = LinearLimitState::along_first_axis(2, 1.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mc = MonteCarlo::new(MonteCarloConfig {
            corrected_stopping: true,
            max_samples: 30_000,
            batch_size: 1_000,
            target_relative_error: 0.02,
            min_failures: 10,
        });
        let mut rng = RngStream::from_seed(7);
        let result = mc.estimate(&problem, &mut rng).result;
        for pair in result.trace.windows(2) {
            assert!(pair[1].evaluations > pair[0].evaluations);
        }
    }

    #[test]
    fn reproducible_with_same_seed() {
        let ls = LinearLimitState::along_first_axis(2, 2.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mc = MonteCarlo::new(MonteCarloConfig::with_budget(10_000));
        let a = mc
            .estimate(&problem.fork(), &mut RngStream::from_seed(42))
            .result;
        let b = mc
            .estimate(&problem.fork(), &mut RngStream::from_seed(42))
            .result;
        assert_eq!(a.failure_probability, b.failure_probability);
        assert_eq!(a.failures_observed, b.failures_observed);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(3, 2.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let reference = MonteCarlo::new(MonteCarloConfig::with_budget(20_000))
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(6))
            .result;
        for threads in [2, 8] {
            let parallel = MonteCarlo::new(MonteCarloConfig::with_budget(20_000))
                .with_execution(ExecutionConfig::with_threads(threads))
                .estimate(&problem.fork(), &mut RngStream::from_seed(6))
                .result;
            assert_eq!(parallel, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn error_helpers() {
        assert!(binomial_standard_error(0, 0).is_infinite());
        assert!(relative_standard_error(0, 100).is_infinite());
        assert!((binomial_standard_error(50, 100) - 0.05).abs() < 1e-12);
        // 10% relative error at p = 1e-6 needs ~1e8 samples.
        let n = required_samples(1e-6, 0.1);
        assert!(n > 9.0e7 && n < 1.1e8);
    }

    #[test]
    #[should_panic(expected = "failure probability must be in (0, 1)")]
    fn required_samples_rejects_bad_probability() {
        let _ = required_samples(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid Monte Carlo configuration")]
    fn invalid_config_rejected() {
        let _ = MonteCarlo::new(MonteCarloConfig {
            max_samples: 0,
            ..MonteCarloConfig::default()
        });
    }
}
