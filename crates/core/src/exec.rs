//! Deterministic multi-threaded batch execution.
//!
//! Every estimator in this crate structures its hot loop as
//! *generate-batch → evaluate-batch → reduce*: sample points are generated
//! sequentially (cheap, preserves the published RNG draw order), the expensive
//! metric evaluations fan out over an [`Executor`], and the results are reduced
//! sequentially in sample order. Because the evaluation of each point is a pure
//! function and both generation and reduction happen in a fixed order on the
//! calling thread, **estimates are bit-identical regardless of the thread
//! count** — `GIS_THREADS=1` and `GIS_THREADS=64` produce the same bits, only
//! the wall-clock differs.
//!
//! # The determinism contract
//!
//! * [`Executor::map`] / [`Executor::map_chunks`] split the input into fixed
//!   chunks of [`Executor::chunk_size`] items. Worker threads race only for
//!   *which* chunk to run next; each chunk's results land at the chunk's fixed
//!   output position, so the assembled output is always in input order.
//! * [`Executor::map_rng`] additionally derives one RNG substream per chunk via
//!   [`RngStream::split`], keyed by the chunk index. The substreams depend only
//!   on the parent stream's seed and the chunk index — never on how chunks are
//!   interleaved across threads — so randomized parallel work is reproducible
//!   from a single seed at any thread count.
//!
//! # Picking a thread count
//!
//! [`ExecutionConfig`] is the serializable knob plumbed through estimator
//! configurations and [`crate::analysis::YieldAnalysis`]. Its default resolves
//! the thread count from the `GIS_THREADS` environment variable (falling back
//! to 1, i.e. fully serial), so a deployment picks parallelism once without
//! touching call sites:
//!
//! ```
//! use gis_core::exec::{ExecutionConfig, Executor};
//!
//! let serial = Executor::serial();
//! let four = Executor::new(4);
//! let squares_a = serial.map(&[1.0_f64, 2.0, 3.0], |x| x * x);
//! let squares_b = four.map(&[1.0_f64, 2.0, 3.0], |x| x * x);
//! assert_eq!(squares_a, squares_b); // bit-identical at any thread count
//! assert_eq!(ExecutionConfig::serial().resolved_threads(), 1);
//! ```

use gis_stats::RngStream;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted when [`ExecutionConfig::threads`] is 0.
pub const THREADS_ENV_VAR: &str = "GIS_THREADS";

/// Reads the `GIS_THREADS` environment variable: `Some(n)` for a positive
/// integer value, `None` when unset or invalid. This is the single definition
/// of the variable's contract — reuse it instead of re-parsing the variable.
pub fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Default number of items per work chunk.
pub const DEFAULT_CHUNK_SIZE: usize = 32;

/// Batches that split into at most this many chunks run inline on the calling
/// thread even when worker threads are configured.
///
/// Spawning a thread scope, contending the result mutex and tearing the scope
/// back down costs more than it recovers on tiny batches — the evaluation
/// benchmark's small analytic problems recorded `speedup_vs_1thread` of
/// 0.72–0.96× (pure dispatch overhead) before this cutover existed. With at
/// most two chunks the theoretical win is ≤2× on work that is already cheap,
/// so the executor keeps such batches inline. Inline and scoped execution
/// assemble results in the same input order, so the cutover changes latency
/// only — output stays bit-identical.
pub const INLINE_CHUNK_THRESHOLD: usize = 2;

/// Serializable parallelism configuration carried by every estimator.
///
/// The thread count never changes *what* an estimator computes — only how fast
/// (see the [module documentation](self) for the determinism contract) — so
/// this config deliberately lives outside the statistical fields of each
/// method's configuration and is excluded from nothing: two configs with
/// different thread counts still describe the same estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Number of worker threads. `0` means "resolve from the `GIS_THREADS`
    /// environment variable at run time, falling back to 1 (serial)".
    pub threads: usize,
    /// Number of points per work chunk handed to a worker thread. Must be
    /// positive. Results are invariant to this value for the plain batch
    /// methods; only [`Executor::map_rng`] substreams are keyed by chunk.
    pub chunk_size: usize,
}

impl Default for ExecutionConfig {
    /// Auto mode: threads from `GIS_THREADS` (default 1), default chunk size.
    fn default() -> Self {
        ExecutionConfig {
            threads: 0,
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl ExecutionConfig {
    /// Strictly serial execution (one thread, ignoring `GIS_THREADS`).
    pub fn serial() -> Self {
        ExecutionConfig {
            threads: 1,
            ..ExecutionConfig::default()
        }
    }

    /// A fixed thread count (`0` restores auto/environment resolution).
    pub fn with_threads(threads: usize) -> Self {
        ExecutionConfig {
            threads,
            ..ExecutionConfig::default()
        }
    }

    /// Auto mode: resolve the thread count from `GIS_THREADS` at run time.
    pub fn from_env() -> Self {
        ExecutionConfig::default()
    }

    /// Sets the work chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// The effective thread count: `threads` if non-zero, otherwise the value
    /// of the `GIS_THREADS` environment variable, otherwise 1.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        threads_from_env().unwrap_or(1)
    }

    /// Builds the executor described by this configuration.
    pub fn executor(&self) -> Executor {
        Executor::new(self.resolved_threads()).with_chunk_size(self.chunk_size.max(1))
    }
}

/// A scoped-thread work-chunking executor with deterministic output order.
///
/// See the [module documentation](self) for the determinism contract. The
/// executor holds no threads between calls: each `map` spawns scoped workers
/// (`std::thread::scope`), which keeps it trivially `Send + Sync` and free of
/// shutdown hazards; for the simulation-bound batches it serves, the spawn cost
/// is noise.
#[derive(Debug, Clone)]
pub struct Executor {
    threads: usize,
    chunk_size: usize,
}

impl Default for Executor {
    /// Equivalent to [`ExecutionConfig::default`]: threads from `GIS_THREADS`.
    fn default() -> Self {
        ExecutionConfig::default().executor()
    }
}

impl Executor {
    /// Creates an executor with the given worker thread count (minimum 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }

    /// A strictly serial executor.
    pub fn serial() -> Self {
        Executor::new(1)
    }

    /// An executor with the thread count resolved from `GIS_THREADS`
    /// (falling back to serial).
    pub fn from_env() -> Self {
        ExecutionConfig::from_env().executor()
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of items per work chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Sets the work chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is 0.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// The output is bit-identical regardless of the thread count (and of the
    /// chunk size) as long as `f` is a pure function of its argument.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_chunks(items, |chunk| chunk.iter().map(&f).collect())
    }

    /// Maps a chunk-at-a-time function over `items`, returning the
    /// concatenated results in input order.
    ///
    /// `f` receives consecutive sub-slices of `items` (each of at most
    /// [`Executor::chunk_size`] elements) and must return exactly one result
    /// per input element. This is the primitive behind
    /// [`crate::FailureProblem::metrics_batch_on`]: handing whole chunks to a
    /// [`crate::PerformanceModel::evaluate_batch`] override lets the model
    /// hoist per-batch setup (netlist construction, solver structure) while the
    /// executor supplies the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a different number of results than the chunk it
    /// was handed. A panic raised by `f` itself is contained per chunk on the
    /// worker threads and re-raised on the calling thread — always the
    /// panic of the *first* failing chunk in input order, so a panicking
    /// workload fails deterministically at any thread count.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn map_chunks<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> Vec<R> + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let chunks: Vec<&[T]> = items.chunks(self.chunk_size).collect();
        let run_chunk = |chunk: &[T]| {
            let out = f(chunk);
            assert_eq!(
                out.len(),
                chunk.len(),
                "chunk function must return one result per input item"
            );
            out
        };
        // Serial executors and sub-threshold batches skip the scoped-thread
        // machinery entirely; see [`INLINE_CHUNK_THRESHOLD`].
        if self.threads == 1 || chunks.len() <= INLINE_CHUNK_THRESHOLD {
            return chunks.into_iter().flat_map(run_chunk).collect();
        }

        // Fault containment: each chunk runs behind `catch_unwind`, so one
        // panicking chunk no longer tears down the scope (and poisons the
        // slot mutex) while sibling workers are mid-chunk. Every chunk still
        // executes; the first failure *in input order* is re-raised on the
        // calling thread afterwards, so a panicking workload fails
        // deterministically at any thread count — and a caller that catches
        // it (the sweep/serve containment plane) observes a fully quiesced
        // executor. `AssertUnwindSafe` is justified because `f` is shared
        // immutably and the panic payload is propagated, never swallowed.
        type CaughtChunk<R> = std::thread::Result<Vec<R>>;
        let slots: Mutex<Vec<Option<CaughtChunk<R>>>> =
            Mutex::new((0..chunks.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(chunks.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= chunks.len() {
                        break;
                    }
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_chunk(chunks[index])
                    }));
                    // Workers cannot panic outside the caught closure, so the
                    // mutex is never poisoned; recover defensively anyway.
                    let mut guard = match slots.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard[index] = Some(out);
                });
            }
        });
        let results = match slots.into_inner() {
            Ok(results) => results,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut out = Vec::with_capacity(items.len());
        for slot in results {
            match slot.expect("every chunk was executed") // gis-analyze: allow(panic-site, the worker loop fills every slot before the scope joins, by construction)
            {
                Ok(chunk) => out.extend(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Runs `count` independent coarse-grained tasks on the worker threads,
    /// returning their results in task order.
    ///
    /// Unlike [`Executor::map`] — whose chunking amortizes per-item dispatch
    /// for fine-grained metric evaluations — every task here is its own work
    /// unit regardless of the configured [`Executor::chunk_size`], so a slow
    /// task never holds hostages queued behind it in the same chunk. This is
    /// the dispatch primitive of the matrix scheduler in
    /// [`crate::sweep`]/[`crate::analysis::YieldAnalysis::run_on`], where one
    /// "task" is an entire (problem, estimator) extraction. `f` must be a pure
    /// function of the task index for the output to be deterministic; the
    /// worker assignment is not.
    pub fn map_tasks<R, F>(&self, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        Executor {
            threads: self.threads,
            chunk_size: 1,
        }
        .map(&indices, |&i| f(i))
    }

    /// Produces `count` results from a randomized per-item function, with one
    /// RNG substream per chunk derived via [`RngStream::split`].
    ///
    /// Chunk `c` (items `c·chunk_size ..`) draws from `rng.split(c)`; `f` is
    /// called as `f(&mut substream, item_index)` with the items of a chunk in
    /// ascending order. Because the substream assignment depends only on the
    /// parent stream's seed and the chunk index, the output is bit-identical
    /// at every thread count. (It *does* depend on the chunk size, which is why
    /// the estimators pin their randomness to the sequential caller-side
    /// streams instead — this entry point serves workloads where generation
    /// itself must scale, e.g. raw sampling throughput benchmarks.)
    pub fn map_rng<R, F>(&self, rng: &RngStream, count: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut RngStream, usize) -> R + Sync,
    {
        let indices: Vec<usize> = (0..count).collect();
        self.map_chunks(&indices, |chunk| {
            let chunk_index = chunk[0] / self.chunk_size;
            let mut substream = rng.split(chunk_index as u64);
            chunk.iter().map(|&i| f(&mut substream, i)).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolution_and_builders() {
        assert_eq!(ExecutionConfig::serial().resolved_threads(), 1);
        assert_eq!(ExecutionConfig::with_threads(7).resolved_threads(), 7);
        let cfg = ExecutionConfig::with_threads(3).with_chunk_size(5);
        assert_eq!(cfg.chunk_size, 5);
        let exec = cfg.executor();
        assert_eq!(exec.threads(), 3);
        assert_eq!(exec.chunk_size(), 5);
        // threads = 0 resolves from the environment; without the variable the
        // fallback is serial. (The variable is not set in unit-test runs unless
        // the whole suite runs under GIS_THREADS, in which case any positive
        // value is acceptable.)
        assert!(ExecutionConfig::default().resolved_threads() >= 1);
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn map_preserves_input_order_at_any_thread_count() {
        let items: Vec<f64> = (0..997).map(|i| i as f64).collect();
        let expected: Vec<f64> = items.iter().map(|x| x * x + 1.0).collect();
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(threads).with_chunk_size(16);
            assert_eq!(exec.map(&items, |x| x * x + 1.0), expected);
        }
    }

    #[test]
    fn map_chunks_hands_out_fixed_chunks() {
        let items: Vec<u32> = (0..100).collect();
        let exec = Executor::new(4).with_chunk_size(7);
        let sizes = exec.map_chunks(&items, |chunk| vec![chunk.len() as u32; chunk.len()]);
        // Every item reports the size of the chunk it travelled in: chunks are
        // 7 items except the last (100 = 14*7 + 2).
        assert_eq!(sizes.len(), 100);
        assert!(sizes[..98].iter().all(|&s| s == 7));
        assert_eq!(sizes[98], 2);
        assert_eq!(sizes[99], 2);
    }

    #[test]
    fn map_rng_is_thread_count_invariant() {
        let rng = RngStream::from_seed(42);
        let reference = Executor::new(1)
            .with_chunk_size(10)
            .map_rng(&rng, 137, |stream, _| stream.standard_normal());
        for threads in [2, 4, 8] {
            let run = Executor::new(threads)
                .with_chunk_size(10)
                .map_rng(&rng, 137, |stream, _| stream.standard_normal());
            let same = reference
                .iter()
                .zip(&run)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "map_rng diverged at {threads} threads");
        }
    }

    #[test]
    fn map_rng_substreams_depend_only_on_seed_and_chunk() {
        // Advancing the parent stream does not perturb the substreams: split
        // derives from the seed, not the stream position.
        let mut rng = RngStream::from_seed(7);
        let before = Executor::serial().map_rng(&rng, 20, |s, _| s.uniform());
        let _ = rng.uniform();
        let after = Executor::serial().map_rng(&rng, 20, |s, _| s.uniform());
        assert_eq!(before, after);
    }

    #[test]
    fn map_tasks_is_order_preserving_and_thread_invariant() {
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 3, 8] {
            // A deliberately large chunk size must not batch tasks together.
            let exec = Executor::new(threads).with_chunk_size(64);
            assert_eq!(exec.map_tasks(57, |i| i * i), expected);
        }
        let exec = Executor::new(4);
        let empty: Vec<usize> = exec.map_tasks(0, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn sub_threshold_batches_run_inline_and_match_scoped_output() {
        // Batch sizes straddling the inline cutover (1, 2 and 3 chunks at
        // chunk_size 4) produce identical results on a threaded executor;
        // the ≤-threshold sizes never spawn a scope.
        for len in [3usize, 8, 12] {
            let items: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let expected: Vec<f64> = items.iter().map(|x| 3.0 * x - 1.0).collect();
            let exec = Executor::new(4).with_chunk_size(4);
            assert_eq!(exec.map(&items, |x| 3.0 * x - 1.0), expected);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let exec = Executor::new(4);
        let out: Vec<f64> = exec.map(&[] as &[f64], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "one result per input item")]
    fn miscounted_chunk_results_are_rejected() {
        let exec = Executor::serial();
        let _ = exec.map_chunks(&[1, 2, 3], |_| vec![0u8]);
    }

    #[test]
    fn scoped_panic_is_contained_and_first_failure_wins() {
        // Two chunks panic (indices 3 and 7 at chunk_size 1); the panic that
        // reaches the caller is always the first one in *input* order,
        // regardless of which worker hit it first.
        for threads in [2, 4, 8] {
            let exec = Executor::new(threads).with_chunk_size(1);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                exec.map(&(0..16).collect::<Vec<usize>>(), |&i| {
                    if i == 3 || i == 7 {
                        panic!("chunk {i} failed");
                    }
                    i
                })
            }));
            let payload = caught.expect_err("panicking map must re-raise");
            let message = payload
                .downcast_ref::<String>()
                .expect("panic payload is a string");
            assert_eq!(message, "chunk 3 failed");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = Executor::serial().with_chunk_size(0);
    }
}
