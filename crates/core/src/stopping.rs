//! The sequential stopping rule shared by the sampling estimators, with the
//! first-passage correction.
//!
//! # The bug the correction fixes
//!
//! Every sampling estimator (Monte Carlo, the mean-shift IS methods,
//! spherical sampling) checks after each batch whether the *measured*
//! relative standard error has reached the target and stops at the first
//! batch where it has. The measured relative error is itself a noisy
//! estimate: with `k` observed failures its own relative standard deviation
//! is ≈ `1/√(2k)` (the delta-method dispersion of a binomial/weighted
//! standard-error estimate). Stopping at the *first passage* below the
//! target therefore preferentially selects downward fluctuations of the
//! error estimate — the run halts precisely when the error bar happens to
//! look small — so the reported confidence intervals are systematically
//! narrower than the truth and empirical coverage sits below nominal. The
//! calibration harness (PR 4) measured and documented this as "mildly
//! anti-conservative" under the production policy (±10% target, ≥20
//! failures); see `bench_calibration`.
//!
//! # The corrected rule
//!
//! Two changes, both scaled by the same first-passage dispersion factor
//! `c(k) = 1 + 1/√(2k)`:
//!
//! 1. **Stop later**: require `rel_err · c(k) ≤ target` instead of
//!    `rel_err ≤ target`, i.e. demand the target hold even if the measured
//!    error is one standard deviation of itself too optimistic.
//! 2. **Report honestly**: on an early stop, inflate the reported standard
//!    error by `c(k)` — the reported bar then covers the selection bias the
//!    optional stop introduced.
//!
//! A budget-exhausted (non-converged) run took no optional stop, so its
//! error bar is left untouched. The legacy rule remains available behind
//! the `corrected_stopping: false` toggle of each estimator configuration
//! so the calibration harness can measure the before/after.
//!
//! # Persistence
//!
//! Inflating by `c(k)` covers the *typical* downward fluctuation of the
//! error estimate, but for weighted importance sampling the estimate's own
//! dispersion can be far heavier-tailed than `1/√(2k)` suggests (a
//! misaligned proposal makes the variance estimator itself high-variance).
//! The corrected rule therefore also requires the criterion to hold on
//! **two consecutive** convergence checks ([`StopTracker`]): a genuinely
//! converged run passes back-to-back batches at the cost of one extra
//! batch, while a single lucky dip of the error estimate no longer stops
//! the run. The legacy rule stops at first passage, as it always did.
//!
//! # Which failure count `k`?
//!
//! For unweighted samplers (Monte Carlo, spherical) `k` is the raw failure
//! count. For weighted importance sampling the raw count overstates the
//! information in the error bar when the weights are degenerate, so the
//! corrected rule passes the *effective* failure count — the Kish
//! effective sample size of the failing weights
//! ([`crate::IsAccumulator::effective_failures`]), which equals the raw
//! count for equal weights and shrinks with weight spread. The legacy
//! toggle keeps the raw count everywhere, preserving the historical
//! behavior the before/after comparison documents.

/// First-passage dispersion factor `c(k) = 1 + 1/√(2k)`: one relative
/// standard deviation of the error-bar estimate itself at `k` failures.
///
/// `k` is `f64` because the corrected weighted-IS rule feeds an *effective*
/// failure count (a Kish effective sample size); unweighted samplers pass
/// their integer count exactly. `k ≤ 0` yields `inf` (an error bar based
/// on zero failures carries no information), which composes correctly with
/// the stopping criterion — an infinite inflated error never passes a
/// finite target.
pub fn first_passage_inflation(failures: f64) -> f64 {
    if failures <= 0.0 {
        return f64::INFINITY;
    }
    1.0 + 1.0 / (2.0 * failures).sqrt()
}

/// The shared sequential stopping criterion.
///
/// Returns `true` when the run may stop early: at least `min_failures`
/// observed failures and the (corrected) relative standard error at or
/// below `target`. With `corrected = false` this is the legacy
/// first-passage rule the calibration harness flagged as anti-conservative.
pub fn should_stop(
    failures: f64,
    min_failures: u64,
    relative_error: f64,
    target: f64,
    corrected: bool,
) -> bool {
    if failures < min_failures as f64 {
        return false;
    }
    let effective = if corrected {
        relative_error * first_passage_inflation(failures)
    } else {
        relative_error
    };
    effective <= target
}

/// Per-run sequential stopping state: the corrected rule stops only after
/// the criterion holds on two consecutive checks, the legacy rule at first
/// passage. One tracker per estimation run, fed once per batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct StopTracker {
    passed_previous: bool,
}

impl StopTracker {
    /// A fresh tracker (no checks passed yet).
    pub fn new() -> Self {
        StopTracker::default()
    }

    /// Feeds one convergence check; returns `true` when the run may stop.
    ///
    /// Legacy (`corrected = false`): stop at the first passing check.
    /// Corrected: stop at the second *consecutive* passing check; a failing
    /// check resets the persistence requirement.
    pub fn check(
        &mut self,
        failures: f64,
        min_failures: u64,
        relative_error: f64,
        target: f64,
        corrected: bool,
    ) -> bool {
        let pass = should_stop(failures, min_failures, relative_error, target, corrected);
        if !corrected {
            return pass;
        }
        let stop = pass && self.passed_previous;
        self.passed_previous = pass;
        stop
    }
}

/// The standard error an early-stopped run must report: inflated by
/// `c(k)` when the corrected rule is active, untouched otherwise (and
/// untouched for runs that exhausted their budget without stopping).
pub fn reported_standard_error(
    standard_error: f64,
    failures: f64,
    converged: bool,
    corrected: bool,
) -> f64 {
    if converged && corrected {
        standard_error * first_passage_inflation(failures)
    } else {
        standard_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_decays_with_failures() {
        assert!(first_passage_inflation(0.0).is_infinite());
        assert!((first_passage_inflation(2.0) - (1.0 + 0.5)).abs() < 1e-12);
        assert!((first_passage_inflation(50.0) - 1.1).abs() < 1e-12);
        assert!(first_passage_inflation(20.0) > first_passage_inflation(200.0));
        assert!(first_passage_inflation(1_000_000.0) < 1.001);
    }

    #[test]
    fn corrected_rule_is_strictly_stricter() {
        // A measured error exactly at the target passes the legacy rule but
        // not the corrected one.
        assert!(should_stop(20.0, 20, 0.1, 0.1, false));
        assert!(!should_stop(20.0, 20, 0.1, 0.1, true));
        // With enough margin both rules pass.
        assert!(should_stop(20.0, 20, 0.08, 0.1, false));
        assert!(should_stop(20.0, 20, 0.08, 0.1, true));
        // The min-failures guard dominates either way — including a
        // fractional effective count just under the floor.
        assert!(!should_stop(5.0, 20, 0.01, 0.1, false));
        assert!(!should_stop(19.4, 20, 0.01, 0.1, true));
    }

    #[test]
    fn corrected_threshold_converges_to_legacy() {
        // As failures grow the correction vanishes: the corrected rule
        // accepts errors approaching the full target.
        let target = 0.1;
        let k = 500_000.0;
        let accepted = target / first_passage_inflation(k);
        assert!(accepted > 0.099);
        assert!(should_stop(k, 20, accepted, target, true));
    }

    #[test]
    fn tracker_requires_two_consecutive_passes_when_corrected() {
        let mut t = StopTracker::new();
        // A single dip below the target is not enough...
        assert!(!t.check(50.0, 20, 0.05, 0.1, true));
        // ...a failing check resets the persistence...
        assert!(!t.check(50.0, 20, 0.2, 0.1, true));
        assert!(!t.check(60.0, 20, 0.05, 0.1, true));
        // ...and the second consecutive pass stops the run.
        assert!(t.check(70.0, 20, 0.05, 0.1, true));

        // Legacy mode stops at first passage, exactly as before.
        let mut legacy = StopTracker::new();
        assert!(legacy.check(50.0, 20, 0.05, 0.1, false));
    }

    #[test]
    fn reported_error_inflated_only_on_corrected_early_stop() {
        let se = 0.02;
        let inflated = reported_standard_error(se, 25.0, true, true);
        assert!((inflated - se * first_passage_inflation(25.0)).abs() < 1e-15);
        assert_eq!(reported_standard_error(se, 25.0, true, false), se);
        assert_eq!(reported_standard_error(se, 25.0, false, true), se);
        assert_eq!(reported_standard_error(se, 0.0, false, true), se);
    }
}
