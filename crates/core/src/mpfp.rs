//! Gradient-guided search for the most-probable failure point (MPFP).
//!
//! The MPFP (also called the design point or β-point in reliability theory) is
//! the failing point closest to the origin of the whitened variation space:
//!
//! `z* = argmin ‖z‖  subject to  g(z) ≥ 0`
//!
//! where `g` is the signed failure margin. Its norm β = ‖z*‖ is the dominant
//! factor of the failure probability, and centering an importance-sampling
//! proposal at `z*` is what turns a 10⁸-sample brute-force problem into a
//! few-thousand-sample one.
//!
//! This module implements the *gradient* search that gives Gradient Importance
//! Sampling its name: finite-difference gradients of the simulator metric drive
//! a damped HL–RF (Hasofer–Lind / Rackwitz–Fiessler) iteration. The
//! derivative-free alternative used by the minimum-norm baseline lives in
//! [`crate::baselines::mnis`].

use crate::exec::Executor;
use crate::model::FailureProblem;
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Configuration of the gradient MPFP search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpfpConfig {
    /// Finite-difference step (in sigmas) used for gradient estimation.
    pub finite_difference_step: f64,
    /// Maximum number of HL–RF iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the change of the iterate (in sigmas).
    pub tolerance: f64,
    /// Maximum movement per iteration (in sigmas), damping the HL–RF update.
    pub max_step: f64,
    /// Hard cap on metric evaluations spent by the search.
    pub max_evaluations: u64,
}

impl Default for MpfpConfig {
    fn default() -> Self {
        MpfpConfig {
            finite_difference_step: 0.05,
            max_iterations: 50,
            tolerance: 0.02,
            max_step: 1.5,
            max_evaluations: 5_000,
        }
    }
}

impl MpfpConfig {
    fn validate(&self) -> Result<(), String> {
        if !(self.finite_difference_step > 0.0) {
            return Err("finite difference step must be positive".to_string());
        }
        if self.max_iterations == 0 {
            return Err("at least one iteration is required".to_string());
        }
        if !(self.tolerance > 0.0) || !(self.max_step > 0.0) {
            return Err("tolerance and max step must be positive".to_string());
        }
        Ok(())
    }
}

/// One iteration of the MPFP search, recorded for the convergence-trace figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpfpIteration {
    /// Iteration index (0 = initial point).
    pub iteration: usize,
    /// Distance of the iterate from the origin, in sigmas.
    pub beta: f64,
    /// Failure margin at the iterate (≥ 0 means failing).
    pub margin: f64,
    /// Norm of the finite-difference gradient at the iterate.
    pub gradient_norm: f64,
    /// Cumulative metric evaluations after this iteration.
    pub evaluations: u64,
}

/// Result of an MPFP search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpfpResult {
    /// The located most-probable failure point (whitened coordinates).
    pub mpfp: Vector,
    /// Its distance from the origin in sigmas (the reliability index β).
    pub beta: f64,
    /// Failure margin at the returned point.
    pub margin: f64,
    /// Whether the iteration converged within the budget.
    pub converged: bool,
    /// Number of HL–RF iterations performed.
    pub iterations: usize,
    /// Metric evaluations spent by the search.
    pub evaluations: u64,
    /// Per-iteration trace.
    pub trace: Vec<MpfpIteration>,
}

/// Gradient-guided MPFP search.
#[derive(Debug, Clone, Default)]
pub struct GradientMpfpSearch {
    config: MpfpConfig,
}

impl GradientMpfpSearch {
    /// Creates a search with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: MpfpConfig) -> Self {
        config.validate().expect("invalid MPFP configuration");
        GradientMpfpSearch { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MpfpConfig {
        &self.config
    }

    /// Estimates the gradient of the failure margin at `z` by forward finite
    /// differences (`dim + 1` evaluations; the margin at `z` is returned too).
    ///
    /// The `dim` forward probes are independent simulator calls and are
    /// evaluated as one batch on `exec` — for a simulation-backed metric this
    /// is where the search's wall-clock goes.
    fn margin_and_gradient(
        &self,
        problem: &FailureProblem,
        z: &Vector,
        exec: &Executor,
    ) -> (f64, Vector) {
        let h = self.config.finite_difference_step;
        let margin = problem.failure_margin(z);
        let mut gradient = Vector::zeros(z.len());
        // A censored metric (e.g. the simulation window) produces an infinite
        // or constant margin; finite differences against it are meaningless, so
        // treat non-finite margins as "no gradient information here". (The
        // probes are skipped entirely, keeping the evaluation count identical
        // to the historical scalar loop.)
        if !margin.is_finite() {
            return (margin, gradient);
        }
        let probes: Vec<Vector> = (0..z.len())
            .map(|i| {
                let mut z_step = z.clone();
                z_step[i] += h;
                z_step
            })
            .collect();
        let forwards = problem.failure_margins_batch_on(exec, &probes);
        for (i, forward) in forwards.into_iter().enumerate() {
            gradient[i] = if forward.is_finite() {
                (forward - margin) / h
            } else {
                // Stepping into a censored region: strong positive slope.
                1.0 / h
            };
        }
        (margin, gradient)
    }

    /// Runs the search from the origin with the environment-resolved executor
    /// (`GIS_THREADS`, serial when unset). See
    /// [`GradientMpfpSearch::search_on`].
    pub fn search(&self, problem: &FailureProblem, rng: &mut RngStream) -> MpfpResult {
        self.search_on(problem, rng, &Executor::from_env())
    }

    /// Runs the search from the origin, batching the per-iteration gradient
    /// probes on `exec`. The random stream is only used to break out of
    /// zero-gradient plateaus (censored regions), so the search is
    /// deterministic whenever the metric is smooth — and bit-identical at any
    /// thread count either way.
    pub fn search_on(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        exec: &Executor,
    ) -> MpfpResult {
        self.search_from_on(problem, Vector::zeros(problem.dim()), rng, exec)
    }

    /// Runs the search from an arbitrary starting iterate instead of the
    /// origin — the warm-start entry point used when a sweep neighbor's
    /// converged MPFP is available. The HL–RF iteration is identical to
    /// [`search_on`](GradientMpfpSearch::search_on) (which delegates here
    /// with a zero start), so a zero `start` is bit-identical to the blind
    /// search; a good `start` near the true MPFP converges in a small number
    /// of iterations and skips most of the gradient probes.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn search_from_on(
        &self,
        problem: &FailureProblem,
        start: Vector,
        rng: &mut RngStream,
        exec: &Executor,
    ) -> MpfpResult {
        let dim = problem.dim();
        debug_assert_eq!(start.len(), dim, "start point dimension mismatch");
        let start_evals = problem.evaluations();
        let mut z = start;
        let mut trace = Vec::new();
        let mut converged = false;
        let mut iterations = 0;
        let mut last_margin = f64::NEG_INFINITY;

        for iteration in 0..self.config.max_iterations {
            iterations = iteration + 1;
            if problem.evaluations() - start_evals >= self.config.max_evaluations {
                break;
            }
            let (margin, gradient) = self.margin_and_gradient(problem, &z, exec);
            last_margin = margin;
            let gradient_norm = gradient.norm();
            trace.push(MpfpIteration {
                iteration,
                beta: z.norm(),
                margin,
                gradient_norm,
                evaluations: problem.evaluations() - start_evals,
            });

            if gradient_norm < 1e-12 {
                // Plateau (deep inside a censored region or a totally flat
                // passing region): take a random unit step to regain slope.
                let direction = gis_stats::uniform_on_sphere(rng, dim);
                z = z.axpy(self.config.max_step, &direction).expect("same dim");
                continue;
            }

            // Damped HL–RF update:
            // z_new = [ (∇g·z − g) / ‖∇g‖² ] ∇g
            let projection =
                (gradient.dot(&z).expect("same dim") - margin) / (gradient_norm * gradient_norm);
            let target = gradient.scaled(projection);
            let mut step = &target - &z;
            let step_norm = step.norm();
            if step_norm > self.config.max_step {
                step.scale_in_place(self.config.max_step / step_norm);
            }
            let z_new = &z + &step;
            let moved = (&z_new - &z).norm();
            z = z_new;

            if moved < self.config.tolerance {
                converged = true;
                // Record the final point.
                let (final_margin, final_gradient) = self.margin_and_gradient(problem, &z, exec);
                last_margin = final_margin;
                trace.push(MpfpIteration {
                    iteration: iteration + 1,
                    beta: z.norm(),
                    margin: final_margin,
                    gradient_norm: final_gradient.norm(),
                    evaluations: problem.evaluations() - start_evals,
                });
                break;
            }
        }

        // Make sure the returned point actually fails: nudge it outward along
        // its own direction until the margin is non-negative (at most a few
        // small pushes; keeps the IS proposal centred inside the failure
        // region rather than marginally outside it).
        let mut margin = if last_margin.is_finite() {
            problem.failure_margin(&z)
        } else {
            last_margin
        };
        let mut pushes = 0;
        while margin.is_finite() && margin < 0.0 && pushes < 20 && z.norm() > 1e-9 {
            z = z.scaled(1.0 + 0.01);
            margin = problem.failure_margin(&z);
            pushes += 1;
        }

        MpfpResult {
            beta: z.norm(),
            margin,
            mpfp: z,
            converged,
            iterations,
            evaluations: problem.evaluations() - start_evals,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState, QuadraticLimitState};

    #[test]
    fn finds_exact_mpfp_of_linear_limit_state() {
        for beta in [3.0, 4.0, 5.0] {
            let ls = LinearLimitState::new(Vector::from_slice(&[1.0, 2.0, -1.0, 0.5]), beta);
            let exact = ls.exact_mpfp();
            let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
            let search = GradientMpfpSearch::new(MpfpConfig::default());
            let mut rng = RngStream::from_seed(1);
            let result = search.search(&problem, &mut rng);
            assert!(result.converged, "did not converge for beta {beta}");
            assert!(
                (result.beta - beta).abs() < 0.1,
                "beta estimate {} vs {beta}",
                result.beta
            );
            assert!(
                (&result.mpfp - &exact).norm() < 0.2,
                "MPFP location error {}",
                (&result.mpfp - &exact).norm()
            );
            assert!(result.margin >= -1e-9, "returned point should fail");
            // A linear problem needs only a handful of iterations.
            assert!(result.iterations <= 10);
            assert!(result.evaluations < 500);
            assert!(!result.trace.is_empty());
        }
    }

    #[test]
    fn handles_curved_limit_state() {
        let q = QuadraticLimitState::new(5, 4.0, 0.08);
        let problem = FailureProblem::from_model(q, QuadraticLimitState::spec());
        let search = GradientMpfpSearch::new(MpfpConfig::default());
        let mut rng = RngStream::from_seed(2);
        let result = search.search(&problem, &mut rng);
        assert!(result.converged);
        // The curved boundary still has its closest point near z0 = beta along
        // the first axis (curvature only helps), so beta <= 4.
        assert!(
            result.beta <= 4.05 && result.beta > 3.0,
            "beta {}",
            result.beta
        );
        assert!(result.mpfp[0] > 3.0);
    }

    #[test]
    fn trace_is_recorded_and_evaluations_counted() {
        let ls = LinearLimitState::along_first_axis(6, 4.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let search = GradientMpfpSearch::new(MpfpConfig::default());
        let mut rng = RngStream::from_seed(3);
        let result = search.search(&problem, &mut rng);
        assert_eq!(problem.evaluations(), result.evaluations);
        // The trace marches towards the failure plane: beta grows towards 4.5.
        let first = result.trace.first().unwrap();
        let last = result.trace.last().unwrap();
        assert!(first.beta < last.beta);
        assert!(last.margin.abs() < 0.5);
        for pair in result.trace.windows(2) {
            assert!(pair[1].evaluations >= pair[0].evaluations);
        }
    }

    #[test]
    fn budget_is_respected() {
        let ls = LinearLimitState::along_first_axis(10, 5.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let search = GradientMpfpSearch::new(MpfpConfig {
            max_evaluations: 60,
            ..MpfpConfig::default()
        });
        let mut rng = RngStream::from_seed(4);
        let result = search.search(&problem, &mut rng);
        // 10-dimensional gradient costs 11 evaluations per iteration; the cap
        // allows only a few iterations (plus the final failure nudges).
        assert!(result.evaluations <= 60 + 11 + 10);
    }

    #[test]
    fn search_is_bit_identical_across_thread_counts() {
        let q = QuadraticLimitState::new(6, 4.0, 0.05);
        let problem = FailureProblem::from_model(q, QuadraticLimitState::spec());
        let search = GradientMpfpSearch::new(MpfpConfig::default());
        let reference = search.search_on(
            &problem.fork(),
            &mut RngStream::from_seed(3),
            &Executor::serial(),
        );
        for threads in [2, 8] {
            let parallel = search.search_on(
                &problem.fork(),
                &mut RngStream::from_seed(3),
                &Executor::new(threads).with_chunk_size(2),
            );
            assert_eq!(parallel, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "invalid MPFP configuration")]
    fn invalid_config_rejected() {
        let _ = GradientMpfpSearch::new(MpfpConfig {
            finite_difference_step: 0.0,
            ..MpfpConfig::default()
        });
    }

    #[test]
    fn plateau_fallback_still_returns_a_point() {
        // A metric that is completely flat (censored) in the passing region and
        // fails only beyond 3.5 sigma along the first axis.
        let model = crate::model::FnModel::new(
            "censored",
            3,
            |z: &Vector| {
                if z[0] > 3.5 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let problem = FailureProblem::from_model(model, crate::model::Spec::UpperLimit(0.5));
        let search = GradientMpfpSearch::new(MpfpConfig {
            max_iterations: 120,
            max_evaluations: 20_000,
            ..MpfpConfig::default()
        });
        let mut rng = RngStream::from_seed(9);
        let result = search.search(&problem, &mut rng);
        // The random-walk fallback cannot guarantee the exact MPFP, but it must
        // return a finite point without panicking.
        assert!(result.mpfp.is_finite());
        assert!(result.beta >= 0.0);
    }
}
