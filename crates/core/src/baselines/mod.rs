//! Baseline high-sigma extraction methods the paper compares against.
//!
//! * [`mnis`] — minimum-norm importance sampling: derivative-free presampling
//!   locates the failure region, the minimum-norm failing sample becomes the
//!   mean-shift centre.
//! * [`spherical`] — spherical (shell) sampling: radial bisection along random
//!   directions maps the failure boundary, the chi-distribution tail integrates
//!   it into a failure probability.
//! * [`sss`] — scaled-sigma sampling: Monte Carlo at artificially inflated
//!   sigma, extrapolated back to nominal sigma through a regression model.

pub mod mnis;
pub mod spherical;
pub mod sss;

pub use mnis::{MinimumNormIs, MnisConfig, MnisSearchOutcome};
pub use spherical::{SphericalSampling, SphericalSamplingConfig};
pub use sss::{ScalePoint, ScaledSigmaSampling, SssConfig};
