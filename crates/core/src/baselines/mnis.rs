//! Minimum-norm importance sampling (MNIS) baseline.
//!
//! The classic optimization-based mean-shift method (Kanj / Joshi / Nassif
//! style): a derivative-free presampling phase scans the variation space for
//! failing samples, the failing sample with the smallest norm is refined by a
//! radial bisection towards the origin, and a mean-shift Gaussian centred at
//! that point drives the importance-sampling phase.
//!
//! The difference from Gradient Importance Sampling is precisely the search
//! phase: MNIS spends a large, dimension-dependent presampling budget to find
//! the failure region blindly, while GIS walks there along the gradient in a
//! handful of simulator calls. The sampling phases are identical, so the
//! comparison isolates the value of gradient information.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome, WarmStart};
use crate::exec::{ExecutionConfig, Executor};
use crate::importance::{
    run_importance_sampling, ImportanceSamplingConfig, IsDiagnostics, Proposal,
};
use crate::model::FailureProblem;
use crate::result::ExtractionResult;
use gis_linalg::Vector;
use gis_stats::{sampling::latin_hypercube_normal, RngStream};
use serde::{Deserialize, Serialize};

/// Configuration of the MNIS baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MnisConfig {
    /// Number of presampling points per round.
    pub presamples_per_round: usize,
    /// Scale factors applied to the presampling cloud, tried in order until a
    /// failing sample is found.
    pub presample_scales: Vec<f64>,
    /// Radial bisection steps used to refine the minimum-norm failing sample
    /// towards the failure boundary.
    pub bisection_steps: usize,
    /// Sampling-phase configuration (shared with the other IS methods).
    pub sampling: ImportanceSamplingConfig,
    /// Defensive mixture fraction for the sampling phase (0 = pure mean shift).
    pub defensive_fraction: f64,
}

impl Default for MnisConfig {
    fn default() -> Self {
        MnisConfig {
            presamples_per_round: 2_000,
            presample_scales: vec![1.5, 2.0, 2.5, 3.0],
            bisection_steps: 12,
            sampling: ImportanceSamplingConfig::default(),
            defensive_fraction: 0.1,
        }
    }
}

impl MnisConfig {
    fn validate(&self) -> Result<(), String> {
        if self.presamples_per_round == 0 || self.presample_scales.is_empty() {
            return Err("presampling needs a positive budget and at least one scale".to_string());
        }
        if self.presample_scales.iter().any(|&s| !(s > 0.0)) {
            return Err("presample scales must be positive".to_string());
        }
        if !(0.0..1.0).contains(&self.defensive_fraction) {
            return Err("defensive fraction must be in [0, 1)".to_string());
        }
        self.sampling.validate()
    }
}

/// Outcome of the MNIS search phase (exposed for the comparison figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MnisSearchOutcome {
    /// The minimum-norm failing point found by presampling + bisection.
    pub center: Vector,
    /// Its norm in sigmas.
    pub beta: f64,
    /// Evaluations spent on the search phase.
    pub evaluations: u64,
    /// Whether any failing sample was found at all.
    pub found_failure: bool,
}

/// The minimum-norm importance-sampling estimator.
#[derive(Debug, Clone, Default)]
pub struct MinimumNormIs {
    config: MnisConfig,
    exec: ExecutionConfig,
}

impl MinimumNormIs {
    /// Creates the estimator (execution defaults to
    /// [`ExecutionConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: MnisConfig) -> Self {
        config.validate().expect("invalid MNIS configuration");
        MinimumNormIs {
            config,
            exec: ExecutionConfig::default(),
        }
    }

    /// Sets the parallel-execution configuration (thread count changes
    /// wall-clock only, never the estimate).
    pub fn with_execution(mut self, exec: ExecutionConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &MnisConfig {
        &self.config
    }

    /// The parallel-execution configuration in use.
    pub fn execution(&self) -> ExecutionConfig {
        self.exec
    }

    /// Derivative-free search for a minimum-norm failing point.
    pub fn search(&self, problem: &FailureProblem, rng: &mut RngStream) -> MnisSearchOutcome {
        self.search_on(problem, rng, &self.exec.executor())
    }

    /// Derivative-free search with each presampling cloud evaluated as one
    /// batch on `exec`. The minimum-norm selection and the radial bisection
    /// reduce sequentially, so the outcome is identical at any thread count.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn search_on(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        exec: &Executor,
    ) -> MnisSearchOutcome {
        let dim = problem.dim();
        let start_evals = problem.evaluations();
        let mut best: Option<Vector> = None;

        'scales: for &scale in &self.config.presample_scales {
            // Stratified (Latin hypercube) normal presampling, inflated by the
            // current scale so later rounds probe further into the tails.
            let cloud: Vec<Vector> =
                latin_hypercube_normal(rng, self.config.presamples_per_round, dim)
                    .into_iter()
                    .map(|z| z.scaled(scale))
                    .collect();
            let outcomes = problem.is_failure_batch_on(exec, &cloud);
            for (z, failed) in cloud.into_iter().zip(outcomes) {
                if failed {
                    let better = match &best {
                        Some(current) => z.norm() < current.norm(),
                        None => true,
                    };
                    if better {
                        best = Some(z);
                    }
                }
            }
            if best.is_some() {
                break 'scales;
            }
        }

        let (center, found_failure) = match best {
            Some(mut z) => {
                // Radial bisection towards the origin: find the smallest radius
                // along this direction that still fails (assumes radial
                // monotonicity, the standard MNIS assumption).
                let direction = z.normalized().expect("failing point is non-zero");
                let mut hi = z.norm();
                let mut lo = 0.0;
                for _ in 0..self.config.bisection_steps {
                    let mid = 0.5 * (lo + hi);
                    let candidate = direction.scaled(mid);
                    if problem.is_failure(&candidate) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                z = direction.scaled(hi);
                (z, true)
            }
            None => (Vector::zeros(dim), false),
        };

        MnisSearchOutcome {
            beta: center.norm(),
            center,
            evaluations: problem.evaluations() - start_evals,
            found_failure,
        }
    }

    /// Warm search seeded at a neighbor's minimum-norm failing point: probe
    /// the hinted point (and a few outward inflations of it, in case this
    /// cell's boundary sits further out), then run the usual radial bisection
    /// along its direction. Skipping the blind Latin-hypercube presampling is
    /// where almost all of MNIS's warm-start evaluation savings come from. If
    /// no inflation of the hint fails, the hint is useless here and the
    /// search falls back to the full blind path.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn search_warm_on(
        &self,
        problem: &FailureProblem,
        hint: &Vector,
        rng: &mut RngStream,
        exec: &Executor,
    ) -> MnisSearchOutcome {
        let start_evals = problem.evaluations();
        let probes: Vec<Vector> = [1.0, 1.25, 1.5, 2.0]
            .iter()
            .map(|&scale| hint.scaled(scale))
            .collect();
        let outcomes = problem.is_failure_batch_on(exec, &probes);
        let failing = probes
            .into_iter()
            .zip(outcomes)
            .find_map(|(z, failed)| failed.then_some(z));
        let Some(z) = failing else {
            // The neighbor's failure direction does not reach failure within
            // 2x here; the grid step changed the geometry too much for the
            // hint to be trusted. Blind restart (its own evaluation counter
            // already includes the wasted probes via `start_evals` below).
            let mut blind = self.search_on(problem, rng, exec);
            blind.evaluations = problem.evaluations() - start_evals;
            return blind;
        };

        let direction = z.normalized().expect("failing point is non-zero");
        let mut hi = z.norm();
        let mut lo = 0.0;
        for _ in 0..self.config.bisection_steps {
            let mid = 0.5 * (lo + hi);
            let candidate = direction.scaled(mid);
            if problem.is_failure(&candidate) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let center = direction.scaled(hi);
        MnisSearchOutcome {
            beta: center.norm(),
            center,
            evaluations: problem.evaluations() - start_evals,
            found_failure: true,
        }
    }
}

impl MinimumNormIs {
    fn estimate_inner(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        let executor = self.exec.executor();
        // An applicable hint is a neighbor's found minimum-norm failing point
        // of the right dimension; anything else takes the blind path.
        let warm_center = match warm {
            Some(WarmStart::MinimumNormCenter { center, beta }) => {
                if center.len() == problem.dim()
                    && center.is_finite()
                    && *beta > 0.0
                    && center.norm() > 1e-9
                {
                    Some(center)
                } else {
                    None
                }
            }
            _ => None,
        };
        let search = match warm_center {
            Some(hint) => self.search_warm_on(problem, hint, rng, &executor),
            None => self.search_on(problem, rng, &executor),
        };
        if !search.found_failure {
            let result = ExtractionResult {
                method: "minimum-norm-is".to_string(),
                failure_probability: 0.0,
                standard_error: f64::INFINITY,
                sigma_level: f64::NAN,
                evaluations: search.evaluations,
                sampling_evaluations: 0,
                failures_observed: 0,
                converged: false,
                trace: vec![],
            };
            let diagnostics = IsDiagnostics {
                effective_sample_size: 0.0,
                max_weight: 0.0,
                shift: None,
                shift_norm: None,
                multimodal_suspected: false,
            };
            return EstimatorOutcome {
                result,
                diagnostics: Diagnostics::MinimumNormIs {
                    is: diagnostics,
                    search,
                },
            };
        }

        let proposal = if self.config.defensive_fraction > 0.0 {
            Proposal::defensive_mixture(search.center.clone(), self.config.defensive_fraction)
        } else {
            Proposal::shifted(search.center.clone())
        };
        let (result, diagnostics) = run_importance_sampling(
            problem,
            &proposal,
            &self.config.sampling,
            rng,
            &executor,
            "minimum-norm-is",
            search.evaluations,
        );
        EstimatorOutcome {
            result,
            diagnostics: Diagnostics::MinimumNormIs {
                is: diagnostics,
                search,
            },
        }
    }
}

impl Estimator for MinimumNormIs {
    fn name(&self) -> &str {
        "minimum-norm-is"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, None)
    }

    fn estimate_warm(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, warm)
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        self.config.sampling.max_samples = policy.max_evaluations.max(1);
        self.config.sampling.target_relative_error = policy.target_relative_error;
        self.config.sampling.min_failures = policy.min_failures;
    }

    fn set_execution(&mut self, exec: ExecutionConfig) {
        self.exec = exec;
    }

    fn effective_execution(&self) -> ExecutionConfig {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    fn quick_config() -> MnisConfig {
        MnisConfig {
            presamples_per_round: 1_000,
            sampling: ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: 30_000,
                batch_size: 1_000,
                target_relative_error: 0.05,
                min_failures: 50,
            },
            ..MnisConfig::default()
        }
    }

    #[test]
    fn search_finds_a_near_minimum_norm_point() {
        let ls = LinearLimitState::along_first_axis(4, 4.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mnis = MinimumNormIs::new(quick_config());
        let mut rng = RngStream::from_seed(31);
        let search = mnis.search(&problem, &mut rng);
        assert!(search.found_failure);
        // The bisection pulls the point back to the failure boundary, so the
        // norm cannot be much below the true beta and should not be wildly
        // above it either.
        assert!(search.beta >= 3.7, "beta {}", search.beta);
        assert!(search.beta < 6.5, "beta {}", search.beta);
        assert!(search.evaluations > 0);
    }

    #[test]
    fn estimates_linear_tail_probability() {
        let ls = LinearLimitState::along_first_axis(6, 4.0);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let mnis = MinimumNormIs::new(quick_config());
        // Seed chosen so the blind presampling phase finds a reasonable
        // minimum-norm center; bad draws (a known MNIS weakness) are covered
        // by `gives_up_gracefully_when_no_failure_is_reachable` below.
        let mut rng = RngStream::from_seed(42);
        let outcome = mnis.estimate(&problem, &mut rng);
        let result = &outcome.result;
        let diag = outcome.is_diagnostics().unwrap();
        let search = outcome.search().unwrap();
        assert!(search.found_failure);
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.2, "MNIS estimate off by {rel}");
        assert!(diag.effective_sample_size > 5.0);
        // The presampling phase makes MNIS markedly more expensive than the
        // equivalent gradient search would be.
        assert!(result.evaluations > result.sampling_evaluations);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(6, 4.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let reference = MinimumNormIs::new(quick_config())
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(42));
        for threads in [2, 8] {
            let parallel = MinimumNormIs::new(quick_config())
                .with_execution(ExecutionConfig::with_threads(threads))
                .estimate(&problem.fork(), &mut RngStream::from_seed(42));
            assert_eq!(parallel.result, reference.result);
            assert_eq!(parallel.diagnostics, reference.diagnostics);
        }
    }

    #[test]
    fn gives_up_gracefully_when_no_failure_is_reachable() {
        // 7-sigma failure plane: the presampling scales used here cannot reach it.
        let ls = LinearLimitState::along_first_axis(8, 7.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let config = MnisConfig {
            presamples_per_round: 200,
            presample_scales: vec![1.0],
            ..quick_config()
        };
        let mnis = MinimumNormIs::new(config);
        let mut rng = RngStream::from_seed(17);
        let outcome = mnis.estimate(&problem, &mut rng);
        let (result, search) = (&outcome.result, outcome.search().unwrap());
        assert!(!search.found_failure);
        assert!(!result.converged);
        assert_eq!(result.failure_probability, 0.0);
        assert_eq!(result.sampling_evaluations, 0);
    }

    #[test]
    #[should_panic(expected = "invalid MNIS configuration")]
    fn invalid_config_rejected() {
        let _ = MinimumNormIs::new(MnisConfig {
            presample_scales: vec![],
            ..MnisConfig::default()
        });
    }
}
