//! Spherical (shell) sampling baseline.
//!
//! The method exploits the rotational symmetry of the whitened space: a
//! standard normal vector factors into an independent direction (uniform on the
//! sphere) and radius (chi-distributed). Assuming the failure region is
//! *radially monotone* — once a direction fails at radius `r` it fails for all
//! larger radii, which holds for SRAM metrics that degrade monotonically with
//! device weakening — the failure probability is
//!
//! `P_fail = E_direction[ P(χ_d > r(θ)) ]`
//!
//! where `r(θ)` is the failure-boundary radius along direction `θ`. The method
//! estimates `r(θ)` by bisection along randomly drawn directions and averages
//! the chi-tail probabilities. Its cost therefore scales with the number of
//! directions times the bisection depth, independent of how rare the failure
//! is — but it degrades in high dimensions, where most random directions miss
//! the failure cone entirely.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome, WarmStart};
use crate::exec::{ExecutionConfig, Executor};
use crate::model::FailureProblem;
use crate::result::{ConvergencePoint, ExtractionResult};
use crate::special::chi_survival;
use gis_linalg::Vector;
use gis_stats::{uniform_on_sphere, OnlineStats, RngStream};
use serde::{Deserialize, Serialize};

/// Directions per processing block. This is also the convergence-checkpoint
/// interval, preserved from the historical serial loop so traces and stopping
/// decisions are unchanged.
const DIRECTION_BLOCK: usize = 20;

/// Configuration of the spherical-sampling baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SphericalSamplingConfig {
    /// Number of random directions to probe.
    pub directions: usize,
    /// Maximum radius (in sigmas) probed along each direction.
    pub max_radius: f64,
    /// Bisection iterations per direction that reaches the failure region.
    pub bisection_steps: usize,
    /// Target relative standard error; probing stops early once reached.
    pub target_relative_error: f64,
    /// Minimum number of failing directions before the stopping rule may fire.
    pub min_failing_directions: usize,
    /// Use the first-passage-corrected stopping rule and error bar (see
    /// [`crate::stopping`]). `false` restores the legacy anti-conservative
    /// rule for before/after calibration measurements.
    pub corrected_stopping: bool,
}

impl Default for SphericalSamplingConfig {
    fn default() -> Self {
        SphericalSamplingConfig {
            directions: 300,
            max_radius: 8.0,
            bisection_steps: 12,
            target_relative_error: 0.1,
            min_failing_directions: 10,
            corrected_stopping: true,
        }
    }
}

impl SphericalSamplingConfig {
    fn validate(&self) -> Result<(), String> {
        if self.directions == 0 || self.bisection_steps == 0 {
            return Err("directions and bisection steps must be positive".to_string());
        }
        if !(self.max_radius > 0.0) {
            return Err("max radius must be positive".to_string());
        }
        if !(self.target_relative_error > 0.0) {
            return Err("target relative error must be positive".to_string());
        }
        Ok(())
    }
}

/// The spherical-sampling estimator.
#[derive(Debug, Clone, Default)]
pub struct SphericalSampling {
    config: SphericalSamplingConfig,
    exec: ExecutionConfig,
}

impl SphericalSampling {
    /// Creates the estimator (execution defaults to
    /// [`ExecutionConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: SphericalSamplingConfig) -> Self {
        config
            .validate()
            .expect("invalid spherical sampling configuration");
        SphericalSampling {
            config,
            exec: ExecutionConfig::default(),
        }
    }

    /// Sets the parallel-execution configuration (thread count changes
    /// wall-clock only, never the estimate).
    pub fn with_execution(mut self, exec: ExecutionConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SphericalSamplingConfig {
        &self.config
    }

    /// The parallel-execution configuration in use.
    pub fn execution(&self) -> ExecutionConfig {
        self.exec
    }

    /// Failure-boundary radii for a block of directions, found by *lockstep*
    /// bisection: first every direction's maximum-radius point is evaluated as
    /// one batch, then each bisection step evaluates the midpoints of all
    /// still-active (failing) directions as one batch. Per direction this
    /// performs exactly the decisions and evaluation count of the classic
    /// one-direction-at-a-time bisection, so results are independent of both
    /// the batching and the thread count. Returns `None` for directions that do
    /// not fail at the maximum radius.
    ///
    /// `bracket_lo` is the inner edge of the bisection bracket: `0.0` on the
    /// blind path; a warm start raises it towards the neighbor's known
    /// minimum failure radius, which spends the same number of bisection
    /// steps on a tighter interval (a per-direction radius resolution gain,
    /// not an evaluation saving — documented in the README).
    fn boundary_radii(
        &self,
        problem: &FailureProblem,
        directions: &[Vector],
        bracket_lo: f64,
        exec: &Executor,
    ) -> Vec<Option<f64>> {
        let max_points: Vec<Vector> = directions
            .iter()
            .map(|d| d.scaled(self.config.max_radius))
            .collect();
        let reaches_failure = problem.is_failure_batch_on(exec, &max_points);

        // (direction index, lo, hi) for the directions still being bisected.
        let mut active: Vec<(usize, f64, f64)> = reaches_failure
            .iter()
            .enumerate()
            .filter(|&(_, &fails)| fails)
            .map(|(i, _)| (i, bracket_lo, self.config.max_radius))
            .collect();
        for _ in 0..self.config.bisection_steps {
            let midpoints: Vec<Vector> = active
                .iter()
                .map(|&(i, lo, hi)| directions[i].scaled(0.5 * (lo + hi)))
                .collect();
            let fails = problem.is_failure_batch_on(exec, &midpoints);
            for ((_, lo, hi), failed) in active.iter_mut().zip(fails) {
                let mid = 0.5 * (*lo + *hi);
                if failed {
                    *hi = mid;
                } else {
                    *lo = mid;
                }
            }
        }

        let mut radii = vec![None; directions.len()];
        for (i, _, hi) in active {
            radii[i] = Some(hi);
        }
        radii
    }
}

impl SphericalSampling {
    fn estimate_inner(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        let dim = problem.dim();
        let executor = self.exec.executor();
        let start_evals = problem.evaluations();
        let mut tail_stats = OnlineStats::new();
        let mut failing_directions = 0usize;
        let mut min_beta = f64::INFINITY;
        let mut trace = Vec::new();
        let mut converged = false;
        let mut stop = crate::stopping::StopTracker::new();

        // A neighbor's minimum failure radius tightens the bisection bracket:
        // no direction's boundary is plausibly closer than the neighbor's
        // closest boundary minus a generous 2-sigma adjacency margin. The
        // blind bracket (`lo = 0`) is the fallback for absent or inapplicable
        // hints and stays the reproducibility reference.
        let bracket_lo = match warm {
            Some(WarmStart::RadiusBracket { min_beta }) if min_beta.is_finite() => {
                (min_beta - 2.0).clamp(0.0, 0.9 * self.config.max_radius)
            }
            _ => 0.0,
        };

        let mut probed = 0usize;
        'blocks: while probed < self.config.directions {
            let block = DIRECTION_BLOCK.min(self.config.directions - probed);
            let directions: Vec<Vector> = (0..block).map(|_| uniform_on_sphere(rng, dim)).collect();
            let radii = self.boundary_radii(problem, &directions, bracket_lo, &executor);
            for radius in radii {
                probed += 1;
                let contribution = match radius {
                    Some(radius) => {
                        failing_directions += 1;
                        min_beta = min_beta.min(radius);
                        chi_survival(dim, radius)
                    }
                    None => 0.0,
                };
                tail_stats.push(contribution);
            }

            let estimate = tail_stats.mean();
            let rel_err = if estimate > 0.0 {
                tail_stats.standard_error() / estimate
            } else {
                f64::INFINITY
            };
            trace.push(ConvergencePoint {
                evaluations: problem.evaluations() - start_evals,
                estimate,
                relative_error: rel_err,
            });
            if stop.check(
                failing_directions as f64,
                self.config.min_failing_directions as u64,
                rel_err,
                self.config.target_relative_error,
                self.config.corrected_stopping,
            ) {
                converged = true;
                break 'blocks;
            }
        }

        let estimate = tail_stats.mean();
        EstimatorOutcome {
            result: ExtractionResult {
                method: "spherical-sampling".to_string(),
                failure_probability: estimate,
                standard_error: crate::stopping::reported_standard_error(
                    tail_stats.standard_error(),
                    failing_directions as f64,
                    converged,
                    self.config.corrected_stopping,
                ),
                sigma_level: ExtractionResult::sigma_from_probability(estimate),
                evaluations: problem.evaluations() - start_evals,
                sampling_evaluations: problem.evaluations() - start_evals,
                failures_observed: failing_directions as u64,
                converged,
                trace,
            },
            diagnostics: Diagnostics::SphericalSampling {
                min_beta: min_beta.is_finite().then_some(min_beta),
            },
        }
    }
}

impl Estimator for SphericalSampling {
    fn name(&self) -> &str {
        "spherical-sampling"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, None)
    }

    fn estimate_warm(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, warm)
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        // Each probed direction costs one boundary check plus, when it fails,
        // a full bisection; budget directions accordingly.
        let per_direction = 1 + self.config.bisection_steps as u64;
        self.config.directions = (policy.max_evaluations / per_direction).max(1) as usize;
        self.config.target_relative_error = policy.target_relative_error;
        self.config.min_failing_directions = policy.min_failures.max(1) as usize;
    }

    fn set_execution(&mut self, exec: ExecutionConfig) {
        self.exec = exec;
    }

    fn effective_execution(&self) -> ExecutionConfig {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    #[test]
    fn estimates_linear_tail_within_a_factor() {
        // Spherical sampling is exact only for radially symmetric failure
        // regions; for a half-space it systematically works but with larger
        // spread, so we accept a generous tolerance (this is exactly the
        // weakness the comparison tables highlight).
        let ls = LinearLimitState::along_first_axis(2, 3.0);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 2_000,
            target_relative_error: 0.05,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(41);
        let result = spherical.estimate(&problem, &mut rng).result;
        assert!(result.failure_probability > 0.0);
        let ratio = result.failure_probability / exact;
        assert!(
            (0.4..2.5).contains(&ratio),
            "spherical estimate off by factor {ratio}: {:e} vs {exact:e}",
            result.failure_probability
        );
        assert!(result.failures_observed > 0);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn radially_symmetric_region_is_estimated_accurately() {
        // Failure when ‖z‖ > 4: the exact probability is the chi-square tail,
        // and spherical sampling should nail it with very few evaluations.
        let dim = 3;
        let model = crate::model::FnModel::new("norm", dim, |z: &Vector| z.norm());
        let problem = FailureProblem::from_model(model, crate::model::Spec::UpperLimit(4.0));
        let exact = crate::special::chi_survival(dim, 4.0);
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 50,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(13);
        let result = spherical.estimate(&problem, &mut rng).result;
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.02, "symmetric-region estimate off by {rel}");
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(3, 3.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let config = SphericalSamplingConfig {
            directions: 250,
            ..SphericalSamplingConfig::default()
        };
        let reference = SphericalSampling::new(config.clone())
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(9))
            .result;
        for threads in [2, 8] {
            let parallel = SphericalSampling::new(config.clone())
                .with_execution(ExecutionConfig::with_threads(threads))
                .estimate(&problem.fork(), &mut RngStream::from_seed(9))
                .result;
            assert_eq!(parallel, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn no_failure_inside_max_radius_gives_zero() {
        let ls = LinearLimitState::along_first_axis(3, 10.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 50,
            max_radius: 6.0,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(2);
        let result = spherical.estimate(&problem, &mut rng).result;
        assert_eq!(result.failure_probability, 0.0);
        assert!(!result.converged);
        assert_eq!(result.failures_observed, 0);
    }

    #[test]
    fn cost_grows_with_dimension_due_to_missed_directions() {
        // In higher dimensions the cone of failing directions shrinks, so fewer
        // directions contribute and the relative error for a fixed direction
        // budget grows — the scaling weakness the paper's Table 3 demonstrates.
        let run_dim = |dim: usize| {
            let ls = LinearLimitState::along_first_axis(dim, 3.5);
            let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
            let spherical = SphericalSampling::new(SphericalSamplingConfig {
                directions: 400,
                target_relative_error: 1e-9, // never stop early
                ..SphericalSamplingConfig::default()
            });
            let mut rng = RngStream::from_seed(55);
            let result = spherical.estimate(&problem, &mut rng).result;
            result.failures_observed
        };
        let low_dim_hits = run_dim(2);
        let high_dim_hits = run_dim(12);
        assert!(
            low_dim_hits > high_dim_hits,
            "expected fewer failing directions in high dimension ({low_dim_hits} vs {high_dim_hits})"
        );
    }

    #[test]
    #[should_panic(expected = "invalid spherical sampling configuration")]
    fn invalid_config_rejected() {
        let _ = SphericalSampling::new(SphericalSamplingConfig {
            directions: 0,
            ..SphericalSamplingConfig::default()
        });
    }
}
