//! Spherical (shell) sampling baseline.
//!
//! The method exploits the rotational symmetry of the whitened space: a
//! standard normal vector factors into an independent direction (uniform on the
//! sphere) and radius (chi-distributed). Assuming the failure region is
//! *radially monotone* — once a direction fails at radius `r` it fails for all
//! larger radii, which holds for SRAM metrics that degrade monotonically with
//! device weakening — the failure probability is
//!
//! `P_fail = E_direction[ P(χ_d > r(θ)) ]`
//!
//! where `r(θ)` is the failure-boundary radius along direction `θ`. The method
//! estimates `r(θ)` by bisection along randomly drawn directions and averages
//! the chi-tail probabilities. Its cost therefore scales with the number of
//! directions times the bisection depth, independent of how rare the failure
//! is — but it degrades in high dimensions, where most random directions miss
//! the failure cone entirely.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome};
use crate::model::FailureProblem;
use crate::result::{ConvergencePoint, ExtractionResult};
use crate::special::chi_survival;
use gis_linalg::Vector;
use gis_stats::{uniform_on_sphere, OnlineStats, RngStream};
use serde::{Deserialize, Serialize};

/// Configuration of the spherical-sampling baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SphericalSamplingConfig {
    /// Number of random directions to probe.
    pub directions: usize,
    /// Maximum radius (in sigmas) probed along each direction.
    pub max_radius: f64,
    /// Bisection iterations per direction that reaches the failure region.
    pub bisection_steps: usize,
    /// Target relative standard error; probing stops early once reached.
    pub target_relative_error: f64,
    /// Minimum number of failing directions before the stopping rule may fire.
    pub min_failing_directions: usize,
}

impl Default for SphericalSamplingConfig {
    fn default() -> Self {
        SphericalSamplingConfig {
            directions: 300,
            max_radius: 8.0,
            bisection_steps: 12,
            target_relative_error: 0.1,
            min_failing_directions: 10,
        }
    }
}

impl SphericalSamplingConfig {
    fn validate(&self) -> Result<(), String> {
        if self.directions == 0 || self.bisection_steps == 0 {
            return Err("directions and bisection steps must be positive".to_string());
        }
        if !(self.max_radius > 0.0) {
            return Err("max radius must be positive".to_string());
        }
        if !(self.target_relative_error > 0.0) {
            return Err("target relative error must be positive".to_string());
        }
        Ok(())
    }
}

/// The spherical-sampling estimator.
#[derive(Debug, Clone, Default)]
pub struct SphericalSampling {
    config: SphericalSamplingConfig,
}

impl SphericalSampling {
    /// Creates the estimator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SphericalSamplingConfig) -> Self {
        config
            .validate()
            .expect("invalid spherical sampling configuration");
        SphericalSampling { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SphericalSamplingConfig {
        &self.config
    }

    /// Finds the failure-boundary radius along `direction` by bisection.
    /// Returns `None` if the direction does not fail even at the maximum radius.
    fn boundary_radius(&self, problem: &FailureProblem, direction: &Vector) -> Option<f64> {
        let max_point = direction.scaled(self.config.max_radius);
        if !problem.is_failure(&max_point) {
            return None;
        }
        let mut lo = 0.0;
        let mut hi = self.config.max_radius;
        for _ in 0..self.config.bisection_steps {
            let mid = 0.5 * (lo + hi);
            if problem.is_failure(&direction.scaled(mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// Runs the estimation.
    #[deprecated(
        since = "0.2.0",
        note = "use `Estimator::estimate`, which returns the unified `EstimatorOutcome`"
    )]
    pub fn run(&self, problem: &FailureProblem, rng: &mut RngStream) -> ExtractionResult {
        Estimator::estimate(self, problem, rng).result
    }
}

impl Estimator for SphericalSampling {
    fn name(&self) -> &str {
        "spherical-sampling"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        let dim = problem.dim();
        let start_evals = problem.evaluations();
        let mut tail_stats = OnlineStats::new();
        let mut failing_directions = 0usize;
        let mut min_beta = f64::INFINITY;
        let mut trace = Vec::new();
        let mut converged = false;

        for probed in 1..=self.config.directions {
            let direction = uniform_on_sphere(rng, dim);
            let contribution = match self.boundary_radius(problem, &direction) {
                Some(radius) => {
                    failing_directions += 1;
                    min_beta = min_beta.min(radius);
                    chi_survival(dim, radius)
                }
                None => 0.0,
            };
            tail_stats.push(contribution);

            if probed % 20 == 0 || probed == self.config.directions {
                let estimate = tail_stats.mean();
                let rel_err = if estimate > 0.0 {
                    tail_stats.standard_error() / estimate
                } else {
                    f64::INFINITY
                };
                trace.push(ConvergencePoint {
                    evaluations: problem.evaluations() - start_evals,
                    estimate,
                    relative_error: rel_err,
                });
                if failing_directions >= self.config.min_failing_directions
                    && rel_err <= self.config.target_relative_error
                {
                    converged = true;
                    break;
                }
            }
        }

        let estimate = tail_stats.mean();
        EstimatorOutcome {
            result: ExtractionResult {
                method: "spherical-sampling".to_string(),
                failure_probability: estimate,
                standard_error: tail_stats.standard_error(),
                sigma_level: ExtractionResult::sigma_from_probability(estimate),
                evaluations: problem.evaluations() - start_evals,
                sampling_evaluations: problem.evaluations() - start_evals,
                failures_observed: failing_directions as u64,
                converged,
                trace,
            },
            diagnostics: Diagnostics::SphericalSampling,
        }
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        // Each probed direction costs one boundary check plus, when it fails,
        // a full bisection; budget directions accordingly.
        let per_direction = 1 + self.config.bisection_steps as u64;
        self.config.directions = (policy.max_evaluations / per_direction).max(1) as usize;
        self.config.target_relative_error = policy.target_relative_error;
        self.config.min_failing_directions = policy.min_failures.max(1) as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    #[test]
    fn estimates_linear_tail_within_a_factor() {
        // Spherical sampling is exact only for radially symmetric failure
        // regions; for a half-space it systematically works but with larger
        // spread, so we accept a generous tolerance (this is exactly the
        // weakness the comparison tables highlight).
        let ls = LinearLimitState::along_first_axis(2, 3.0);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 2_000,
            target_relative_error: 0.05,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(41);
        let result = spherical.estimate(&problem, &mut rng).result;
        assert!(result.failure_probability > 0.0);
        let ratio = result.failure_probability / exact;
        assert!(
            (0.4..2.5).contains(&ratio),
            "spherical estimate off by factor {ratio}: {:e} vs {exact:e}",
            result.failure_probability
        );
        assert!(result.failures_observed > 0);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn radially_symmetric_region_is_estimated_accurately() {
        // Failure when ‖z‖ > 4: the exact probability is the chi-square tail,
        // and spherical sampling should nail it with very few evaluations.
        let dim = 3;
        let model = crate::model::FnModel::new("norm", dim, |z: &Vector| z.norm());
        let problem = FailureProblem::from_model(model, crate::model::Spec::UpperLimit(4.0));
        let exact = crate::special::chi_survival(dim, 4.0);
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 50,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(13);
        let result = spherical.estimate(&problem, &mut rng).result;
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.02, "symmetric-region estimate off by {rel}");
    }

    #[test]
    fn no_failure_inside_max_radius_gives_zero() {
        let ls = LinearLimitState::along_first_axis(3, 10.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let spherical = SphericalSampling::new(SphericalSamplingConfig {
            directions: 50,
            max_radius: 6.0,
            ..SphericalSamplingConfig::default()
        });
        let mut rng = RngStream::from_seed(2);
        let result = spherical.estimate(&problem, &mut rng).result;
        assert_eq!(result.failure_probability, 0.0);
        assert!(!result.converged);
        assert_eq!(result.failures_observed, 0);
    }

    #[test]
    fn cost_grows_with_dimension_due_to_missed_directions() {
        // In higher dimensions the cone of failing directions shrinks, so fewer
        // directions contribute and the relative error for a fixed direction
        // budget grows — the scaling weakness the paper's Table 3 demonstrates.
        let run_dim = |dim: usize| {
            let ls = LinearLimitState::along_first_axis(dim, 3.5);
            let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
            let spherical = SphericalSampling::new(SphericalSamplingConfig {
                directions: 400,
                target_relative_error: 1e-9, // never stop early
                ..SphericalSamplingConfig::default()
            });
            let mut rng = RngStream::from_seed(55);
            let result = spherical.estimate(&problem, &mut rng).result;
            result.failures_observed
        };
        let low_dim_hits = run_dim(2);
        let high_dim_hits = run_dim(12);
        assert!(
            low_dim_hits > high_dim_hits,
            "expected fewer failing directions in high dimension ({low_dim_hits} vs {high_dim_hits})"
        );
    }

    #[test]
    #[should_panic(expected = "invalid spherical sampling configuration")]
    fn invalid_config_rejected() {
        let _ = SphericalSampling::new(SphericalSamplingConfig {
            directions: 0,
            ..SphericalSamplingConfig::default()
        });
    }
}
