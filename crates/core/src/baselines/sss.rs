//! Scaled-sigma sampling (SSS) baseline.
//!
//! SSS runs plain Monte Carlo at artificially inflated process variation
//! (σ → s·σ for several scale factors s > 1), where failures are common enough
//! to count directly, and extrapolates the failure probability back to the
//! nominal σ through the analytical model
//!
//! `ln P(s) ≈ α + β·ln s − γ / s²`
//!
//! (the model of Sun & Li, derived from the dominant-exponent behaviour of a
//! Gaussian tail). The fit is an ordinary least-squares problem solved with the
//! QR decomposition from `gis-linalg`; the extrapolated value is
//! `ln P(1) = α − γ`.
//!
//! SSS needs no search phase and makes no shape assumption beyond the model
//! above, but its extrapolation step contributes a model error that grows with
//! the distance between the largest affordable scale and 1 — visible in the
//! comparison tables as a wider confidence band at equal cost.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome, WarmStart};
use crate::exec::ExecutionConfig;
use crate::model::FailureProblem;
use crate::result::{ConvergencePoint, ExtractionResult};
use gis_linalg::{least_squares, LuDecomposition, Matrix, Vector};
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Configuration of the scaled-sigma-sampling baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SssConfig {
    /// Scale factors applied to the nominal sigma (all must be > 1).
    pub scales: Vec<f64>,
    /// Monte Carlo samples per scale factor.
    pub samples_per_scale: u64,
    /// Minimum number of failures a scale must observe to enter the regression.
    pub min_failures_per_scale: u64,
}

impl Default for SssConfig {
    fn default() -> Self {
        SssConfig {
            scales: vec![1.6, 2.0, 2.4, 2.8, 3.2],
            samples_per_scale: 5_000,
            min_failures_per_scale: 10,
        }
    }
}

impl SssConfig {
    fn validate(&self) -> Result<(), String> {
        if self.scales.len() < 3 {
            return Err("SSS needs at least three scale factors to fit its model".to_string());
        }
        if self.scales.iter().any(|&s| !(s > 1.0)) {
            return Err("all scale factors must be greater than 1".to_string());
        }
        if self.samples_per_scale == 0 {
            return Err("samples per scale must be positive".to_string());
        }
        Ok(())
    }
}

/// Per-scale measurement, exposed for the diagnostic figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Sigma scale factor.
    pub scale: f64,
    /// Number of samples drawn at this scale.
    pub samples: u64,
    /// Number of failures observed.
    pub failures: u64,
    /// Failure probability at this scale.
    pub probability: f64,
}

/// The scaled-sigma-sampling estimator.
#[derive(Debug, Clone, Default)]
pub struct ScaledSigmaSampling {
    config: SssConfig,
    exec: ExecutionConfig,
}

impl ScaledSigmaSampling {
    /// Creates the estimator (execution defaults to
    /// [`ExecutionConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: SssConfig) -> Self {
        config.validate().expect("invalid SSS configuration");
        ScaledSigmaSampling {
            config,
            exec: ExecutionConfig::default(),
        }
    }

    /// Sets the parallel-execution configuration (thread count changes
    /// wall-clock only, never the estimate).
    pub fn with_execution(mut self, exec: ExecutionConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SssConfig {
        &self.config
    }

    /// The parallel-execution configuration in use.
    pub fn execution(&self) -> ExecutionConfig {
        self.exec
    }
}

impl ScaledSigmaSampling {
    /// The scale factors a warm hint leaves active: a neighbor's usable
    /// (failure-producing) scales tell us which of *our* configured scales
    /// are likely to waste their whole Monte Carlo budget observing nothing.
    /// Scales below the neighbor's smallest usable scale are dropped —
    /// `samples_per_scale` evaluations saved each — as long as at least
    /// three scales remain (the regression minimum); otherwise the hint is
    /// ignored and the blind scale list runs unchanged.
    fn active_scales(&self, warm: Option<&WarmStart>) -> Vec<f64> {
        if let Some(WarmStart::UsableScales { scales }) = warm {
            let threshold = scales
                .iter()
                .copied()
                .filter(|s| s.is_finite())
                .fold(f64::INFINITY, f64::min);
            if threshold.is_finite() {
                let kept: Vec<f64> = self
                    .config
                    .scales
                    .iter()
                    .copied()
                    .filter(|&s| s >= threshold - 1e-12)
                    .collect();
                if kept.len() >= 3 {
                    return kept;
                }
            }
        }
        self.config.scales.clone()
    }

    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn estimate_inner(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        let dim = problem.dim();
        let executor = self.exec.executor();
        let start_evals = problem.evaluations();
        let scales = self.active_scales(warm);
        let mut points = Vec::with_capacity(scales.len());
        let mut trace = Vec::new();

        for &scale in &scales {
            // Generate the whole inflated-sigma cloud sequentially, evaluate
            // it on the executor, count failures in sample order.
            let cloud: Vec<Vector> = (0..self.config.samples_per_scale)
                .map(|_| rng.standard_normal_vector(dim).scaled(scale))
                .collect();
            let failures = problem
                .is_failure_batch_on(&executor, &cloud)
                .into_iter()
                .filter(|&failed| failed)
                .count() as u64;
            let probability = failures as f64 / self.config.samples_per_scale as f64;
            points.push(ScalePoint {
                scale,
                samples: self.config.samples_per_scale,
                failures,
                probability,
            });
            trace.push(ConvergencePoint {
                evaluations: problem.evaluations() - start_evals,
                estimate: probability,
                relative_error: crate::montecarlo::relative_standard_error(
                    failures,
                    self.config.samples_per_scale,
                ),
            });
        }

        // Regression on the scales with enough observed failures.
        let usable: Vec<&ScalePoint> = points
            .iter()
            .filter(|p| p.failures >= self.config.min_failures_per_scale)
            .collect();

        let (estimate, standard_error, converged) = if usable.len() >= 3 {
            // Design matrix rows: [1, ln s, −1/s²].
            let rows = usable.len();
            let design = Matrix::from_fn(rows, 3, |i, j| {
                let s = usable[i].scale;
                match j {
                    0 => 1.0,
                    1 => s.ln(),
                    _ => -1.0 / (s * s),
                }
            });
            let observations: Vector = usable.iter().map(|p| p.probability.ln()).collect();
            match least_squares(&design, &observations) {
                Ok(fit) => {
                    let alpha = fit.solution[0];
                    let gamma = fit.solution[2];
                    let ln_p1 = alpha - gamma;
                    // The extrapolation model can misbehave when the target
                    // sigma is far beyond the sampled scales; clamp to a valid
                    // probability so downstream consumers never see P > 1.
                    let estimate = ln_p1.exp().min(1.0);
                    // Delta-method error bar. The prediction is the linear
                    // functional cᵀβ̂ of the OLS coefficients with
                    // c = [1, ln 1, −1/1²] = [1, 0, −1], evaluated *outside*
                    // the sampled scale range — so the binomial noise of each
                    // ln p̂ᵢ is amplified by the extrapolation leverage
                    // a = X(XᵀX)⁻¹c:
                    //
                    //   Var[ln P̂(1)] ≈ Σᵢ aᵢ²·σᵢ²  +  s²·cᵀ(XᵀX)⁻¹c
                    //
                    // with σᵢ² = (1−pᵢ)/(nᵢ·pᵢ) (delta method on ln p̂ᵢ) and
                    // s² the residual variance capturing model misfit. The
                    // previous heuristic (residual + smallest-scale binomial
                    // noise, no leverage) under-reported the error by up to an
                    // order of magnitude — measurably dishonest confidence
                    // intervals in the calibration harness (17–27% empirical
                    // coverage at 90% nominal on the analytic benchmarks).
                    let c = Vector::from_slice(&[1.0, 0.0, -1.0]);
                    let xtx = design.transposed().matmul(&design).expect("3-column fit");
                    let ln_variance = LuDecomposition::new(&xtx)
                        .ok()
                        .and_then(|lu| lu.solve(&c).ok())
                        .map(|w| {
                            let leverage = design.matvec(&w).expect("dimensions match");
                            let statistical: f64 = usable
                                .iter()
                                .zip(leverage.iter())
                                .map(|(point, &a)| {
                                    let p = point.probability;
                                    a * a * (1.0 - p) / (point.samples as f64 * p)
                                })
                                .sum();
                            let dof = (usable.len() as f64 - 3.0).max(1.0);
                            let residual_variance = fit.residual_norm * fit.residual_norm / dof;
                            let prediction_leverage = c.dot(&w).expect("length 3").max(0.0);
                            statistical + residual_variance * prediction_leverage
                        });
                    match ln_variance {
                        Some(var) if var.is_finite() => {
                            // Symmetrized log-space → linear-space conversion:
                            // sinh(σ) averages the up/down factors exp(±σ)−1,
                            // matching the two-sided intervals the suite
                            // quotes (the one-sided exp(σ)−1 overstates and
                            // measurably over-covers).
                            let standard_error = estimate * var.sqrt().sinh();
                            (estimate, standard_error, true)
                        }
                        _ => (estimate, f64::INFINITY, false),
                    }
                }
                Err(_) => (0.0, f64::INFINITY, false),
            }
        } else {
            (0.0, f64::INFINITY, false)
        };

        let failures_total: u64 = points.iter().map(|p| p.failures).sum();
        let result = ExtractionResult {
            method: "scaled-sigma-sampling".to_string(),
            failure_probability: estimate,
            standard_error,
            sigma_level: ExtractionResult::sigma_from_probability(estimate),
            evaluations: problem.evaluations() - start_evals,
            sampling_evaluations: problem.evaluations() - start_evals,
            failures_observed: failures_total,
            converged,
            trace,
        };
        EstimatorOutcome {
            result,
            diagnostics: Diagnostics::ScaledSigmaSampling {
                scale_points: points,
            },
        }
    }
}

impl Estimator for ScaledSigmaSampling {
    fn name(&self) -> &str {
        "scaled-sigma-sampling"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, None)
    }

    fn estimate_warm(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, warm)
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        // The whole budget is split evenly across the scale factors; the
        // stopping-rule fields have no SSS equivalent (it never stops early).
        let scales = (self.config.scales.len() as u64).max(1);
        self.config.samples_per_scale = (policy.max_evaluations / scales).max(1);
    }

    fn set_execution(&mut self, exec: ExecutionConfig) {
        self.exec = exec;
    }

    fn effective_execution(&self) -> ExecutionConfig {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    #[test]
    fn extrapolates_linear_tail_within_model_error() {
        // For a linear limit state ln P(s) = ln Q(β/s) which the SSS model fits
        // well; the extrapolation is typically within a small factor of truth.
        let ls = LinearLimitState::along_first_axis(4, 4.0);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let sss = ScaledSigmaSampling::new(SssConfig {
            samples_per_scale: 20_000,
            ..SssConfig::default()
        });
        let mut rng = RngStream::from_seed(8);
        let outcome = sss.estimate(&problem, &mut rng);
        let (result, points) = (&outcome.result, outcome.scale_points().unwrap());
        assert!(result.converged);
        assert_eq!(points.len(), 5);
        let ratio = result.failure_probability / exact;
        assert!(
            (0.2..5.0).contains(&ratio),
            "SSS extrapolation off by factor {ratio}: {:e} vs {exact:e}",
            result.failure_probability
        );
        // Probabilities at larger scales must be larger (more spread → more failures).
        for pair in points.windows(2) {
            assert!(pair[1].probability >= pair[0].probability * 0.5);
        }
        assert_eq!(
            result.evaluations,
            5 * 20_000,
            "SSS cost is exactly scales × samples"
        );
    }

    #[test]
    fn fails_gracefully_with_insufficient_failures() {
        // Tiny per-scale budgets at a 6-sigma problem observe almost nothing.
        let ls = LinearLimitState::along_first_axis(4, 6.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let sss = ScaledSigmaSampling::new(SssConfig {
            scales: vec![1.2, 1.3, 1.4],
            samples_per_scale: 200,
            ..SssConfig::default()
        });
        let mut rng = RngStream::from_seed(9);
        let result = sss.estimate(&problem, &mut rng).result;
        assert!(!result.converged);
        assert_eq!(result.failure_probability, 0.0);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let ls = LinearLimitState::along_first_axis(3, 3.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let sss = ScaledSigmaSampling::new(SssConfig::default());
        let a = sss
            .estimate(&problem.fork(), &mut RngStream::from_seed(4))
            .result;
        let b = sss
            .estimate(&problem.fork(), &mut RngStream::from_seed(4))
            .result;
        assert_eq!(a.failure_probability, b.failure_probability);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(3, 3.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let reference = ScaledSigmaSampling::new(SssConfig::default())
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(4));
        for threads in [2, 8] {
            let parallel = ScaledSigmaSampling::new(SssConfig::default())
                .with_execution(ExecutionConfig::with_threads(threads))
                .estimate(&problem.fork(), &mut RngStream::from_seed(4));
            assert_eq!(parallel.result, reference.result);
            assert_eq!(parallel.diagnostics, reference.diagnostics);
        }
    }

    #[test]
    #[should_panic(expected = "invalid SSS configuration")]
    fn invalid_config_rejected() {
        let _ = ScaledSigmaSampling::new(SssConfig {
            scales: vec![2.0, 3.0],
            ..SssConfig::default()
        });
    }
}
