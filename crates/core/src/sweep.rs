//! Sweep orchestration: matrix-parallel scheduling of (problem × estimator)
//! cells, durable JSON-lines checkpointing with kill-safe resume, and a
//! scenario library spanning the operating grids a production sign-off sweep
//! walks.
//!
//! [`crate::analysis::YieldAnalysis`] runs one analysis matrix; this module
//! turns it into a *sweep*: many scenarios (supply voltage × temperature ×
//! process corner × Pelgrom mismatch grids) × many estimators, dispatched as
//! independent cells onto an [`crate::exec::Executor`] and persisted cell by cell so a
//! killed run resumes without re-simulating anything it already finished.
//!
//! # The three layers
//!
//! * **Scenario library** — [`Scenario`] describes one operating point
//!   (corner via [`GlobalCorner`], supply, temperature, Pelgrom `A_VT`) and
//!   knows how to build the corresponding [`FailureProblem`] on the SRAM
//!   surrogate. [`SweepPlan`] is the cartesian builder over those axes, plus
//!   the array-capacity targets ([`CapacityTarget`], backed by
//!   [`ArrayYield::required_cell_sigma`]) each scenario's extracted sigma is
//!   judged against.
//! * **Matrix scheduler** — [`SweepRunner`] dispatches the pending cells of a
//!   [`YieldAnalysis`] onto the worker threads of its matrix
//!   [`ExecutionConfig`] (via [`crate::exec::Executor::map_tasks`]). Each cell's seed is
//!   derived order-independently from the master seed, so the assembled
//!   [`AnalysisReport`] is **bit-identical** to the sequential
//!   [`YieldAnalysis::run`] at any matrix thread count.
//! * **Checkpoint / resume** — with [`SweepRunner::checkpoint`], every
//!   completed cell is appended to a JSON-lines file the moment it finishes
//!   (one [`SweepCellRecord`] per line, flushed). On the next run, records
//!   whose master seed, convergence policy and derived per-cell seed still
//!   match are restored verbatim and only the missing cells execute; a
//!   truncated trailing line
//!   (the signature of a kill mid-append) is skipped harmlessly. Because
//!   restored rows and fresh rows are assembled in registration order, a
//!   resumed sweep reproduces the uninterrupted report exactly (`PartialEq`,
//!   which ignores wall-clock metadata).
//!
//! ```no_run
//! use gis_core::sweep::{SweepPlan, SweepRunner};
//! use gis_core::{standard_estimators, ConvergencePolicy, ExecutionConfig};
//! use gis_variation::GlobalCorner;
//!
//! let plan = SweepPlan::new()
//!     .corners(GlobalCorner::all())
//!     .supply_voltages([0.9, 1.0])
//!     .capacity_target("64Mb", 64 * 1024 * 1024, 8, 0.99);
//! let mut analysis = plan
//!     .analysis()
//!     .master_seed(7)
//!     .convergence_policy(ConvergencePolicy::with_budget(20_000))
//!     .estimators(standard_estimators());
//! let outcome = SweepRunner::new()
//!     .matrix(ExecutionConfig::with_threads(4))
//!     .checkpoint("sweep.jsonl")
//!     .run(&mut analysis);
//! // Kill and re-run: completed cells come back from sweep.jsonl.
//! let report = outcome.report.expect("all cells completed");
//! for row in plan.summarize(&report) {
//!     println!("{:<40} {:>6.2}σ", row.problem, row.sigma_level);
//! }
//! ```

use crate::analysis::{AnalysisReport, MethodReport, YieldAnalysis};
use crate::array_yield::ArrayYield;
use crate::estimator::{ConvergencePolicy, WarmStart};
use crate::exec::ExecutionConfig;
use crate::fault::{self, crc32, FaultPlan};
use crate::model::{FailureProblem, Spec};
use crate::sram_models::{SramMetric, SramSurrogateModel};
use gis_sram::{SramCellConfig, SramSurrogate};
use gis_variation::{GlobalCorner, PelgromModel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Threshold-voltage temperature coefficient applied by the scenario library:
/// `ΔV_T = VTH_TEMPERATURE_COEFFICIENT · (T − 25 °C)` for both polarities
/// (thresholds drop as the die heats up), a typical bulk-CMOS value.
pub const VTH_TEMPERATURE_COEFFICIENT: f64 = -1.0e-3;

/// Length of the warm-start donor chain rooted at `name` (0 for a problem
/// without a donor — a blind family origin). Cells execute in ascending
/// donor depth, which is exactly the wave order of the donor forest.
///
/// # Panics
///
/// Panics when the donor map contains a cycle. Maps built by
/// [`SweepPlan::warm_donors`] are acyclic by construction (every donor
/// decrements a grid index), so this only fires on a hand-built map.
fn donor_depth(donors: &BTreeMap<String, String>, name: &str) -> usize {
    let mut depth = 0usize;
    let mut cursor = name;
    while let Some(donor) = donors.get(cursor) {
        depth += 1;
        assert!(
            depth <= donors.len(),
            "warm-start donor map contains a cycle reachable from {name:?}"
        );
        cursor = donor;
    }
    depth
}

/// Panics when `names` contains a duplicate — the sweep scheduler and
/// checkpoint key cells by name, so aliased names would silently clone one
/// cell's results into another.
fn assert_unique(kind: &str, names: &[String]) {
    let mut seen = std::collections::BTreeSet::new();
    for name in names {
        assert!(
            seen.insert(name.as_str()),
            "duplicate {kind} name {name:?}: the sweep scheduler keys cells by \
             name and cannot tell aliased {kind}s apart"
        );
    }
}

/// Short lower-case tag of a corner, used in scenario names.
fn corner_tag(corner: GlobalCorner) -> &'static str {
    match corner {
        GlobalCorner::TypicalTypical => "tt",
        GlobalCorner::FastFast => "ff",
        GlobalCorner::SlowSlow => "ss",
        GlobalCorner::FastSlow => "fs",
        GlobalCorner::SlowFast => "sf",
    }
}

/// One operating point of a sweep: a process corner, supply voltage,
/// junction temperature and Pelgrom mismatch coefficient, plus the dynamic
/// metric under test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Deterministic name, also used as the problem name (and therefore as
    /// part of the per-cell seed derivation and the checkpoint key).
    pub name: String,
    /// Systematic process corner.
    pub corner: GlobalCorner,
    /// Supply voltage in volts.
    pub supply_voltage: f64,
    /// Junction temperature in °C.
    pub temperature_celsius: f64,
    /// Pelgrom mismatch coefficient `A_VT` in V·m.
    pub pelgrom_avt: f64,
    /// Dynamic characteristic under test.
    pub metric: SramMetric,
    /// Systematic ΔV_T magnitude of the corner, in volts.
    pub corner_vth_magnitude: f64,
}

impl Scenario {
    /// Builds the scenario's failure problem on the SRAM surrogate: the
    /// typical 45 nm cell re-biased to this operating point, with the spec an
    /// upper limit at `spec_factor ×` the scenario's own nominal metric.
    ///
    /// The corner and temperature shift the nominal thresholds
    /// (`GlobalCorner::vth_shifts` + [`VTH_TEMPERATURE_COEFFICIENT`]), the
    /// supply re-biases the surrogate, and the Pelgrom coefficient sets the
    /// per-transistor mismatch sigmas of the variation space.
    ///
    /// # Panics
    ///
    /// Panics if the operating point pushes a threshold to or past zero (no
    /// such point exists on the library's grids).
    pub fn problem(&self, spec_factor: f64) -> FailureProblem {
        let mut cell = SramCellConfig::typical_45nm();
        cell.vdd = self.supply_voltage;
        let (shift_n, shift_p) = self.corner.vth_shifts(self.corner_vth_magnitude);
        let thermal = VTH_TEMPERATURE_COEFFICIENT * (self.temperature_celsius - 25.0);
        cell.pass_gate.vth0 += shift_n + thermal;
        cell.pull_down.vth0 += shift_n + thermal;
        cell.pull_up.vth0 += shift_p + thermal;
        assert!(
            cell.pass_gate.vth0 > 0.0 && cell.pull_up.vth0 > 0.0,
            "scenario {} drives a threshold voltage non-positive",
            self.name
        );
        assert!(
            cell.vdd > cell.pass_gate.vth0 && cell.vdd > cell.pull_up.vth0,
            "scenario {} leaves no overdrive (vdd at or below a threshold)",
            self.name
        );
        let mut surrogate = SramSurrogate {
            vdd: cell.vdd,
            vth_n: cell.pass_gate.vth0,
            vth_p: cell.pull_up.vth0,
            ..SramSurrogate::typical_45nm()
        };
        // The surrogate's metrics are normalized to its nominal constants, so
        // re-biasing vdd/vth alone changes only the *sensitivity* to mismatch.
        // Rescale the absolute nominal times with the first-order drive model
        // t ∝ swing / I_on ∝ vdd / (vdd − vth)^α relative to the typical
        // cell, so a slow-corner or low-voltage scenario is genuinely slower
        // in absolute terms (and a hot die, with its lower thresholds at
        // these overdrives, exhibits the classic temperature inversion).
        let typical = SramSurrogate::typical_45nm();
        let nmos_time_scale = |s: &SramSurrogate| s.vdd / (s.vdd - s.vth_n).powf(s.alpha);
        let scale = nmos_time_scale(&surrogate) / nmos_time_scale(&typical);
        surrogate.t_read_nominal *= scale;
        surrogate.t_write_nominal *= scale;
        let pelgrom = PelgromModel::new(self.pelgrom_avt);
        let space = crate::sram_models::default_sram_variation_space(&cell, &pelgrom);
        let model = SramSurrogateModel::new(surrogate, space, self.metric);
        let nominal = model.nominal_metric();
        FailureProblem::from_model(model, Spec::UpperLimit(nominal * spec_factor))
    }
}

/// One array-capacity requirement: "an array of `cells` bitcells with this
/// much repair must yield `target_yield`", which
/// [`ArrayYield::required_cell_sigma`] converts into the per-cell sigma bar a
/// scenario's extraction is judged against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityTarget {
    /// Human-readable name (e.g. `"64Mb"`).
    pub name: String,
    /// The array-yield model (capacity + redundancy).
    pub array: ArrayYield,
    /// Required array yield in `(0, 1)`.
    pub target_yield: f64,
}

impl CapacityTarget {
    /// The per-cell sigma level required to meet this target.
    pub fn required_sigma(&self) -> f64 {
        self.array.required_cell_sigma(self.target_yield)
    }
}

/// Cartesian scenario-grid builder: the cross product of the configured
/// corner / supply / temperature / Pelgrom / metric axes, one failure problem
/// per grid point.
///
/// Defaults to the single typical point (TT, 1.0 V, 25 °C, 2.5 mV·µm, read
/// access time) with a `1.5×` nominal spec — every `with_`-style method
/// widens one axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPlan {
    /// Process corners to span.
    pub corners: Vec<GlobalCorner>,
    /// Supply voltages (volts) to span.
    pub supply_voltages: Vec<f64>,
    /// Junction temperatures (°C) to span.
    pub temperatures_celsius: Vec<f64>,
    /// Pelgrom `A_VT` coefficients (V·m) to span.
    pub pelgrom_avts: Vec<f64>,
    /// Dynamic metrics to extract per operating point.
    pub metrics: Vec<SramMetric>,
    /// Spec limit as a multiple of each scenario's nominal metric.
    pub spec_factor: f64,
    /// Systematic ΔV_T magnitude of the non-typical corners, in volts.
    pub corner_vth_magnitude: f64,
    /// Array-capacity requirements the sweep's sigmas are compared against.
    pub capacity_targets: Vec<CapacityTarget>,
}

impl Default for SweepPlan {
    fn default() -> Self {
        SweepPlan {
            corners: vec![GlobalCorner::TypicalTypical],
            supply_voltages: vec![1.0],
            temperatures_celsius: vec![25.0],
            pelgrom_avts: vec![PelgromModel::typical_45nm().a_vt()],
            metrics: vec![SramMetric::ReadAccessTime],
            spec_factor: 1.5,
            corner_vth_magnitude: 0.03,
            capacity_targets: Vec::new(),
        }
    }
}

impl SweepPlan {
    /// The default single-point plan; widen axes from here.
    pub fn new() -> Self {
        SweepPlan::default()
    }

    /// Sets the process corners to span.
    pub fn corners(mut self, corners: impl IntoIterator<Item = GlobalCorner>) -> Self {
        self.corners = corners.into_iter().collect();
        self
    }

    /// Sets the supply voltages (volts) to span.
    pub fn supply_voltages(mut self, volts: impl IntoIterator<Item = f64>) -> Self {
        self.supply_voltages = volts.into_iter().collect();
        self
    }

    /// Sets the junction temperatures (°C) to span.
    pub fn temperatures(mut self, celsius: impl IntoIterator<Item = f64>) -> Self {
        self.temperatures_celsius = celsius.into_iter().collect();
        self
    }

    /// Sets the Pelgrom `A_VT` coefficients (V·m) to span.
    pub fn pelgrom_avts(mut self, avts: impl IntoIterator<Item = f64>) -> Self {
        self.pelgrom_avts = avts.into_iter().collect();
        self
    }

    /// Sets the dynamic metrics to extract at each operating point.
    pub fn metrics(mut self, metrics: impl IntoIterator<Item = SramMetric>) -> Self {
        self.metrics = metrics.into_iter().collect();
        self
    }

    /// Sets the spec limit as a multiple of each scenario's nominal metric.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn spec_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "spec factor must be positive and finite"
        );
        self.spec_factor = factor;
        self
    }

    /// Adds an array-capacity requirement of `cells` bitcells with
    /// `repairable_cells` of repair at `target_yield` array yield.
    pub fn capacity_target(
        mut self,
        name: impl Into<String>,
        cells: u64,
        repairable_cells: u64,
        target_yield: f64,
    ) -> Self {
        self.capacity_targets.push(CapacityTarget {
            name: name.into(),
            array: ArrayYield::with_redundancy(cells, repairable_cells),
            target_yield,
        });
        self
    }

    /// The scenario grid, in deterministic (nested-axis) order: corner ▸
    /// supply ▸ temperature ▸ A_VT ▸ metric.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty, or if two grid points collide on the same
    /// scenario name (names round supply to 10 mV, temperature to 1 °C and
    /// `A_VT` to 0.1 mV·µm; grid points closer than that would silently alias
    /// one (problem, estimator) cell in the checkpoint and the report).
    pub fn scenarios(&self) -> Vec<Scenario> {
        assert!(
            !self.corners.is_empty()
                && !self.supply_voltages.is_empty()
                && !self.temperatures_celsius.is_empty()
                && !self.pelgrom_avts.is_empty()
                && !self.metrics.is_empty(),
            "every sweep axis needs at least one point"
        );
        let mut out = Vec::new();
        for &corner in &self.corners {
            for &vdd in &self.supply_voltages {
                for &temp in &self.temperatures_celsius {
                    for &avt in &self.pelgrom_avts {
                        for &metric in &self.metrics {
                            out.push(Scenario {
                                name: format!(
                                    "{}_v{:.2}_t{:+.0}c_avt{:.1}_{}",
                                    corner_tag(corner),
                                    vdd,
                                    temp,
                                    avt * 1e9,
                                    metric.name()
                                ),
                                corner,
                                supply_voltage: vdd,
                                temperature_celsius: temp,
                                pelgrom_avt: avt,
                                metric,
                                corner_vth_magnitude: self.corner_vth_magnitude,
                            });
                        }
                    }
                }
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for scenario in &out {
            assert!(
                seen.insert(scenario.name.as_str()),
                "scenario name {:?} is not unique: grid points closer than the \
                 name's rounding (10 mV / 1 °C / 0.1 mV·µm) would alias each other",
                scenario.name
            );
        }
        out
    }

    /// Builds a [`YieldAnalysis`] with one registered problem per scenario
    /// (in grid order). Chain the usual builder calls — master seed, policy,
    /// estimators — onto the result.
    pub fn analysis(&self) -> YieldAnalysis {
        let mut analysis = YieldAnalysis::new();
        for scenario in self.scenarios() {
            let problem = scenario.problem(self.spec_factor);
            analysis = analysis.problem(scenario.name, problem);
        }
        analysis
    }

    /// The warm-start adjacency of this plan's grid: each scenario name
    /// mapped to the name of the *donor* scenario it may seed its searches
    /// from in continuation mode ([`SweepRunner::warm_start`]).
    ///
    /// Adjacency follows the continuous operating axes only — supply,
    /// temperature, `A_VT` — because failure geometry moves smoothly along
    /// them; corner and metric changes swap the problem qualitatively, so
    /// every (corner, metric) family warm-starts independently. The donor of
    /// a grid point is its predecessor along the first continuous axis with a
    /// non-zero index (supply first, then temperature, then `A_VT`), which
    /// makes the donor graph a forest rooted at each family's origin cell
    /// (all continuous indices zero); origin cells have no donor and always
    /// run blind, anchoring every chain to the reproducibility reference.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`scenarios`](Self::scenarios).
    pub fn warm_donors(&self) -> BTreeMap<String, String> {
        let scenarios = self.scenarios();
        let s = self.supply_voltages.len();
        let t = self.temperatures_celsius.len();
        let a = self.pelgrom_avts.len();
        let m = self.metrics.len();
        let flat = |ci: usize, si: usize, ti: usize, ai: usize, mi: usize| {
            (((ci * s + si) * t + ti) * a + ai) * m + mi
        };
        let mut donors = BTreeMap::new();
        for (idx, scenario) in scenarios.iter().enumerate() {
            let mi = idx % m;
            let ai = (idx / m) % a;
            let ti = (idx / (m * a)) % t;
            let si = (idx / (m * a * t)) % s;
            let ci = idx / (m * a * t * s);
            let donor = if si > 0 {
                Some(flat(ci, si - 1, ti, ai, mi))
            } else if ti > 0 {
                Some(flat(ci, si, ti - 1, ai, mi))
            } else if ai > 0 {
                Some(flat(ci, si, ti, ai - 1, mi))
            } else {
                None
            };
            if let Some(donor) = donor {
                donors.insert(scenario.name.clone(), scenarios[donor].name.clone());
            }
        }
        donors
    }

    /// The per-cell sigma requirement of every registered capacity target.
    pub fn sigma_requirements(&self) -> Vec<(String, f64)> {
        self.capacity_targets
            .iter()
            .map(|t| (t.name.clone(), t.required_sigma()))
            .collect()
    }

    /// Flattens a finished report into one row per (scenario, estimator)
    /// cell, each annotated with the margin against every capacity target.
    pub fn summarize(&self, report: &AnalysisReport) -> Vec<SweepSummaryRow> {
        let requirements = self.sigma_requirements();
        let mut rows = Vec::new();
        for problem in &report.problems {
            for method in &problem.methods {
                rows.push(SweepSummaryRow {
                    problem: problem.problem.clone(),
                    estimator: method.estimator.clone(),
                    failure_probability: method.row.failure_probability,
                    sigma_level: method.row.sigma_level,
                    converged: method.row.converged,
                    capacity_margins: requirements
                        .iter()
                        .map(|(name, required)| CapacityMargin {
                            target: name.clone(),
                            required_sigma: *required,
                            margin_sigma: method.row.sigma_level - required,
                            meets: method.row.sigma_level >= *required,
                        })
                        .collect(),
                });
            }
        }
        rows
    }
}

/// One line of [`SweepPlan::summarize`]: a cell's extracted sigma next to
/// every capacity requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummaryRow {
    /// Scenario (problem) name.
    pub problem: String,
    /// Estimator name.
    pub estimator: String,
    /// Extracted failure probability.
    pub failure_probability: f64,
    /// Equivalent sigma level.
    pub sigma_level: f64,
    /// Whether the estimator converged to its accuracy target.
    pub converged: bool,
    /// Margin against each capacity target of the plan.
    pub capacity_margins: Vec<CapacityMargin>,
}

/// Sigma margin of one cell against one [`CapacityTarget`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityMargin {
    /// Capacity-target name.
    pub target: String,
    /// Required per-cell sigma.
    pub required_sigma: f64,
    /// Extracted sigma minus required sigma (positive = passing).
    pub margin_sigma: f64,
    /// `margin_sigma >= 0`.
    pub meets: bool,
}

/// Version of the checkpoint-log line format ([`SweepLogEntry`]). Bump when
/// the envelope or the embedded record schema changes incompatibly; replay
/// discards lines from any other version instead of misreading them.
pub const SWEEP_LOG_VERSION: u32 = 1;

/// [`SweepLogEntry::kind`] of a completed-cell line.
pub const SWEEP_LOG_KIND_CELL: &str = "cell";
/// [`SweepLogEntry::kind`] of a job-submission line (written by job servers
/// layered on the sweep engine; the batch runner skips them on restore).
pub const SWEEP_LOG_KIND_JOB: &str = "job";

/// One line of a sweep checkpoint / job-server journal: a protocol-versioned
/// envelope around either a completed-cell record or a job submission.
///
/// The batch [`SweepRunner`] writes `kind = "cell"` lines and, on restore,
/// accepts both enveloped lines and the pre-envelope bare
/// [`SweepCellRecord`] format (so existing checkpoints stay replayable).
/// A job server (the `gis-serve` daemon) additionally writes `kind = "job"`
/// lines carrying the submitted job spec (opaque to this crate) and tags its
/// cell lines with the content-addressed cache `key`; the batch runner
/// ignores both extras, so a daemon journal is replayable as a plain sweep
/// checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepLogEntry {
    /// Format version ([`SWEEP_LOG_VERSION`]). Mismatched lines are
    /// discarded on replay.
    pub v: u32,
    /// Line kind: [`SWEEP_LOG_KIND_CELL`] or [`SWEEP_LOG_KIND_JOB`].
    pub kind: String,
    /// Content-addressed cell-cache key (job-server lines only).
    pub key: Option<String>,
    /// Opaque job payload (`kind = "job"` lines only).
    pub job: Option<serde::Value>,
    /// The completed cell (`kind = "cell"` lines only).
    pub record: Option<SweepCellRecord>,
    /// CRC-32 ([`crate::fault::crc32`]) of the entry's serialization with
    /// this field set to `None` — see [`SweepLogEntry::sealed`]. `None` on
    /// lines written before checksumming existed; such legacy lines still
    /// replay (validated by JSON parse alone).
    pub crc: Option<u32>,
}

impl SweepLogEntry {
    /// Wraps a completed-cell record in a current-version envelope
    /// (unsealed; call [`sealed`](Self::sealed) before writing).
    pub fn cell(record: SweepCellRecord) -> Self {
        SweepLogEntry {
            v: SWEEP_LOG_VERSION,
            kind: SWEEP_LOG_KIND_CELL.to_string(),
            key: None,
            job: None,
            record: Some(record),
            crc: None,
        }
    }

    /// Wraps an opaque job payload in a current-version envelope
    /// (unsealed; call [`sealed`](Self::sealed) before writing).
    pub fn job(job: serde::Value) -> Self {
        SweepLogEntry {
            v: SWEEP_LOG_VERSION,
            kind: SWEEP_LOG_KIND_JOB.to_string(),
            key: None,
            job: Some(job),
            record: None,
            crc: None,
        }
    }

    /// Attaches a content-addressed cache key (job-server cell lines).
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Seals the entry for writing: sets `crc` to the CRC-32 of the entry's
    /// canonical serialization with `crc = None`. A torn or bit-rotted line
    /// is then detected by checksum on replay even when the damage happens
    /// to still parse as JSON.
    #[allow(clippy::expect_used)] // serializing an in-memory record cannot fail
    pub fn sealed(mut self) -> Self {
        self.crc = None;
        let payload = serde_json::to_string(&self).expect("sweep log entry serializes"); // gis-analyze: allow(panic-site, serializing an in-memory record to a string cannot fail)
        self.crc = Some(crc32(payload.as_bytes()));
        self
    }

    /// Verifies the line checksum. `true` for unsealed legacy lines (no
    /// `crc` recorded); a sealed line must re-serialize (with `crc = None`)
    /// to exactly the bytes its checksum was computed over — the vendored
    /// serializer's canonical field order and shortest-roundtrip float
    /// formatting make that re-serialization deterministic.
    pub fn crc_valid(&self) -> bool {
        let Some(expected) = self.crc else {
            return true;
        };
        let mut unsealed = self.clone();
        unsealed.crc = None;
        serde_json::to_string(&unsealed)
            .map(|payload| crc32(payload.as_bytes()) == expected)
            .unwrap_or(false)
    }
}

/// One durably-persisted cell of a sweep: the checkpoint file holds one of
/// these per line (JSON lines).
///
/// A record is only restored when `master_seed`, the uniform
/// [`ConvergencePolicy`] and the [`MethodReport::seed`] inside all match what
/// the current analysis derives for that (problem, estimator) pair — a
/// checkpoint written against a different seeding, budget or problem set is
/// silently treated as stale and the cell re-runs. (An estimator configured
/// *individually*, outside the driver-level policy, is not captured here;
/// keep per-estimator configuration identical across resumed invocations.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCellRecord {
    /// Master seed of the analysis that produced this cell.
    pub master_seed: u64,
    /// The uniform convergence policy of the analysis that produced this
    /// cell, if one was configured.
    pub policy: Option<ConvergencePolicy>,
    /// Problem (scenario) name.
    pub problem: String,
    /// The completed method report, estimator name and derived seed included.
    pub report: MethodReport,
    /// Donor problem this cell warm-started from, when the sweep ran in
    /// continuation mode and the cell had a donor. `None` marks a blind
    /// cell; the distinction is part of the cell's identity, so warm and
    /// blind records never alias on restore (absent in pre-continuation
    /// checkpoints, which deserialize as blind).
    pub warm_from: Option<String>,
    /// The exact warm-start hint passed to the estimator, extracted from the
    /// donor's diagnostics at execution time (`None` when the donor produced
    /// no usable hint — e.g. a Monte Carlo donor). Stored so a resume can
    /// verify the donor still yields the same hint before trusting the
    /// record.
    pub warm_hint: Option<WarmStart>,
    /// `Some(true)` when this cell's donor completed as a quarantined
    /// failure, so the cell fell back to a blind run despite having a donor
    /// — degradation provenance for audit. `None`/absent for healthy donors,
    /// blind cells, and pre-containment checkpoints.
    pub donor_failed: Option<bool>,
}

/// Progress summary of a (possibly partial) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepStatus {
    /// Total (problem, estimator) cells in the matrix.
    pub total_cells: usize,
    /// Cells completed so far (restored + freshly run).
    pub completed_cells: usize,
    /// Cells restored from the checkpoint file rather than executed.
    pub restored_cells: usize,
    /// Checkpoint lines discarded as stale (seed mismatch, unknown cell) or
    /// corrupt (e.g. the truncated last line of a killed run).
    pub discarded_records: usize,
    /// Names of the cells still pending, as `(problem, estimator)` pairs.
    pub pending: Vec<(String, String)>,
    /// Cells that completed as quarantined failures (typed placeholder
    /// reports, see [`crate::fault::CellOutcome`]), as `(problem, estimator)`
    /// pairs. They count as completed — the run finished — but their
    /// estimates are NaN placeholders and they re-run on resume.
    pub failed_cells: Vec<(String, String)>,
}

impl SweepStatus {
    /// Whether every cell of the matrix is complete.
    pub fn is_complete(&self) -> bool {
        self.completed_cells == self.total_cells
    }

    /// Completed fraction in `[0, 1]` (1 for an empty matrix).
    pub fn fraction_complete(&self) -> f64 {
        if self.total_cells == 0 {
            1.0
        } else {
            self.completed_cells as f64 / self.total_cells as f64
        }
    }
}

/// One incremental cell-completion event of [`SweepRunner::run_observed`]:
/// emitted for every restored cell (in registration order, before any fresh
/// execution) and for every freshly executed cell the moment it completes
/// (from the worker thread that ran it, hence the `Sync` bound on
/// observers). `completed_cells` counts restored + fresh cells reported so
/// far, including this one — a progress bar needs nothing else.
#[derive(Debug)]
pub struct SweepCellUpdate<'a> {
    /// Problem (scenario) name of the completed cell.
    pub problem: &'a str,
    /// Estimator name of the completed cell.
    pub estimator: &'a str,
    /// Cells reported so far, this one included.
    pub completed_cells: usize,
    /// Total cells in the matrix.
    pub total_cells: usize,
    /// `true` when the cell came back from the checkpoint instead of running.
    pub restored: bool,
    /// The cell's full method report.
    pub report: &'a MethodReport,
}

/// Outcome of one [`SweepRunner::run`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The assembled report — `Some` exactly when every cell is complete
    /// (`status.is_complete()`); `None` when a cell budget stopped the run
    /// early, in which case the checkpoint holds everything finished so far.
    pub report: Option<AnalysisReport>,
    /// Progress summary after this invocation.
    pub status: SweepStatus,
}

/// Matrix scheduler with durable checkpoint/resume on top of
/// [`YieldAnalysis`].
///
/// See the [module documentation](self) for the guarantees; in short:
/// bit-identical to [`YieldAnalysis::run`] at any matrix thread count, and a
/// resumed run reproduces the uninterrupted report exactly.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    matrix: ExecutionConfig,
    checkpoint: Option<PathBuf>,
    cell_budget: Option<usize>,
    warm_donors: Option<BTreeMap<String, String>>,
    cell_attempts: u32,
    faults: Option<FaultPlan>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// A runner with matrix parallelism resolved from `GIS_THREADS` and no
    /// checkpointing.
    pub fn new() -> Self {
        SweepRunner {
            matrix: ExecutionConfig::from_env(),
            checkpoint: None,
            cell_budget: None,
            warm_donors: None,
            cell_attempts: fault::DEFAULT_CELL_ATTEMPTS,
            faults: None,
        }
    }

    /// Sets the matrix-level execution configuration (how many cells run
    /// concurrently — independent of each estimator's own thread count).
    pub fn matrix(mut self, matrix: ExecutionConfig) -> Self {
        self.matrix = matrix;
        self
    }

    /// Enables durable checkpointing to the JSON-lines file at `path`
    /// (created on first use; existing completed cells are restored).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Caps how many *new* cells this invocation may execute — the remaining
    /// cells stay pending in the checkpoint. Useful for time-boxed batch
    /// slots, and for deterministically exercising kill/resume in tests.
    pub fn cell_budget(mut self, cells: usize) -> Self {
        self.cell_budget = Some(cells);
        self
    }

    /// Enables dependency-aware continuation mode: every cell whose problem
    /// has a donor in `donors` (usually [`SweepPlan::warm_donors`]) seeds its
    /// search from that donor's completed diagnostics instead of starting
    /// blind. Cells execute in dependency waves — a full barrier between
    /// depths guarantees each donor's diagnostics exist before any dependent
    /// starts — and the checkpoint records carry the donor name and the exact
    /// hint used, so a resumed warm cell replays identically and warm records
    /// never alias blind ones. Problems without a donor (family origins) and
    /// estimators that ignore hints run exactly the blind path.
    ///
    /// Off by default: the blind schedule is the reproducibility reference.
    pub fn warm_start(mut self, donors: BTreeMap<String, String>) -> Self {
        self.warm_donors = Some(donors);
        self
    }

    /// Caps how many times a failing cell is retried (same derived seed —
    /// retries only help against injected or environmental faults, never
    /// against deterministic estimator behaviour) before it is quarantined
    /// as a typed [`crate::fault::CellOutcome::Failed`]. Default
    /// [`fault::DEFAULT_CELL_ATTEMPTS`]; clamped to at least 1.
    pub fn cell_attempts(mut self, attempts: u32) -> Self {
        self.cell_attempts = attempts.max(1);
        self
    }

    /// Injects a deterministic fault plan into this run (tests and chaos
    /// drills). When unset, the process-wide plan from the `GIS_FAULTS`
    /// environment variable applies ([`FaultPlan::from_env`]); both unset
    /// means no injection and no hot-path overhead.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Reads the checkpoint and reports sweep progress without running any
    /// cell. `analysis` is not mutated beyond configuration validation.
    pub fn status(&self, analysis: &mut YieldAnalysis) -> SweepStatus {
        analysis.apply_configuration();
        let (restored, discarded) = self.restore(analysis);
        let restored_count = restored.len();
        self.build_status(analysis, &restored, restored_count, discarded)
    }

    /// Runs every pending cell (up to the cell budget), checkpointing each as
    /// it completes, and assembles the full report once nothing is pending.
    /// Equivalent to [`run_observed`](Self::run_observed) with a no-op
    /// observer.
    ///
    /// # Panics
    ///
    /// Panics on an unrunnable matrix (same conditions as
    /// [`YieldAnalysis::run`]), on duplicate problem or estimator names (the
    /// scheduler keys cells by name), or when the checkpoint file cannot be
    /// opened or appended to — durability failures must not be silent.
    pub fn run(&self, analysis: &mut YieldAnalysis) -> SweepOutcome {
        self.run_observed(analysis, &|_| {})
    }

    /// [`run`](Self::run) with an incremental cell-completion observer: the
    /// streaming entry point behind progress displays and result servers.
    /// The observer receives one [`SweepCellUpdate`] per restored cell (in
    /// registration order, before anything executes) and one per fresh cell
    /// as it completes; fresh events fire on worker threads, so the observer
    /// must be `Sync` and is responsible for its own ordering if it needs
    /// any beyond the per-event `completed_cells` counter.
    ///
    /// # Panics
    ///
    /// Same conditions as [`run`](Self::run).
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn run_observed(
        &self,
        analysis: &mut YieldAnalysis,
        observer: &(dyn Fn(SweepCellUpdate<'_>) + Sync),
    ) -> SweepOutcome {
        analysis.apply_configuration();
        let estimator_names: Vec<String> = analysis
            .estimator_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let problem_names: Vec<String> = analysis
            .problem_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        // The scheduler keys cells by (problem, estimator) name; duplicate
        // names would silently alias cells that the sequential path computes
        // independently, so reject them up front.
        assert_unique("problem", &problem_names);
        assert_unique("estimator", &estimator_names);
        let (mut completed, discarded) = self.restore(analysis);
        let restored = completed.len();
        let total_cells = problem_names.len() * estimator_names.len();
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut reported = 0usize;
        for (pi, problem) in problem_names.iter().enumerate() {
            for (ei, estimator) in estimator_names.iter().enumerate() {
                if let Some(report) = completed.get(&(problem.clone(), estimator.clone())) {
                    reported += 1;
                    observer(SweepCellUpdate {
                        problem,
                        estimator,
                        completed_cells: reported,
                        total_cells,
                        restored: true,
                        report,
                    });
                } else {
                    pending.push((pi, ei));
                }
            }
        }
        let progress = std::sync::atomic::AtomicUsize::new(reported);
        // Continuation mode reorders pending cells into dependency waves
        // (donors strictly before dependents) so a cell budget can never
        // strand a dependent ahead of its donor; blind mode keeps the
        // registration order untouched.
        if let Some(donors) = &self.warm_donors {
            pending.sort_by_key(|&(pi, _)| donor_depth(donors, &problem_names[pi]));
        }
        let to_run: Vec<(usize, usize)> = match self.cell_budget {
            Some(budget) => pending.iter().take(budget).copied().collect(),
            None => pending.clone(),
        };

        // Open the appender before spending any work, so an unwritable
        // checkpoint fails fast instead of after hours of simulation.
        let appender = self.checkpoint.as_ref().map(|path| {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                // gis-analyze: allow(panic-site, deliberate fail-fast: an unwritable checkpoint dir must abort before hours of simulation)
                std::fs::create_dir_all(parent).expect("checkpoint directory is creatable");
            }
            Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .expect("checkpoint file is openable for append"), // gis-analyze: allow(panic-site, deliberate fail-fast: an unopenable checkpoint file must abort before work starts)
            )
        });

        let master_seed = analysis.master_seed_value();
        let policy = analysis.convergence_policy_value();
        let analysis = &*analysis;
        // Deterministic fault injection: an explicit per-runner plan wins,
        // otherwise the process-wide `GIS_FAULTS` plan applies. `None` (the
        // production default) keeps the hot path free of any injection work.
        let faults: Option<&FaultPlan> = match &self.faults {
            Some(plan) => Some(plan),
            None => fault::global(),
        };
        let cell_attempts = self.cell_attempts;
        let journal_appends = std::sync::atomic::AtomicU64::new(0);
        // Shared per-cell execution: run contained (optionally warm),
        // checkpoint with warm provenance, notify the observer. Used by both
        // schedules so the blind path and the wave path write byte-identical
        // records for blind cells. A panicking or non-converging cell is
        // quarantined as a typed placeholder report instead of tearing down
        // the sweep; healthy cells are returned exactly as computed.
        let run_one = |pi: usize,
                       ei: usize,
                       warm_from: Option<String>,
                       warm_hint: Option<WarmStart>,
                       donor_failed: Option<bool>|
         -> MethodReport {
            let outcome = fault::run_contained(
                &problem_names[pi],
                &estimator_names[ei],
                cell_attempts,
                faults,
                || analysis.run_cell_warm(pi, ei, warm_hint.as_ref()),
            );
            let seed = analysis.derived_seed(&problem_names[pi], &estimator_names[ei]);
            let report = outcome.into_report(&estimator_names[ei], seed);
            if let Some(appender) = &appender {
                let record = SweepCellRecord {
                    master_seed,
                    policy,
                    problem: problem_names[pi].clone(),
                    report: report.clone(),
                    warm_from,
                    warm_hint,
                    donor_failed,
                };
                let line = serde_json::to_string(&SweepLogEntry::cell(record).sealed())
                    .expect("sweep cell record serializes"); // gis-analyze: allow(panic-site, serializing an in-memory record to a string cannot fail)
                                                             // A poisoned appender only follows a worker panic; the file
                                                             // itself is still valid (every append is line-atomic under
                                                             // the lock), so recover the guard instead of aborting.
                let mut file = match appender.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let n = journal_appends.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                let appended = if faults.is_some_and(|f| f.tears_journal_line(n)) {
                    // Injected torn write: half the line, no newline — the
                    // shape a kill mid-append leaves behind.
                    write!(file, "{}", &line[..line.len() / 2])
                } else {
                    writeln!(file, "{line}")
                };
                appended.expect("checkpoint line is appendable"); // gis-analyze: allow(panic-site, a lost checkpoint line would silently fake resume safety; abort instead)
                file.flush().expect("checkpoint flushes"); // gis-analyze: allow(panic-site, an unflushed checkpoint would silently fake resume safety; abort instead)
            }
            observer(SweepCellUpdate {
                problem: &problem_names[pi],
                estimator: &estimator_names[ei],
                completed_cells: progress.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1,
                total_cells,
                restored: false,
                report: &report,
            });
            report
        };
        let executor = self.matrix.executor();
        let executed = match &self.warm_donors {
            None => {
                let fresh: Vec<((usize, usize), MethodReport)> =
                    executor.map_tasks(to_run.len(), |task| {
                        let (pi, ei) = to_run[task];
                        ((pi, ei), run_one(pi, ei, None, None, None))
                    });
                let executed = fresh.len();
                for ((pi, ei), report) in fresh {
                    completed.insert(
                        (problem_names[pi].clone(), estimator_names[ei].clone()),
                        report,
                    );
                }
                executed
            }
            Some(donors) => {
                // Wave schedule: `to_run` is depth-sorted, so consecutive
                // equal-depth runs form the waves. The barrier between waves
                // guarantees every donor's report is in `completed` before a
                // dependent extracts its hint.
                let mut executed = 0usize;
                let mut cursor = 0usize;
                while cursor < to_run.len() {
                    let depth = donor_depth(donors, &problem_names[to_run[cursor].0]);
                    let mut end = cursor + 1;
                    while end < to_run.len()
                        && donor_depth(donors, &problem_names[to_run[end].0]) == depth
                    {
                        end += 1;
                    }
                    let wave = &to_run[cursor..end];
                    let fresh: Vec<((usize, usize), MethodReport)> =
                        executor.map_tasks(wave.len(), |task| {
                            let (pi, ei) = wave[task];
                            let donor = donors.get(&problem_names[pi]);
                            let donor_report = donor.and_then(|d| {
                                completed.get(&(d.clone(), estimator_names[ei].clone()))
                            });
                            // A quarantined donor yields no hint (its
                            // placeholder diagnostics carry none), so the
                            // dependent degrades to a blind run; record that
                            // degradation as provenance.
                            let hint = donor_report.and_then(|report| report.outcome.warm_hint());
                            let donor_failed = donor_report
                                .and_then(|report| report.failed.as_ref().map(|_| true));
                            (
                                (pi, ei),
                                run_one(pi, ei, donor.cloned(), hint, donor_failed),
                            )
                        });
                    executed += fresh.len();
                    for ((pi, ei), report) in fresh {
                        completed.insert(
                            (problem_names[pi].clone(), estimator_names[ei].clone()),
                            report,
                        );
                    }
                    cursor = end;
                }
                executed
            }
        };

        let status = self.build_status(analysis, &completed, restored, discarded);
        let report = if status.is_complete() {
            debug_assert_eq!(restored + executed, status.completed_cells);
            let cells = problem_names
                .iter()
                .map(|p| {
                    estimator_names
                        .iter()
                        .map(|e| {
                            completed
                                .get(&(p.clone(), e.clone()))
                                .expect("complete status implies every cell present") // gis-analyze: allow(panic-site, Complete status is only constructed after every cell is present)
                                .clone()
                        })
                        .collect()
                })
                .collect();
            Some(analysis.assemble_report(cells))
        } else {
            None
        };
        SweepOutcome { report, status }
    }

    /// Loads the checkpoint (if configured and present), keeping only records
    /// that match the analysis' current cells and seed derivation. Returns
    /// the restored map and the number of discarded lines.
    fn restore(
        &self,
        analysis: &YieldAnalysis,
    ) -> (BTreeMap<(String, String), MethodReport>, usize) {
        let mut restored = BTreeMap::new();
        let mut discarded = 0usize;
        let Some(path) = &self.checkpoint else {
            return (restored, discarded);
        };
        let Ok(contents) = std::fs::read_to_string(path) else {
            return (restored, discarded);
        };
        let estimator_names: Vec<String> = analysis
            .estimator_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let problem_names: Vec<String> = analysis
            .problem_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for line in contents.lines() {
            if line.trim().is_empty() {
                continue;
            }
            // Current format: a versioned envelope line. A job-submission
            // line (written by a daemon journaling into the same log) is
            // valid but carries no cell, so it is skipped without counting
            // as discarded; a wrong-version envelope is discarded.
            let record = match serde_json::from_str::<SweepLogEntry>(line) {
                // A sealed line whose checksum no longer matches is damaged
                // (torn write or bit rot that still parses as JSON) and is
                // discarded whatever its kind; unsealed legacy lines pass.
                Ok(entry) if !entry.crc_valid() => {
                    discarded += 1;
                    continue;
                }
                Ok(entry) if entry.v == SWEEP_LOG_VERSION && entry.kind == SWEEP_LOG_KIND_JOB => {
                    continue;
                }
                Ok(entry) if entry.v == SWEEP_LOG_VERSION && entry.kind == SWEEP_LOG_KIND_CELL => {
                    match entry.record {
                        Some(record) => record,
                        None => {
                            discarded += 1;
                            continue;
                        }
                    }
                }
                // Legacy format: a bare record line (pre-envelope
                // checkpoints stay replayable). Anything else is corrupt —
                // most commonly the truncated tail of a killed append — and
                // the cell simply re-runs.
                _ => match serde_json::from_str::<SweepCellRecord>(line) {
                    Ok(record) => record,
                    Err(_) => {
                        discarded += 1;
                        continue;
                    }
                },
            };
            // Quarantine is not sticky: a journaled failure documents the
            // fault for the completed run's report, but a resume gives the
            // cell a fresh chance instead of replaying the placeholder.
            // (Discarding a failed donor also transitively re-runs its
            // dependents via the provenance check below.)
            if record.report.is_failed() {
                discarded += 1;
                continue;
            }
            let known_cell = problem_names.contains(&record.problem)
                && estimator_names.contains(&record.report.estimator);
            // Seeds pin the *randomness*; the policy pins the *budget and
            // stopping rule*. Both must match, or a resume after a
            // configuration change would smuggle differently-configured
            // results into a report claimed complete.
            let configuration_matches = record.master_seed == analysis.master_seed_value()
                && record.policy == analysis.convergence_policy_value()
                && known_cell
                && record.report.seed
                    == analysis.derived_seed(&record.problem, &record.report.estimator);
            if !configuration_matches {
                discarded += 1;
                continue;
            }
            // Warm provenance is part of the cell's identity. A blind run
            // never absorbs warm cells (their estimates depend on the donor)
            // and a warm run never absorbs blind non-origin cells (a resume
            // must replay the hinted search). A warm record is additionally
            // only valid while its donor is already restored and still
            // yields the recorded hint — checkpoint lines are appended in
            // wave order, so a valid donor always precedes its dependents,
            // and a discarded donor transitively re-runs them.
            let expected_donor = self
                .warm_donors
                .as_ref()
                .and_then(|donors| donors.get(&record.problem));
            let provenance_matches = match (&record.warm_from, expected_donor) {
                (None, None) => record.warm_hint.is_none(),
                (Some(from), Some(donor)) if from == donor => restored
                    .get(&(donor.clone(), record.report.estimator.clone()))
                    .is_some_and(|donor_report: &MethodReport| {
                        donor_report.outcome.warm_hint() == record.warm_hint
                    }),
                _ => false,
            };
            if !provenance_matches {
                discarded += 1;
                continue;
            }
            let key = (record.problem.clone(), record.report.estimator.clone());
            if restored.insert(key, record.report).is_some() {
                // Duplicate cell (e.g. overlapping partial runs): the newest
                // line wins, the older one counts as discarded.
                discarded += 1;
            }
        }
        (restored, discarded)
    }

    fn build_status(
        &self,
        analysis: &YieldAnalysis,
        completed: &BTreeMap<(String, String), MethodReport>,
        restored: usize,
        discarded: usize,
    ) -> SweepStatus {
        let mut pending = Vec::new();
        let mut failed_cells = Vec::new();
        for p in analysis.problem_names() {
            for e in analysis.estimator_names() {
                match completed.get(&(p.to_string(), e.to_string())) {
                    None => pending.push((p.to_string(), e.to_string())),
                    Some(report) if report.is_failed() => {
                        failed_cells.push((p.to_string(), e.to_string()));
                    }
                    Some(_) => {}
                }
            }
        }
        let total = analysis.problem_names().len() * analysis.estimator_names().len();
        SweepStatus {
            total_cells: total,
            completed_cells: total - pending.len(),
            restored_cells: restored,
            discarded_records: discarded,
            pending,
            failed_cells,
        }
    }
}

/// Convenience: deletes the checkpoint file at `path` if it exists (start a
/// sweep fresh). Missing files are fine; other IO errors are returned.
pub fn clear_checkpoint(path: impl AsRef<Path>) -> std::io::Result<()> {
    match std::fs::remove_file(path.as_ref()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearLimitState;
    use crate::montecarlo::{MonteCarlo, MonteCarloConfig};

    fn tiny_analysis() -> YieldAnalysis {
        let linear = |beta| {
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(3, beta),
                LinearLimitState::spec(),
            )
        };
        YieldAnalysis::new()
            .master_seed(5)
            .convergence_policy(ConvergencePolicy::with_budget(2_000))
            .problem("p-low", linear(2.0))
            .problem("p-high", linear(3.0))
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
    }

    #[test]
    fn scenario_grid_is_the_cartesian_product_in_order() {
        let plan = SweepPlan::new()
            .corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
            .supply_voltages([0.9, 1.0])
            .temperatures([-40.0, 125.0])
            .metrics([SramMetric::ReadAccessTime, SramMetric::WriteDelay]);
        let scenarios = plan.scenarios();
        assert_eq!(scenarios.len(), 2 * 2 * 2 * 2);
        // Names are unique and deterministic.
        let names: std::collections::HashSet<_> =
            scenarios.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), scenarios.len());
        assert_eq!(scenarios[0].name, "tt_v0.90_t-40c_avt2.5_read-access-time");
        // Innermost axis varies fastest.
        assert_eq!(scenarios[1].metric, SramMetric::WriteDelay);
        assert_eq!(scenarios[0].corner, GlobalCorner::TypicalTypical);
        assert_eq!(scenarios.last().unwrap().corner, GlobalCorner::SlowSlow);
    }

    #[test]
    fn scenarios_build_working_problems() {
        let plan = SweepPlan::new()
            .corners([GlobalCorner::SlowSlow])
            .supply_voltages([0.85]);
        let scenarios = plan.scenarios();
        let problem = scenarios[0].problem(plan.spec_factor);
        assert_eq!(problem.dim(), 6);
        // The nominal point passes its own 1.5x spec.
        assert!(!problem.is_failure(&gis_linalg::Vector::zeros(6)));
        // A slow-corner low-voltage cell is slower (larger nominal read time)
        // than the typical one: both effects cut the overdrive.
        let typical = SweepPlan::new().scenarios()[0].problem(1.5);
        let nominal_stressed = problem.spec().limit() / 1.5;
        let nominal_typical = typical.spec().limit() / 1.5;
        assert!(
            nominal_stressed > nominal_typical,
            "stressed {nominal_stressed} vs typical {nominal_typical}"
        );
        // The temperature axis re-biases the thresholds: a hot die has lower
        // V_T under the library's coefficient, so its nominal metric differs
        // from the 25 °C point (temperature inversion: at these overdrives
        // the hot cell reads *faster*).
        let hot = SweepPlan::new().temperatures([125.0]).scenarios()[0].problem(1.5);
        assert!(hot.spec().limit() < typical.spec().limit());
        // The Pelgrom axis widens the variation space: same nominal, larger
        // mismatch sigma, so the same whitened point sits further out
        // physically and fails a spec the tighter-mismatch cell meets.
        let wide = SweepPlan::new().pelgrom_avts([5.0e-9]).scenarios()[0].problem(1.5);
        let stress = gis_linalg::Vector::from_slice(&[4.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let wide_fork = wide.fork();
        assert!(wide_fork.failure_margin(&stress) > typical.fork().failure_margin(&stress));
    }

    #[test]
    fn capacity_targets_translate_to_sigma_requirements() {
        let plan = SweepPlan::new()
            .capacity_target("64Kb", 64 * 1024, 0, 0.99)
            .capacity_target("64Mb", 64 * 1024 * 1024, 0, 0.99);
        let reqs = plan.sigma_requirements();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].0, "64Kb");
        // Bigger arrays demand more sigma.
        assert!(reqs[1].1 > reqs[0].1);
        assert!(reqs[0].1 > 4.0 && reqs[1].1 < 7.5);
    }

    #[test]
    fn runner_without_checkpoint_matches_sequential_run() {
        let sequential = tiny_analysis().run();
        for threads in [1, 2, 8] {
            let outcome = SweepRunner::new()
                .matrix(ExecutionConfig::with_threads(threads))
                .run(&mut tiny_analysis());
            assert!(outcome.status.is_complete());
            assert_eq!(outcome.status.restored_cells, 0);
            assert_eq!(outcome.report.expect("complete"), sequential);
        }
    }

    #[test]
    fn cell_budget_pauses_and_resume_completes() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("budget.jsonl");
        clear_checkpoint(&path).unwrap();

        let reference = tiny_analysis().run();
        let partial = SweepRunner::new()
            .checkpoint(&path)
            .cell_budget(1)
            .run(&mut tiny_analysis());
        assert!(partial.report.is_none());
        assert_eq!(partial.status.completed_cells, 1);
        assert_eq!(partial.status.pending.len(), 1);
        assert!((partial.status.fraction_complete() - 0.5).abs() < 1e-12);

        // Status is readable without running anything.
        let status = SweepRunner::new()
            .checkpoint(&path)
            .status(&mut tiny_analysis());
        assert_eq!(status.completed_cells, 1);
        assert!(!status.is_complete());

        let resumed = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert!(resumed.status.is_complete());
        assert_eq!(resumed.status.restored_cells, 1);
        assert_eq!(resumed.report.expect("complete"), reference);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn policy_change_invalidates_the_checkpoint() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("policy.jsonl");
        clear_checkpoint(&path).unwrap();

        let done = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert!(done.status.is_complete());

        // Same seed, bigger budget: every stored cell ran under the old
        // policy and must not be restored into the new report.
        let repoliced =
            || tiny_analysis().convergence_policy(ConvergencePolicy::with_budget(4_000));
        let status = SweepRunner::new()
            .checkpoint(&path)
            .status(&mut repoliced());
        assert_eq!(status.restored_cells, 0);
        assert_eq!(status.discarded_records, 2);

        let rerun = SweepRunner::new().checkpoint(&path).run(&mut repoliced());
        assert_eq!(rerun.status.restored_cells, 0);
        assert_eq!(rerun.report.expect("complete"), repoliced().run());
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate problem name")]
    fn duplicate_problem_names_are_rejected_by_the_runner() {
        let linear = |beta| {
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(2, beta),
                LinearLimitState::spec(),
            )
        };
        let mut analysis = YieldAnalysis::new()
            .problem("same", linear(2.0))
            .problem("same", linear(3.0))
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())));
        let _ = SweepRunner::new().run(&mut analysis);
    }

    #[test]
    #[should_panic(expected = "is not unique")]
    fn colliding_scenario_names_are_rejected() {
        // Two temperatures that round to the same whole degree alias the
        // scenario name; the grid must refuse instead of silently merging
        // two operating points.
        let _ = SweepPlan::new().temperatures([25.2, 25.4]).scenarios();
    }

    #[test]
    fn stale_and_corrupt_checkpoint_lines_are_discarded() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("stale.jsonl");
        clear_checkpoint(&path).unwrap();

        // Complete a sweep under one master seed...
        let done = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert!(done.status.is_complete());
        // ...corrupt the file with a truncated line...
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"master_seed\": 5, \"problem\": \"p-l").unwrap();
        }
        // ...then re-open it under a *different* master seed: every stored
        // cell is stale and re-runs.
        let mut reseeded = tiny_analysis().master_seed(6);
        let status = SweepRunner::new().checkpoint(&path).status(&mut reseeded);
        assert_eq!(status.restored_cells, 0);
        assert_eq!(status.discarded_records, 3); // 2 stale + 1 corrupt
        assert_eq!(status.pending.len(), 2);

        // Under the original seed the two good lines restore and the corrupt
        // tail is skipped.
        let status = SweepRunner::new()
            .checkpoint(&path)
            .status(&mut tiny_analysis());
        assert_eq!(status.restored_cells, 2);
        assert_eq!(status.discarded_records, 1);
        assert!(status.is_complete());
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn run_observed_reports_every_cell_exactly_once() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("observed.jsonl");
        clear_checkpoint(&path).unwrap();

        // Fresh run: one event per cell, monotone progress up to the total,
        // no cell reported twice.
        let events = std::sync::Mutex::new(Vec::new());
        let outcome = SweepRunner::new().checkpoint(&path).run_observed(
            &mut tiny_analysis(),
            &|update: SweepCellUpdate<'_>| {
                events.lock().unwrap().push((
                    update.problem.to_string(),
                    update.estimator.to_string(),
                    update.completed_cells,
                    update.total_cells,
                    update.restored,
                ));
            },
        );
        assert!(outcome.status.is_complete());
        let mut seen = events.into_inner().unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|e| e.3 == 2 && !e.4));
        seen.sort_by_key(|e| e.2);
        assert_eq!(seen[0].2, 1);
        assert_eq!(seen[1].2, 2);
        let cells: std::collections::HashSet<_> =
            seen.iter().map(|e| (e.0.clone(), e.1.clone())).collect();
        assert_eq!(cells.len(), 2, "each cell reported exactly once");

        // Every checkpoint line written by the run is a versioned envelope.
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            let entry: SweepLogEntry = serde_json::from_str(line).unwrap();
            assert_eq!(entry.v, SWEEP_LOG_VERSION);
            assert_eq!(entry.kind, SWEEP_LOG_KIND_CELL);
            assert!(entry.record.is_some());
        }

        // A job envelope interleaved into the log is tolerated: it is
        // neither restored nor counted as discarded.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            let job = SweepLogEntry::job(serde_json::to_value(&"fast-suite".to_string()).unwrap())
                .with_key("job-demo");
            writeln!(f, "{}", serde_json::to_string(&job).unwrap()).unwrap();
        }

        // Resume replays the completed cells as restored events, in order,
        // before any fresh work would run.
        let replayed = std::sync::Mutex::new(Vec::new());
        let resumed = SweepRunner::new().checkpoint(&path).run_observed(
            &mut tiny_analysis(),
            &|update: SweepCellUpdate<'_>| {
                replayed
                    .lock()
                    .unwrap()
                    .push((update.completed_cells, update.restored));
            },
        );
        assert!(resumed.status.is_complete());
        assert_eq!(resumed.status.restored_cells, 2);
        assert_eq!(resumed.status.discarded_records, 0);
        assert_eq!(replayed.into_inner().unwrap(), vec![(1, true), (2, true)]);
        clear_checkpoint(&path).unwrap();
    }

    fn warm_test_analysis() -> YieldAnalysis {
        let linear = |beta| {
            FailureProblem::from_model(
                LinearLimitState::along_first_axis(3, beta),
                LinearLimitState::spec(),
            )
        };
        YieldAnalysis::new()
            .master_seed(5)
            .convergence_policy(ConvergencePolicy::with_budget(4_000))
            .problem("p-low", linear(2.0))
            .problem("p-high", linear(3.0))
            .estimator(Box::new(crate::gis::GradientImportanceSampling::new(
                crate::gis::GisConfig::default(),
            )))
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
    }

    fn warm_test_donors() -> BTreeMap<String, String> {
        [("p-high".to_string(), "p-low".to_string())]
            .into_iter()
            .collect()
    }

    #[test]
    fn warm_donors_follow_the_grid_axes() {
        let plan = SweepPlan::new()
            .corners([GlobalCorner::TypicalTypical, GlobalCorner::SlowSlow])
            .supply_voltages([0.9, 1.0])
            .temperatures([-40.0, 25.0]);
        let donors = plan.warm_donors();
        let scenarios = plan.scenarios();
        // Per (corner, metric) family exactly one origin has no donor.
        assert_eq!(donors.len(), scenarios.len() - 2);
        let name = |c: &str, v: &str, t: &str| format!("{c}_v{v}_t{t}c_avt2.5_read-access-time");
        // The supply axis decrements first...
        assert_eq!(
            donors[&name("tt", "1.00", "-40")],
            name("tt", "0.90", "-40")
        );
        assert_eq!(
            donors[&name("tt", "1.00", "+25")],
            name("tt", "0.90", "+25")
        );
        // ...then temperature, only at the supply origin...
        assert_eq!(
            donors[&name("tt", "0.90", "+25")],
            name("tt", "0.90", "-40")
        );
        // ...and the family origin runs blind.
        assert!(!donors.contains_key(&name("tt", "0.90", "-40")));
        // Corners are independent families: no cross-corner edges.
        assert_eq!(
            donors[&name("ss", "1.00", "-40")],
            name("ss", "0.90", "-40")
        );
        for (cell, donor) in &donors {
            assert_eq!(cell[..2], donor[..2], "donor crossed a corner family");
        }
    }

    #[test]
    fn warm_mode_records_provenance_and_blind_cells_stay_bit_identical() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("warm_prov.jsonl");
        clear_checkpoint(&path).unwrap();

        let blind = warm_test_analysis().run();
        let outcome = SweepRunner::new()
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .run(&mut warm_test_analysis());
        assert!(outcome.status.is_complete());
        let report = outcome.report.expect("complete");

        // The origin problem has no donor: its cells are bit-identical to
        // the blind reference. So is the Monte Carlo cell of the warm
        // problem — Monte Carlo ignores hints by contract.
        assert_eq!(report.problems[0], blind.problems[0]);
        assert_eq!(report.problems[1].methods[1], blind.problems[1].methods[1]);

        // Every checkpoint record carries its provenance: the donor name
        // and the exact hint the estimator consumed.
        let mut records = BTreeMap::new();
        for line in std::fs::read_to_string(&path).unwrap().lines() {
            let entry: SweepLogEntry = serde_json::from_str(line).unwrap();
            let record = entry.record.unwrap();
            records.insert(
                (record.problem.clone(), record.report.estimator.clone()),
                record,
            );
        }
        let origin = &records[&("p-low".to_string(), "gradient-is".to_string())];
        assert_eq!(origin.warm_from, None);
        assert_eq!(origin.warm_hint, None);
        let warm_gis = &records[&("p-high".to_string(), "gradient-is".to_string())];
        assert_eq!(warm_gis.warm_from, Some("p-low".to_string()));
        assert!(
            warm_gis.warm_hint.is_some(),
            "the converged donor MPFP must yield a hint"
        );
        assert_eq!(
            warm_gis.warm_hint,
            report.problems[0].methods[0].outcome.warm_hint()
        );
        let warm_mc = &records[&("p-high".to_string(), "monte-carlo".to_string())];
        assert_eq!(warm_mc.warm_from, Some("p-low".to_string()));
        assert_eq!(warm_mc.warm_hint, None, "a Monte Carlo donor has no hint");
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn warm_resume_replays_bit_identically() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("warm_resume.jsonl");
        clear_checkpoint(&path).unwrap();

        let reference = SweepRunner::new()
            .warm_start(warm_test_donors())
            .run(&mut warm_test_analysis())
            .report
            .expect("complete");

        // Budget 2 runs exactly the depth-0 wave (both origin cells), then
        // the resume restores them and runs the warm wave.
        let partial = SweepRunner::new()
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .cell_budget(2)
            .run(&mut warm_test_analysis());
        assert!(partial.report.is_none());
        assert_eq!(partial.status.completed_cells, 2);
        for (problem, _) in &partial.status.pending {
            assert_eq!(problem, "p-high", "the budget must fill donor cells first");
        }

        let resumed = SweepRunner::new()
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .run(&mut warm_test_analysis());
        assert!(resumed.status.is_complete());
        assert_eq!(resumed.status.restored_cells, 2);
        assert_eq!(resumed.status.discarded_records, 0);
        assert_eq!(resumed.report.expect("complete"), reference);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn warm_and_blind_checkpoints_never_alias() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("warm_alias.jsonl");
        clear_checkpoint(&path).unwrap();

        // A completed blind checkpoint resumed warm: the non-origin cells
        // carry no provenance, so only the origin cells restore.
        let blind = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut warm_test_analysis());
        assert!(blind.status.is_complete());
        let status = SweepRunner::new()
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .status(&mut warm_test_analysis());
        assert_eq!(status.restored_cells, 2);
        assert_eq!(status.discarded_records, 2);

        // And a completed warm checkpoint resumed blind discards the warm
        // cells symmetrically.
        clear_checkpoint(&path).unwrap();
        let warm = SweepRunner::new()
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .run(&mut warm_test_analysis());
        assert!(warm.status.is_complete());
        let status = SweepRunner::new()
            .checkpoint(&path)
            .status(&mut warm_test_analysis());
        assert_eq!(status.restored_cells, 2);
        assert_eq!(status.discarded_records, 2);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn sealed_entries_verify_and_tampered_entries_do_not() {
        let record = SweepCellRecord {
            master_seed: 5,
            policy: Some(ConvergencePolicy::with_budget(2_000)),
            problem: "p-low".to_string(),
            report: tiny_analysis().run().problems[0].methods[0].clone(),
            warm_from: None,
            warm_hint: None,
            donor_failed: None,
        };
        let sealed = SweepLogEntry::cell(record).sealed();
        assert!(sealed.crc.is_some());
        assert!(sealed.crc_valid());
        // The seal survives a JSON round trip (the serializer's canonical
        // formatting is what makes re-serialization deterministic).
        let line = serde_json::to_string(&sealed).unwrap();
        let reread: SweepLogEntry = serde_json::from_str(&line).unwrap();
        assert!(reread.crc_valid());
        // Tampering with any sealed content breaks verification.
        let mut tampered = sealed.clone();
        tampered.kind = "job".to_string();
        assert!(!tampered.crc_valid());
        // Legacy lines without a checksum still verify (parse-only trust).
        let mut legacy = sealed;
        legacy.crc = None;
        assert!(legacy.crc_valid());
    }

    #[test]
    fn injected_panic_is_quarantined_and_healthy_cells_are_bit_identical() {
        let reference = tiny_analysis().run();
        let faults = FaultPlan::parse("panic:p-low/monte-carlo").unwrap();
        let outcome = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(2))
            .faults(faults)
            .run(&mut tiny_analysis());
        // The run completes: one poisoned cell no longer aborts the sweep.
        assert!(outcome.status.is_complete());
        assert_eq!(
            outcome.status.failed_cells,
            vec![("p-low".to_string(), "monte-carlo".to_string())]
        );
        let report = outcome.report.expect("complete");
        let failed = &report.problems[0].methods[0];
        assert!(failed.is_failed());
        assert!(failed.row.failure_probability.is_nan());
        let failure = failed.failed.as_ref().unwrap();
        assert_eq!(failure.attempts, crate::fault::DEFAULT_CELL_ATTEMPTS);
        assert!(matches!(
            failure.reason,
            crate::fault::CellFailureReason::Panic { .. }
        ));
        // The healthy cell is bit-identical to the fault-free run.
        assert_eq!(report.problems[1], reference.problems[1]);
    }

    #[test]
    fn fault_clearing_within_the_attempt_budget_is_bit_identical() {
        // The fault fires on attempt 1 only; the seed-deterministic retry
        // reruns the identical cell and the report shows no trace of it.
        let reference = tiny_analysis().run();
        let faults = FaultPlan::parse("panic:p-low/monte-carlo:1").unwrap();
        let outcome = SweepRunner::new().faults(faults).run(&mut tiny_analysis());
        assert!(outcome.status.failed_cells.is_empty());
        assert_eq!(outcome.report.expect("complete"), reference);
    }

    #[test]
    fn singular_and_nan_injections_are_typed_distinctly() {
        let faults = FaultPlan::parse("singular:p-low/monte-carlo,nan:p-high/monte-carlo").unwrap();
        let outcome = SweepRunner::new().faults(faults).run(&mut tiny_analysis());
        assert_eq!(outcome.status.failed_cells.len(), 2);
        let report = outcome.report.expect("complete");
        assert!(matches!(
            report.problems[0].methods[0]
                .failed
                .as_ref()
                .unwrap()
                .reason,
            crate::fault::CellFailureReason::NonConvergence { .. }
        ));
        assert!(matches!(
            report.problems[1].methods[0]
                .failed
                .as_ref()
                .unwrap()
                .reason,
            crate::fault::CellFailureReason::NanMetric { .. }
        ));
    }

    #[test]
    fn quarantined_cells_rerun_on_resume_and_converge_to_the_reference() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("quarantine.jsonl");
        clear_checkpoint(&path).unwrap();

        let reference = tiny_analysis().run();
        let faults = FaultPlan::parse("panic:p-low/monte-carlo").unwrap();
        let faulted = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(1))
            .checkpoint(&path)
            .faults(faults)
            .run(&mut tiny_analysis());
        assert!(faulted.status.is_complete());
        assert_eq!(faulted.status.failed_cells.len(), 1);

        // Quarantine is not sticky: the journaled failure is discarded on
        // restore and the cell re-runs — now fault-free — to the exact
        // fault-free report.
        let resumed = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert!(resumed.status.is_complete());
        assert_eq!(resumed.status.restored_cells, 1);
        assert_eq!(resumed.status.discarded_records, 1);
        assert!(resumed.status.failed_cells.is_empty());
        assert_eq!(resumed.report.expect("complete"), reference);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn injected_torn_journal_line_discards_only_that_cell_on_resume() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("torn.jsonl");
        clear_checkpoint(&path).unwrap();

        let reference = tiny_analysis().run();
        // Threads pinned to 1 so append order is registration order: line 2
        // (the torn one) is the p-high cell, and it is the checkpoint tail.
        let faults = FaultPlan::parse("torn-journal:2").unwrap();
        let torn = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(1))
            .checkpoint(&path)
            .faults(faults)
            .run(&mut tiny_analysis());
        // The in-memory run is unaffected — only durability was damaged.
        assert!(torn.status.is_complete());
        assert!(torn.status.failed_cells.is_empty());
        assert_eq!(torn.report.expect("complete"), reference);
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(!contents.ends_with('\n'), "the tail must be torn");

        let resumed = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert_eq!(resumed.status.restored_cells, 1);
        assert_eq!(resumed.status.discarded_records, 1);
        assert_eq!(resumed.report.expect("complete"), reference);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn checksum_catches_corruption_that_still_parses() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bitrot.jsonl");
        clear_checkpoint(&path).unwrap();

        let reference = tiny_analysis().run();
        let done = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(1))
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert!(done.status.is_complete());

        // Flip a digit of the first record's evaluation count. The line
        // still parses and still passes every configuration check — only
        // the checksum knows the result is not what was computed.
        let contents = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = contents.lines().map(|l| l.to_string()).collect();
        let needle = "\"evaluations\":";
        let pos = lines[0].find(needle).unwrap() + needle.len();
        let digit = lines[0][pos..pos + 1].parse::<u32>().unwrap();
        lines[0].replace_range(pos..pos + 1, &format!("{}", (digit + 1) % 10));
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();

        let resumed = SweepRunner::new()
            .checkpoint(&path)
            .run(&mut tiny_analysis());
        assert_eq!(resumed.status.restored_cells, 1);
        assert_eq!(resumed.status.discarded_records, 1);
        // The corrupted cell re-ran and the report matches bit for bit.
        assert_eq!(resumed.report.expect("complete"), reference);
        clear_checkpoint(&path).unwrap();
    }

    #[test]
    fn quarantined_donor_degrades_dependent_to_blind_with_provenance() {
        let dir = std::env::temp_dir().join("gis_sweep_unit");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("donor_failed.jsonl");
        clear_checkpoint(&path).unwrap();

        let blind_reference = SweepRunner::new()
            .run(&mut warm_test_analysis())
            .report
            .expect("complete");
        let faults = FaultPlan::parse("panic:p-low/gradient-is").unwrap();
        let outcome = SweepRunner::new()
            .matrix(ExecutionConfig::with_threads(1))
            .checkpoint(&path)
            .warm_start(warm_test_donors())
            .faults(faults)
            .run(&mut warm_test_analysis());
        assert!(outcome.status.is_complete());
        assert_eq!(
            outcome.status.failed_cells,
            vec![("p-low".to_string(), "gradient-is".to_string())]
        );
        let report = outcome.report.expect("complete");
        // The dependent of the quarantined donor fell back to a blind run:
        // bit-identical to the blind reference despite continuation mode.
        assert_eq!(report.problems[1], blind_reference.problems[1]);

        // And the degradation is recorded as provenance in the checkpoint.
        let contents = std::fs::read_to_string(&path).unwrap();
        let dependent = contents
            .lines()
            .filter_map(|line| serde_json::from_str::<SweepLogEntry>(line).ok())
            .filter_map(|entry| entry.record)
            .find(|r| r.problem == "p-high" && r.report.estimator == "gradient-is")
            .expect("dependent cell is journaled");
        assert_eq!(dependent.warm_from.as_deref(), Some("p-low"));
        assert_eq!(dependent.warm_hint, None);
        assert_eq!(dependent.donor_failed, Some(true));
        clear_checkpoint(&path).unwrap();
    }
}
