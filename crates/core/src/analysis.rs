//! The [`YieldAnalysis`] driver: one builder that runs any set of estimators
//! on any set of failure problems with reproducible per-run seeding.
//!
//! Before this driver existed every table binary, example and integration
//! test hand-rolled the same comparison loop (build problem → fork → seed →
//! run method → format row). `YieldAnalysis` centralizes that loop on top of
//! the object-safe [`Estimator`] trait:
//!
//! * problems are registered by name,
//! * estimators are registered as `Box<dyn Estimator>`,
//! * every (problem, estimator) pair gets a deterministic RNG stream derived
//!   from one master seed — independent of registration order, so adding a
//!   method never perturbs another method's stream,
//! * an optional [`ConvergencePolicy`] imposes a uniform evaluation budget and
//!   stopping rule across methods, and
//! * the output is a serde-serializable [`AnalysisReport`] holding both the
//!   formatted [`ComparisonRow`]s and the full per-method
//!   [`EstimatorOutcome`]s.
//!
//! ```
//! use gis_core::{
//!     standard_estimators, ConvergencePolicy, FailureProblem, LinearLimitState,
//!     YieldAnalysis,
//! };
//!
//! let report = YieldAnalysis::new()
//!     .master_seed(7)
//!     .convergence_policy(ConvergencePolicy::with_budget(20_000))
//!     .problem(
//!         "linear-4sigma",
//!         FailureProblem::from_model(
//!             LinearLimitState::along_first_axis(4, 4.0),
//!             LinearLimitState::spec(),
//!         ),
//!     )
//!     .estimators(standard_estimators())
//!     .run();
//! assert_eq!(report.problems.len(), 1);
//! assert_eq!(report.problems[0].methods.len(), 5);
//! ```

use crate::baselines::{
    MinimumNormIs, MnisConfig, ScaledSigmaSampling, SphericalSampling, SphericalSamplingConfig,
    SssConfig,
};
use crate::estimator::{ConvergencePolicy, Estimator, EstimatorOutcome, WarmStart};
use crate::exec::{ExecutionConfig, Executor};
use crate::fault::CellFailure;
use crate::gis::{GisConfig, GradientImportanceSampling};
use crate::model::FailureProblem;
use crate::montecarlo::{required_samples, MonteCarlo, MonteCarloConfig};
use crate::result::ExtractionResult;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One row of a method-comparison table, in the format of the paper's
/// evaluation tables, extended with execution metadata (worker threads,
/// wall-clock time).
///
/// Equality deliberately ignores `threads` and `wall_time_seconds`: the
/// determinism contract of [`crate::exec`] guarantees that the *statistical*
/// content is identical at every thread count, and `PartialEq` compares
/// exactly that content — so reports produced at different parallelism levels
/// (or on machines of different speeds) compare equal.
///
/// `wall_time_seconds` is excluded from the serialized form (it is restored
/// as `NaN`, "not measured"): the JSON artifacts the table binaries write
/// must stay byte-reproducible run over run for a fixed configuration, and a
/// wall-clock can't be. `threads` *is* serialized — it is deterministic for a
/// fixed configuration, so artifacts remain reproducible; runs at different
/// thread counts produce artifacts differing in this one metadata field while
/// every statistical field stays byte-identical. Timing artifacts belong to
/// the perf harness (`bench_evaluation`), which records wall-clock through
/// its own schema.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Method name.
    pub method: String,
    /// Estimated failure probability.
    pub failure_probability: f64,
    /// Equivalent sigma level.
    pub sigma_level: f64,
    /// Relative 90% confidence half-width.
    pub relative_confidence_90: f64,
    /// Total simulator evaluations spent (search + sampling).
    pub evaluations: u64,
    /// Speed-up versus the analytical brute-force Monte Carlo cost for the
    /// same probability at 10% relative error; `NaN` when the method produced
    /// no usable estimate.
    pub speedup_vs_monte_carlo: f64,
    /// Whether the method converged to its accuracy target.
    pub converged: bool,
    /// Whether the method's diagnostics suggest more than one dominant
    /// failure region (see
    /// [`IsDiagnostics::multimodal_suspected`](crate::importance::IsDiagnostics::multimodal_suspected)).
    /// Always `false` for methods without the heuristic (Monte Carlo,
    /// spherical, SSS) and for rows built from a bare [`ExtractionResult`].
    pub multimodal_suspected: bool,
    /// Worker threads the run was configured with (0 when unknown, e.g. a row
    /// built directly from an [`ExtractionResult`]).
    pub threads: usize,
    /// Wall-clock seconds the extraction took (`NaN` when not measured).
    pub wall_time_seconds: f64,
}

impl Serialize for ComparisonRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("method".to_string(), self.method.to_value()),
            (
                "failure_probability".to_string(),
                self.failure_probability.to_value(),
            ),
            ("sigma_level".to_string(), self.sigma_level.to_value()),
            (
                "relative_confidence_90".to_string(),
                self.relative_confidence_90.to_value(),
            ),
            ("evaluations".to_string(), self.evaluations.to_value()),
            (
                "speedup_vs_monte_carlo".to_string(),
                self.speedup_vs_monte_carlo.to_value(),
            ),
            ("converged".to_string(), self.converged.to_value()),
            (
                "multimodal_suspected".to_string(),
                self.multimodal_suspected.to_value(),
            ),
            ("threads".to_string(), self.threads.to_value()),
        ])
    }
}

impl Deserialize for ComparisonRow {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ComparisonRow {
            method: serde::from_field(value, "method")?,
            failure_probability: serde::from_field(value, "failure_probability")?,
            sigma_level: serde::from_field(value, "sigma_level")?,
            relative_confidence_90: serde::from_field(value, "relative_confidence_90")?,
            evaluations: serde::from_field(value, "evaluations")?,
            speedup_vs_monte_carlo: serde::from_field(value, "speedup_vs_monte_carlo")?,
            converged: serde::from_field(value, "converged")?,
            // Rows serialized before the multimodality heuristic existed load
            // as "not suspected".
            multimodal_suspected: serde::from_field(value, "multimodal_suspected").unwrap_or(false),
            // Rows serialized before the execution metadata existed load as
            // "unknown threads".
            threads: serde::from_field(value, "threads").unwrap_or(0),
            wall_time_seconds: f64::NAN,
        })
    }
}

impl PartialEq for ComparisonRow {
    fn eq(&self, other: &Self) -> bool {
        self.method == other.method
            && self.failure_probability.to_bits() == other.failure_probability.to_bits()
            && self.sigma_level.to_bits() == other.sigma_level.to_bits()
            && self.relative_confidence_90.to_bits() == other.relative_confidence_90.to_bits()
            && self.evaluations == other.evaluations
            && self.speedup_vs_monte_carlo.to_bits() == other.speedup_vs_monte_carlo.to_bits()
            && self.converged == other.converged
            && self.multimodal_suspected == other.multimodal_suspected
        // threads / wall_time_seconds are execution metadata, not results.
    }
}

impl ComparisonRow {
    /// Builds a row from an extraction result, measuring speed-up against the
    /// analytical brute-force cost for the same probability and 10% accuracy.
    /// Execution metadata is unset (use [`ComparisonRow::with_timing`]).
    pub fn from_result(result: &ExtractionResult) -> ComparisonRow {
        let mc_cost = if result.failure_probability > 0.0 && result.failure_probability < 1.0 {
            required_samples(result.failure_probability, 0.1)
        } else {
            f64::NAN
        };
        let speedup = if result.evaluations > 0 && mc_cost.is_finite() {
            mc_cost / result.evaluations as f64
        } else {
            f64::NAN
        };
        ComparisonRow {
            method: result.method.clone(),
            failure_probability: result.failure_probability,
            sigma_level: result.sigma_level,
            relative_confidence_90: result.relative_confidence_90(),
            evaluations: result.evaluations,
            speedup_vs_monte_carlo: speedup,
            converged: result.converged,
            multimodal_suspected: false,
            threads: 0,
            wall_time_seconds: f64::NAN,
        }
    }

    /// Builds a row from a full estimator outcome, surfacing the
    /// diagnostics-level multimodality suspicion alongside the statistical
    /// content of [`ComparisonRow::from_result`].
    pub fn from_outcome(outcome: &EstimatorOutcome) -> ComparisonRow {
        let mut row = ComparisonRow::from_result(&outcome.result);
        row.multimodal_suspected = outcome.multimodal_suspected();
        row
    }

    /// Attaches execution metadata (worker threads and measured wall-clock).
    pub fn with_timing(mut self, threads: usize, wall_time_seconds: f64) -> ComparisonRow {
        self.threads = threads;
        self.wall_time_seconds = wall_time_seconds;
        self
    }

    /// Metric evaluations per wall-clock second (`NaN` when not measured).
    pub fn evaluations_per_second(&self) -> f64 {
        if self.wall_time_seconds > 0.0 {
            self.evaluations as f64 / self.wall_time_seconds
        } else {
            f64::NAN
        }
    }
}

/// Result of one estimator on one problem, inside an [`AnalysisReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodReport {
    /// Estimator name.
    pub estimator: String,
    /// The derived RNG seed this run used (reproducible in isolation via
    /// `RngStream::from_seed`).
    pub seed: u64,
    /// The formatted comparison row.
    pub row: ComparisonRow,
    /// The full outcome, including method-specific diagnostics.
    pub outcome: EstimatorOutcome,
    /// `Some` when the cell was quarantined by the containment plane
    /// ([`crate::fault::run_contained`]): `row`/`outcome` then hold the inert
    /// NaN placeholder of [`crate::fault::failed_report`] instead of a
    /// result. `None` for every healthy cell (and for records written before
    /// fault containment existed — the field deserializes as absent).
    pub failed: Option<CellFailure>,
}

impl MethodReport {
    /// Whether this cell was quarantined instead of completing.
    pub fn is_failed(&self) -> bool {
        self.failed.is_some()
    }
}

/// All method results for one named problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemReport {
    /// Problem name as registered on the driver.
    pub problem: String,
    /// One entry per estimator, in registration order.
    pub methods: Vec<MethodReport>,
}

impl ProblemReport {
    /// The comparison rows of this problem, in registration order.
    pub fn rows(&self) -> Vec<ComparisonRow> {
        self.methods.iter().map(|m| m.row.clone()).collect()
    }

    /// Looks up a method's report by estimator name.
    pub fn method(&self, name: &str) -> Option<&MethodReport> {
        self.methods.iter().find(|m| m.estimator == name)
    }
}

/// The full output of a [`YieldAnalysis`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The master seed every per-run stream was derived from.
    pub master_seed: u64,
    /// One entry per registered problem, in registration order.
    pub problems: Vec<ProblemReport>,
}

impl AnalysisReport {
    /// Looks up a problem's report by name.
    pub fn problem(&self, name: &str) -> Option<&ProblemReport> {
        self.problems.iter().find(|p| p.problem == name)
    }

    /// The quarantined `(problem, estimator)` cells of this report, in
    /// registration order — empty for a fault-free run.
    pub fn failed_cells(&self) -> Vec<(String, String)> {
        self.problems
            .iter()
            .flat_map(|p| {
                p.methods
                    .iter()
                    .filter(|m| m.is_failed())
                    .map(|m| (p.problem.clone(), m.estimator.clone()))
            })
            .collect()
    }
}

/// FNV-1a hash used for order-independent seed derivation (shared with the
/// replication-seed derivation in [`crate::calibration`]).
pub(crate) fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The default estimator line-up of the paper's evaluation: all five methods
/// with their default configurations, boxed for use with [`YieldAnalysis`].
pub fn standard_estimators() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(GradientImportanceSampling::new(GisConfig::default())),
        Box::new(MonteCarlo::new(MonteCarloConfig::default())),
        Box::new(MinimumNormIs::new(MnisConfig::default())),
        Box::new(SphericalSampling::new(SphericalSamplingConfig::default())),
        Box::new(ScaledSigmaSampling::new(SssConfig::default())),
    ]
}

/// Builder-style driver running every registered estimator on every
/// registered problem. See the [module documentation](self) for an example.
#[derive(Default)]
pub struct YieldAnalysis {
    problems: Vec<(String, FailureProblem)>,
    estimators: Vec<Box<dyn Estimator>>,
    master_seed: u64,
    policy: Option<ConvergencePolicy>,
    execution: Option<ExecutionConfig>,
}

impl YieldAnalysis {
    /// Creates an empty analysis (master seed 0, no uniform policy, execution
    /// resolved from `GIS_THREADS` by each estimator).
    pub fn new() -> Self {
        YieldAnalysis::default()
    }

    /// Sets the master seed all per-run streams are derived from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Imposes a uniform evaluation budget and stopping rule on every
    /// registered estimator (applied when [`run`](Self::run) is called).
    pub fn convergence_policy(mut self, policy: ConvergencePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Imposes one parallel-execution configuration on every registered
    /// estimator (applied when [`run`](Self::run) is called). Callers pick
    /// parallelism once here; per the [`crate::exec`] determinism contract the
    /// choice changes wall-clock only, never the report's estimates.
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = Some(execution);
        self
    }

    /// Registers a named failure problem. Each estimator runs against its own
    /// [`FailureProblem::fork`], so evaluation counters never mix.
    pub fn problem(mut self, name: impl Into<String>, problem: FailureProblem) -> Self {
        self.problems.push((name.into(), problem));
        self
    }

    /// Registers one estimator.
    pub fn estimator(mut self, estimator: Box<dyn Estimator>) -> Self {
        self.estimators.push(estimator);
        self
    }

    /// Registers several estimators at once (e.g. [`standard_estimators`]).
    pub fn estimators(mut self, estimators: Vec<Box<dyn Estimator>>) -> Self {
        self.estimators.extend(estimators);
        self
    }

    /// Derives the deterministic seed for a (problem, estimator) pair.
    ///
    /// The derivation hashes both names, so it is independent of registration
    /// order: adding or removing a method never changes the stream any other
    /// method sees.
    pub fn derived_seed(&self, problem_name: &str, estimator_name: &str) -> u64 {
        let mix = fnv1a(problem_name) ^ fnv1a(estimator_name).rotate_left(17);
        RngStream::from_seed(self.master_seed).split(mix).seed()
    }

    /// Applies the registered [`ConvergencePolicy`] and [`ExecutionConfig`] to
    /// every estimator and validates that the matrix is runnable. Idempotent;
    /// called by every run entry point before any cell executes.
    ///
    /// External schedulers (e.g. a job server dispatching single cells via
    /// [`run_cell`](Self::run_cell)) call this once up front through the
    /// public [`prepare`](Self::prepare) alias.
    ///
    /// # Panics
    ///
    /// Panics if no problems or no estimators are registered, or if a
    /// configured [`ConvergencePolicy`] is invalid.
    pub(crate) fn apply_configuration(&mut self) {
        assert!(
            !self.problems.is_empty(),
            "YieldAnalysis: no problems registered"
        );
        assert!(
            !self.estimators.is_empty(),
            "YieldAnalysis: no estimators registered"
        );
        if let Some(policy) = self.policy {
            assert!(
                policy.max_evaluations > 0,
                "YieldAnalysis: convergence policy needs a positive evaluation budget"
            );
            assert!(
                policy.target_relative_error > 0.0,
                "YieldAnalysis: convergence policy needs a positive relative-error target"
            );
            for estimator in &mut self.estimators {
                estimator.configure(&policy);
            }
        }
        if let Some(execution) = self.execution {
            for estimator in &mut self.estimators {
                estimator.set_execution(execution);
            }
        }
    }

    /// Validates the matrix and applies the registered policy and execution
    /// configuration to every estimator. Idempotent. Must be called before
    /// dispatching individual cells via [`run_cell`](Self::run_cell) or
    /// [`run_named_cell`](Self::run_named_cell); the bulk entry points
    /// ([`run`](Self::run), [`run_on`](Self::run_on)) call it themselves.
    ///
    /// # Panics
    ///
    /// Panics if no problems or no estimators are registered, or if a
    /// configured [`ConvergencePolicy`] is invalid.
    pub fn prepare(&mut self) {
        self.apply_configuration();
    }

    /// The configured master seed (see [`master_seed`](Self::master_seed)).
    pub fn master_seed_value(&self) -> u64 {
        self.master_seed
    }

    /// The configured uniform convergence policy, if any (see
    /// [`convergence_policy`](Self::convergence_policy)).
    pub fn convergence_policy_value(&self) -> Option<ConvergencePolicy> {
        self.policy
    }

    /// Registered problem names, in registration order.
    pub fn problem_names(&self) -> Vec<&str> {
        self.problems.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Registered estimator names, in registration order.
    pub fn estimator_names(&self) -> Vec<&str> {
        self.estimators.iter().map(|e| e.name()).collect()
    }

    /// Runs one (problem, estimator) cell of the analysis matrix.
    ///
    /// Every cell is self-contained — its own [`FailureProblem::fork`]
    /// (independent evaluation counter) and its own RNG stream from
    /// [`YieldAnalysis::derived_seed`] — so the result depends only on the
    /// cell's inputs, never on which other cells ran before it or
    /// concurrently with it. This is the invariant the matrix scheduler in
    /// [`crate::sweep`] — and any external job scheduler, e.g. the `gis-serve`
    /// daemon filling its content-addressed result cache one keyed cell at a
    /// time — relies on. Call [`prepare`](Self::prepare) first.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn run_cell(&self, problem_index: usize, estimator_index: usize) -> MethodReport {
        self.run_cell_warm(problem_index, estimator_index, None)
    }

    /// Runs one cell with an optional [`WarmStart`] hint from a completed
    /// neighbor (the continuation-mode entry point; see [`crate::sweep`]).
    ///
    /// `run_cell_warm(pi, ei, None)` is exactly [`run_cell`](Self::run_cell):
    /// the cell's seed, fork and estimator dispatch are identical, and
    /// every estimator's `estimate_warm(.., None)` is bit-identical to its
    /// blind `estimate`. The hint never touches the RNG derivation, so a
    /// warm cell differs from its blind twin only through the estimator's
    /// documented hint semantics.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn run_cell_warm(
        &self,
        problem_index: usize,
        estimator_index: usize,
        warm: Option<&WarmStart>,
    ) -> MethodReport {
        let (problem_name, problem) = &self.problems[problem_index];
        let estimator = &self.estimators[estimator_index];
        let seed = self.derived_seed(problem_name, estimator.name());
        let fork = problem.fork();
        let mut rng = RngStream::from_seed(seed);
        // Recorded per method: each estimator's own effective config
        // (driver-wide `execution` has been applied by apply_configuration,
        // but an estimator configured individually keeps its setting).
        let threads = estimator.effective_execution().resolved_threads();
        let started = Instant::now();
        let outcome = estimator.estimate_warm(&fork, &mut rng, warm);
        let wall_time_seconds = started.elapsed().as_secs_f64();
        MethodReport {
            estimator: estimator.name().to_string(),
            seed,
            row: ComparisonRow::from_outcome(&outcome).with_timing(threads, wall_time_seconds),
            outcome,
            failed: None,
        }
    }

    /// Runs a single (problem, estimator) cell addressed by name instead of
    /// index — the entry point a keyed result cache uses to fill exactly one
    /// cell. Returns `None` when either name is not registered. Call
    /// [`prepare`](Self::prepare) first.
    pub fn run_named_cell(&self, problem: &str, estimator: &str) -> Option<MethodReport> {
        let pi = self.problems.iter().position(|(n, _)| n == problem)?;
        let ei = self.estimators.iter().position(|e| e.name() == estimator)?;
        Some(self.run_cell(pi, ei))
    }

    /// Assembles per-cell method reports (indexed `[problem][estimator]` in
    /// registration order) into an [`AnalysisReport`].
    pub(crate) fn assemble_report(&self, cells: Vec<Vec<MethodReport>>) -> AnalysisReport {
        AnalysisReport {
            master_seed: self.master_seed,
            problems: self
                .problems
                .iter()
                .zip(cells)
                .map(|((name, _), methods)| ProblemReport {
                    problem: name.clone(),
                    methods,
                })
                .collect(),
        }
    }

    /// Runs every estimator on every problem sequentially and collects the
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if no problems or no estimators are registered, or if a
    /// configured [`ConvergencePolicy`] maps onto an invalid method
    /// configuration.
    pub fn run(&mut self) -> AnalysisReport {
        self.apply_configuration();
        let cells = (0..self.problems.len())
            .map(|pi| {
                (0..self.estimators.len())
                    .map(|ei| self.run_cell(pi, ei))
                    .collect()
            })
            .collect();
        self.assemble_report(cells)
    }

    /// Runs the analysis with the independent (problem, estimator) cells of
    /// the matrix dispatched onto the worker threads of `matrix` — on top of
    /// whatever *within*-estimator parallelism each cell's own
    /// [`ExecutionConfig`] provides.
    ///
    /// Because every cell draws from its own order-independent derived seed
    /// and evaluation counter, the report is **bit-identical** to the
    /// sequential [`run`](Self::run) at any matrix thread count — scheduling
    /// changes wall-clock only. For checkpointed sweeps over large scenario
    /// grids, use [`crate::sweep::SweepRunner`], which adds durable
    /// cell-by-cell persistence on top of this scheduler.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`run`](Self::run).
    pub fn run_on(&mut self, matrix: &Executor) -> AnalysisReport {
        self.apply_configuration();
        let estimators = self.estimators.len();
        let total = self.problems.len() * estimators;
        let mut flat = matrix
            .map_tasks(total, |cell| {
                self.run_cell(cell / estimators, cell % estimators)
            })
            .into_iter();
        let cells = (0..self.problems.len())
            .map(|_| flat.by_ref().take(estimators).collect())
            .collect();
        self.assemble_report(cells)
    }
}

impl std::fmt::Debug for YieldAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldAnalysis")
            .field("master_seed", &self.master_seed)
            .field(
                "problems",
                &self.problems.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field(
                "estimators",
                &self.estimators.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .field("execution", &self.execution)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearLimitState;

    fn linear_problem(beta: f64) -> FailureProblem {
        FailureProblem::from_model(
            LinearLimitState::along_first_axis(4, beta),
            LinearLimitState::spec(),
        )
    }

    #[test]
    fn runs_all_estimators_on_all_problems() {
        let report = YieldAnalysis::new()
            .master_seed(11)
            .convergence_policy(ConvergencePolicy::with_budget(10_000))
            .problem("beta-3", linear_problem(3.0))
            .problem("beta-4", linear_problem(4.0))
            .estimators(standard_estimators())
            .run();
        assert_eq!(report.problems.len(), 2);
        for problem in &report.problems {
            assert_eq!(problem.methods.len(), 5);
            for method in &problem.methods {
                assert_eq!(method.row.method, method.estimator);
                assert!(method.row.evaluations > 0);
            }
        }
        assert!(report.problem("beta-3").is_some());
        assert!(report
            .problem("beta-3")
            .unwrap()
            .method("gradient-is")
            .is_some());
    }

    #[test]
    fn reports_are_reproducible_from_the_master_seed() {
        let run = || {
            YieldAnalysis::new()
                .master_seed(99)
                .convergence_policy(ConvergencePolicy::with_budget(5_000))
                .problem("p", linear_problem(3.5))
                .estimators(standard_estimators())
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_derivation_is_order_independent() {
        let analysis = YieldAnalysis::new().master_seed(5);
        let seed_direct = analysis.derived_seed("p", "gradient-is");
        // Registering more problems/estimators must not perturb the seed.
        let crowded = YieldAnalysis::new()
            .master_seed(5)
            .problem("other", linear_problem(3.0))
            .estimators(standard_estimators());
        assert_eq!(seed_direct, crowded.derived_seed("p", "gradient-is"));
        // Distinct pairs get distinct seeds.
        assert_ne!(seed_direct, analysis.derived_seed("p", "monte-carlo"));
        assert_ne!(seed_direct, analysis.derived_seed("q", "gradient-is"));
    }

    #[test]
    fn execution_config_changes_wall_clock_only() {
        let run = |execution: ExecutionConfig| {
            YieldAnalysis::new()
                .master_seed(23)
                .convergence_policy(ConvergencePolicy::with_budget(6_000))
                .execution(execution)
                .problem("p", linear_problem(3.0))
                .estimators(standard_estimators())
                .run()
        };
        let serial = run(ExecutionConfig::serial());
        let parallel = run(ExecutionConfig::with_threads(4));
        // Rows compare equal across thread counts by design: equality covers
        // the statistical content, not the execution metadata.
        assert_eq!(serial, parallel);
        for (a, b) in serial.problems[0]
            .methods
            .iter()
            .zip(&parallel.problems[0].methods)
        {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.row.threads, 1);
            assert_eq!(b.row.threads, 4);
            assert!(a.row.wall_time_seconds >= 0.0);
            assert!(b.row.evaluations_per_second() > 0.0);
        }
    }

    #[test]
    fn matrix_parallel_run_is_bit_identical_to_sequential() {
        let build = || {
            YieldAnalysis::new()
                .master_seed(77)
                .convergence_policy(ConvergencePolicy::with_budget(4_000))
                .problem("beta-3", linear_problem(3.0))
                .problem("beta-35", linear_problem(3.5))
                .estimators(standard_estimators())
        };
        let sequential = build().run();
        for matrix_threads in [1, 2, 8] {
            let parallel = build().run_on(&Executor::new(matrix_threads));
            // PartialEq on reports compares the statistical content bit for
            // bit (timing excluded) — the matrix scheduler must not perturb
            // a single bit of it.
            assert_eq!(
                parallel, sequential,
                "matrix run diverged at {matrix_threads} threads"
            );
        }
    }

    #[test]
    fn cell_accessors_expose_registration_order() {
        let analysis = YieldAnalysis::new()
            .problem("a", linear_problem(3.0))
            .problem("b", linear_problem(3.5))
            .estimators(standard_estimators());
        assert_eq!(analysis.problem_names(), vec!["a", "b"]);
        assert_eq!(analysis.estimator_names()[0], "gradient-is");
        assert_eq!(analysis.estimator_names().len(), 5);
    }

    #[test]
    fn report_serializes_round_trip() {
        let report = YieldAnalysis::new()
            .master_seed(1)
            .convergence_policy(ConvergencePolicy::with_budget(2_000))
            .problem("p", linear_problem(2.5))
            .estimators(standard_estimators())
            .run();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        let back: AnalysisReport = serde_json::from_str(&json).expect("report round trips");
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "no estimators registered")]
    fn empty_estimator_list_is_rejected() {
        let _ = YieldAnalysis::new().problem("p", linear_problem(3.0)).run();
    }

    #[test]
    #[should_panic(expected = "no problems registered")]
    fn empty_problem_list_is_rejected() {
        let _ = YieldAnalysis::new().estimators(standard_estimators()).run();
    }
}
