//! The [`YieldAnalysis`] driver: one builder that runs any set of estimators
//! on any set of failure problems with reproducible per-run seeding.
//!
//! Before this driver existed every table binary, example and integration
//! test hand-rolled the same comparison loop (build problem → fork → seed →
//! run method → format row). `YieldAnalysis` centralizes that loop on top of
//! the object-safe [`Estimator`] trait:
//!
//! * problems are registered by name,
//! * estimators are registered as `Box<dyn Estimator>`,
//! * every (problem, estimator) pair gets a deterministic RNG stream derived
//!   from one master seed — independent of registration order, so adding a
//!   method never perturbs another method's stream,
//! * an optional [`ConvergencePolicy`] imposes a uniform evaluation budget and
//!   stopping rule across methods, and
//! * the output is a serde-serializable [`AnalysisReport`] holding both the
//!   formatted [`ComparisonRow`]s and the full per-method
//!   [`EstimatorOutcome`]s.
//!
//! ```
//! use gis_core::{
//!     standard_estimators, ConvergencePolicy, FailureProblem, LinearLimitState,
//!     YieldAnalysis,
//! };
//!
//! let report = YieldAnalysis::new()
//!     .master_seed(7)
//!     .convergence_policy(ConvergencePolicy::with_budget(20_000))
//!     .problem(
//!         "linear-4sigma",
//!         FailureProblem::from_model(
//!             LinearLimitState::along_first_axis(4, 4.0),
//!             LinearLimitState::spec(),
//!         ),
//!     )
//!     .estimators(standard_estimators())
//!     .run();
//! assert_eq!(report.problems.len(), 1);
//! assert_eq!(report.problems[0].methods.len(), 5);
//! ```

use crate::baselines::{
    MinimumNormIs, MnisConfig, ScaledSigmaSampling, SphericalSampling, SphericalSamplingConfig,
    SssConfig,
};
use crate::estimator::{ConvergencePolicy, Estimator, EstimatorOutcome};
use crate::gis::{GisConfig, GradientImportanceSampling};
use crate::model::FailureProblem;
use crate::montecarlo::{required_samples, MonteCarlo, MonteCarloConfig};
use crate::result::ExtractionResult;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// One row of a method-comparison table, in the format of the paper's
/// evaluation tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Method name.
    pub method: String,
    /// Estimated failure probability.
    pub failure_probability: f64,
    /// Equivalent sigma level.
    pub sigma_level: f64,
    /// Relative 90% confidence half-width.
    pub relative_confidence_90: f64,
    /// Total simulator evaluations spent (search + sampling).
    pub evaluations: u64,
    /// Speed-up versus the analytical brute-force Monte Carlo cost for the
    /// same probability at 10% relative error; `NaN` when the method produced
    /// no usable estimate.
    pub speedup_vs_monte_carlo: f64,
    /// Whether the method converged to its accuracy target.
    pub converged: bool,
}

impl ComparisonRow {
    /// Builds a row from an extraction result, measuring speed-up against the
    /// analytical brute-force cost for the same probability and 10% accuracy.
    pub fn from_result(result: &ExtractionResult) -> ComparisonRow {
        let mc_cost = if result.failure_probability > 0.0 && result.failure_probability < 1.0 {
            required_samples(result.failure_probability, 0.1)
        } else {
            f64::NAN
        };
        let speedup = if result.evaluations > 0 && mc_cost.is_finite() {
            mc_cost / result.evaluations as f64
        } else {
            f64::NAN
        };
        ComparisonRow {
            method: result.method.clone(),
            failure_probability: result.failure_probability,
            sigma_level: result.sigma_level,
            relative_confidence_90: result.relative_confidence_90(),
            evaluations: result.evaluations,
            speedup_vs_monte_carlo: speedup,
            converged: result.converged,
        }
    }
}

/// Result of one estimator on one problem, inside an [`AnalysisReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodReport {
    /// Estimator name.
    pub estimator: String,
    /// The derived RNG seed this run used (reproducible in isolation via
    /// `RngStream::from_seed`).
    pub seed: u64,
    /// The formatted comparison row.
    pub row: ComparisonRow,
    /// The full outcome, including method-specific diagnostics.
    pub outcome: EstimatorOutcome,
}

/// All method results for one named problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemReport {
    /// Problem name as registered on the driver.
    pub problem: String,
    /// One entry per estimator, in registration order.
    pub methods: Vec<MethodReport>,
}

impl ProblemReport {
    /// The comparison rows of this problem, in registration order.
    pub fn rows(&self) -> Vec<ComparisonRow> {
        self.methods.iter().map(|m| m.row.clone()).collect()
    }

    /// Looks up a method's report by estimator name.
    pub fn method(&self, name: &str) -> Option<&MethodReport> {
        self.methods.iter().find(|m| m.estimator == name)
    }
}

/// The full output of a [`YieldAnalysis`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// The master seed every per-run stream was derived from.
    pub master_seed: u64,
    /// One entry per registered problem, in registration order.
    pub problems: Vec<ProblemReport>,
}

impl AnalysisReport {
    /// Looks up a problem's report by name.
    pub fn problem(&self, name: &str) -> Option<&ProblemReport> {
        self.problems.iter().find(|p| p.problem == name)
    }
}

/// FNV-1a hash used for order-independent seed derivation.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The default estimator line-up of the paper's evaluation: all five methods
/// with their default configurations, boxed for use with [`YieldAnalysis`].
pub fn standard_estimators() -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(GradientImportanceSampling::new(GisConfig::default())),
        Box::new(MonteCarlo::new(MonteCarloConfig::default())),
        Box::new(MinimumNormIs::new(MnisConfig::default())),
        Box::new(SphericalSampling::new(SphericalSamplingConfig::default())),
        Box::new(ScaledSigmaSampling::new(SssConfig::default())),
    ]
}

/// Builder-style driver running every registered estimator on every
/// registered problem. See the [module documentation](self) for an example.
#[derive(Default)]
pub struct YieldAnalysis {
    problems: Vec<(String, FailureProblem)>,
    estimators: Vec<Box<dyn Estimator>>,
    master_seed: u64,
    policy: Option<ConvergencePolicy>,
}

impl YieldAnalysis {
    /// Creates an empty analysis (master seed 0, no uniform policy).
    pub fn new() -> Self {
        YieldAnalysis::default()
    }

    /// Sets the master seed all per-run streams are derived from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Imposes a uniform evaluation budget and stopping rule on every
    /// registered estimator (applied when [`run`](Self::run) is called).
    pub fn convergence_policy(mut self, policy: ConvergencePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Registers a named failure problem. Each estimator runs against its own
    /// [`FailureProblem::fork`], so evaluation counters never mix.
    pub fn problem(mut self, name: impl Into<String>, problem: FailureProblem) -> Self {
        self.problems.push((name.into(), problem));
        self
    }

    /// Registers one estimator.
    pub fn estimator(mut self, estimator: Box<dyn Estimator>) -> Self {
        self.estimators.push(estimator);
        self
    }

    /// Registers several estimators at once (e.g. [`standard_estimators`]).
    pub fn estimators(mut self, estimators: Vec<Box<dyn Estimator>>) -> Self {
        self.estimators.extend(estimators);
        self
    }

    /// Derives the deterministic seed for a (problem, estimator) pair.
    ///
    /// The derivation hashes both names, so it is independent of registration
    /// order: adding or removing a method never changes the stream any other
    /// method sees.
    pub fn derived_seed(&self, problem_name: &str, estimator_name: &str) -> u64 {
        let mix = fnv1a(problem_name) ^ fnv1a(estimator_name).rotate_left(17);
        RngStream::from_seed(self.master_seed).split(mix).seed()
    }

    /// Runs every estimator on every problem and collects the report.
    ///
    /// # Panics
    ///
    /// Panics if no problems or no estimators are registered, or if a
    /// configured [`ConvergencePolicy`] maps onto an invalid method
    /// configuration.
    pub fn run(&mut self) -> AnalysisReport {
        assert!(
            !self.problems.is_empty(),
            "YieldAnalysis: no problems registered"
        );
        assert!(
            !self.estimators.is_empty(),
            "YieldAnalysis: no estimators registered"
        );
        if let Some(policy) = self.policy {
            assert!(
                policy.max_evaluations > 0,
                "YieldAnalysis: convergence policy needs a positive evaluation budget"
            );
            assert!(
                policy.target_relative_error > 0.0,
                "YieldAnalysis: convergence policy needs a positive relative-error target"
            );
            for estimator in &mut self.estimators {
                estimator.configure(&policy);
            }
        }

        let mut problems_out = Vec::with_capacity(self.problems.len());
        for (problem_name, problem) in &self.problems {
            let mut methods = Vec::with_capacity(self.estimators.len());
            for estimator in &self.estimators {
                let seed = self.derived_seed(problem_name, estimator.name());
                let fork = problem.fork();
                let mut rng = RngStream::from_seed(seed);
                let outcome = estimator.estimate(&fork, &mut rng);
                methods.push(MethodReport {
                    estimator: estimator.name().to_string(),
                    seed,
                    row: ComparisonRow::from_result(&outcome.result),
                    outcome,
                });
            }
            problems_out.push(ProblemReport {
                problem: problem_name.clone(),
                methods,
            });
        }
        AnalysisReport {
            master_seed: self.master_seed,
            problems: problems_out,
        }
    }
}

impl std::fmt::Debug for YieldAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YieldAnalysis")
            .field("master_seed", &self.master_seed)
            .field(
                "problems",
                &self.problems.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field(
                "estimators",
                &self.estimators.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .field("policy", &self.policy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearLimitState;

    fn linear_problem(beta: f64) -> FailureProblem {
        FailureProblem::from_model(
            LinearLimitState::along_first_axis(4, beta),
            LinearLimitState::spec(),
        )
    }

    #[test]
    fn runs_all_estimators_on_all_problems() {
        let report = YieldAnalysis::new()
            .master_seed(11)
            .convergence_policy(ConvergencePolicy::with_budget(10_000))
            .problem("beta-3", linear_problem(3.0))
            .problem("beta-4", linear_problem(4.0))
            .estimators(standard_estimators())
            .run();
        assert_eq!(report.problems.len(), 2);
        for problem in &report.problems {
            assert_eq!(problem.methods.len(), 5);
            for method in &problem.methods {
                assert_eq!(method.row.method, method.estimator);
                assert!(method.row.evaluations > 0);
            }
        }
        assert!(report.problem("beta-3").is_some());
        assert!(report
            .problem("beta-3")
            .unwrap()
            .method("gradient-is")
            .is_some());
    }

    #[test]
    fn reports_are_reproducible_from_the_master_seed() {
        let run = || {
            YieldAnalysis::new()
                .master_seed(99)
                .convergence_policy(ConvergencePolicy::with_budget(5_000))
                .problem("p", linear_problem(3.5))
                .estimators(standard_estimators())
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_derivation_is_order_independent() {
        let analysis = YieldAnalysis::new().master_seed(5);
        let seed_direct = analysis.derived_seed("p", "gradient-is");
        // Registering more problems/estimators must not perturb the seed.
        let crowded = YieldAnalysis::new()
            .master_seed(5)
            .problem("other", linear_problem(3.0))
            .estimators(standard_estimators());
        assert_eq!(seed_direct, crowded.derived_seed("p", "gradient-is"));
        // Distinct pairs get distinct seeds.
        assert_ne!(seed_direct, analysis.derived_seed("p", "monte-carlo"));
        assert_ne!(seed_direct, analysis.derived_seed("q", "gradient-is"));
    }

    #[test]
    fn report_serializes_round_trip() {
        let report = YieldAnalysis::new()
            .master_seed(1)
            .convergence_policy(ConvergencePolicy::with_budget(2_000))
            .problem("p", linear_problem(2.5))
            .estimators(standard_estimators())
            .run();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        let back: AnalysisReport = serde_json::from_str(&json).expect("report round trips");
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "no estimators registered")]
    fn empty_estimator_list_is_rejected() {
        let _ = YieldAnalysis::new().problem("p", linear_problem(3.0)).run();
    }

    #[test]
    #[should_panic(expected = "no problems registered")]
    fn empty_problem_list_is_rejected() {
        let _ = YieldAnalysis::new().estimators(standard_estimators()).run();
    }
}
