//! Array-level yield arithmetic: translating a per-cell failure probability
//! into memory-array yield, with and without redundant (spare) rows, and the
//! inverse problem of deriving the per-cell sigma target for a capacity/yield
//! requirement — the numbers a memory architect actually asks the extraction
//! flow for.

use serde::{Deserialize, Serialize};

/// Numerically stable `ln(exp(a) + exp(b))`.
fn log_sum_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    // gis-analyze: allow(float-eq, empty-accumulator sentinel: log-sum-exp of nothing is -inf)
    if lo == f64::NEG_INFINITY {
        return hi;
    }
    let out = hi + (lo - hi).exp().ln_1p();
    debug_assert!(!out.is_nan(), "log_sum_exp({a}, {b}) produced NaN");
    out
}

/// Array-level yield model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayYield {
    /// Number of bitcells in the array.
    pub cells: u64,
    /// Number of defective cells that can be repaired (spare rows/columns,
    /// expressed in repairable cells).
    pub repairable_cells: u64,
}

impl ArrayYield {
    /// An array of `cells` bitcells without redundancy.
    pub fn without_redundancy(cells: u64) -> Self {
        ArrayYield {
            cells,
            repairable_cells: 0,
        }
    }

    /// An array of `cells` bitcells that can repair up to `repairable_cells`
    /// failing cells.
    pub fn with_redundancy(cells: u64, repairable_cells: u64) -> Self {
        ArrayYield {
            cells,
            repairable_cells,
        }
    }

    /// Probability that the array yields (all failures repairable) for a given
    /// per-cell failure probability.
    ///
    /// Uses the Poisson approximation of the binomial count of failing cells,
    /// `λ = N·p`, which is accurate to many digits in the regime of interest
    /// (`p ≤ 1e-4`, `N ≥ 1e3`).
    ///
    /// Equal to `exp(log_yield_probability(p))` capped at 1; see
    /// [`ArrayYield::log_yield_probability`] for the far-tail regime where the
    /// probability itself underflows f64.
    ///
    /// # Panics
    ///
    /// Panics if `per_cell_failure_probability` is not in `[0, 1]`.
    pub fn yield_probability(&self, per_cell_failure_probability: f64) -> f64 {
        self.log_yield_probability(per_cell_failure_probability)
            .exp()
            .min(1.0)
    }

    /// Natural log of [`ArrayYield::yield_probability`]: `ln P(X ≤ k)` for
    /// `X ~ Poisson(N·p)`, exact in log space.
    ///
    /// The Poisson CDF is accumulated by a streaming log-sum-exp over the
    /// recursive term ratio `term_i = term_{i-1} · λ/i`, so no individual term
    /// is ever exponentiated on its own — the naive linear-space sum underflows
    /// term by term once `λ ≳ 750` even when the log of the CDF is perfectly
    /// representable, and pays a fresh `ln_gamma` per term on top. An
    /// upper-tail shortcut answers `0.0` (yield = 1) without touching the
    /// `O(k)` loop whenever a Chernoff bound proves the missed tail mass is
    /// below 1e-18, which is what keeps
    /// [`ArrayYield::required_cell_failure_probability`] (200 bisection steps,
    /// each calling this) cheap for generously-repairable arrays.
    ///
    /// # Panics
    ///
    /// Panics if `per_cell_failure_probability` is not in `[0, 1]`.
    pub fn log_yield_probability(&self, per_cell_failure_probability: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&per_cell_failure_probability),
            "per-cell failure probability must be in [0, 1]"
        );
        if self.cells == 0 {
            return 0.0;
        }
        let lambda = self.cells as f64 * per_cell_failure_probability;
        // gis-analyze: allow(float-eq, exact-zero rate short-circuits the Poisson tail)
        if lambda == 0.0 {
            return 0.0;
        }
        let k = self.repairable_cells;
        let k_f = k as f64;
        // Chernoff upper-tail shortcut: for k > λ,
        //   ln P(X > k) ≤ k − λ − k·ln(k/λ),
        // so once that bound drops below ln(1e-18) the CDF is 1 to within
        // f64 round-off and the term loop is pure waste.
        if k_f > lambda && k_f - lambda - k_f * (k_f / lambda).ln() < -41.5 {
            return 0.0;
        }
        // Streaming log-sum-exp of ln(term_i) = -λ + i·ln λ − ln i!, built
        // incrementally: ln(term_i) = ln(term_{i-1}) + ln λ − ln i.
        let ln_lambda = lambda.ln();
        let mut log_term = -lambda;
        let mut log_sum = log_term;
        for i in 1..=k {
            log_term += ln_lambda - (i as f64).ln();
            log_sum = log_sum_exp(log_sum, log_term);
        }
        debug_assert!(
            !log_sum.is_nan(),
            "Poisson log-CDF accumulation produced NaN (lambda={lambda}, k={k})"
        );
        log_sum.min(0.0)
    }

    /// Expected number of failing cells in the array.
    pub fn expected_failures(&self, per_cell_failure_probability: f64) -> f64 {
        self.cells as f64 * per_cell_failure_probability
    }

    /// The largest per-cell failure probability that still achieves the target
    /// array yield, found by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `target_yield` is not in `(0, 1)`.
    pub fn required_cell_failure_probability(&self, target_yield: f64) -> f64 {
        assert!(
            target_yield > 0.0 && target_yield < 1.0,
            "target yield must be in (0, 1)"
        );
        if self.cells == 0 {
            return 1.0;
        }
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.yield_probability(mid) >= target_yield {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The per-cell sigma target corresponding to
    /// [`ArrayYield::required_cell_failure_probability`].
    ///
    /// # Panics
    ///
    /// Panics if `target_yield` is not in `(0, 1)`.
    pub fn required_cell_sigma(&self, target_yield: f64) -> f64 {
        let p = self.required_cell_failure_probability(target_yield);
        if p <= 0.0 {
            f64::INFINITY
        } else if p >= 1.0 {
            0.0
        } else {
            gis_stats::normal::sigma_level(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_without_redundancy_matches_closed_form() {
        let array = ArrayYield::without_redundancy(1_000_000);
        let p = 1e-7_f64;
        // Exact binomial yield (1-p)^N vs the Poisson approximation.
        let exact = (1.0 - p).powf(1e6);
        let approx = array.yield_probability(p);
        assert!((exact - approx).abs() < 1e-6, "{exact} vs {approx}");
        // Edge cases.
        assert_eq!(array.yield_probability(0.0), 1.0);
        assert_eq!(
            ArrayYield::without_redundancy(0).yield_probability(0.5),
            1.0
        );
        assert!((array.expected_failures(p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn redundancy_improves_yield() {
        let p = 2e-6;
        let plain = ArrayYield::without_redundancy(1 << 20);
        let repaired = ArrayYield::with_redundancy(1 << 20, 4);
        let y_plain = plain.yield_probability(p);
        let y_repaired = repaired.yield_probability(p);
        assert!(y_repaired > y_plain);
        assert!(
            y_repaired > 0.9,
            "4 spare cells should rescue the yield, got {y_repaired}"
        );
        // With enough spares the yield approaches 1.
        let generous = ArrayYield::with_redundancy(1 << 20, 64);
        assert!(generous.yield_probability(p) > 0.999999);
    }

    #[test]
    fn required_probability_inverts_yield() {
        let array = ArrayYield::with_redundancy(8 * 1024 * 1024, 8);
        let target = 0.99;
        let p_req = array.required_cell_failure_probability(target);
        assert!(p_req > 0.0 && p_req < 1e-4);
        let achieved = array.yield_probability(p_req);
        assert!((achieved - target).abs() < 0.01, "achieved {achieved}");
        // Tighter target → smaller allowed probability.
        let p_tighter = array.required_cell_failure_probability(0.999);
        assert!(p_tighter < p_req);
    }

    #[test]
    fn sigma_targets_grow_with_capacity() {
        // The classic statement "a 64 Mb array needs ~6 sigma cells".
        let small = ArrayYield::without_redundancy(64 * 1024);
        let large = ArrayYield::without_redundancy(64 * 1024 * 1024);
        let sigma_small = small.required_cell_sigma(0.99);
        let sigma_large = large.required_cell_sigma(0.99);
        assert!(sigma_large > sigma_small);
        assert!(sigma_small > 4.0 && sigma_small < 6.0, "{sigma_small}");
        assert!(sigma_large > 5.5 && sigma_large < 7.5, "{sigma_large}");
    }

    /// Exact binomial CDF `P(X ≤ k)` for `X ~ Binomial(n, p)`, accumulated in
    /// log space — the ground truth the Poisson approximation is checked
    /// against.
    fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
        use crate::special::ln_gamma;
        let ln_n1 = ln_gamma(n as f64 + 1.0);
        let (ln_p, ln_q) = (p.ln(), (-p).ln_1p());
        let mut log_sum = f64::NEG_INFINITY;
        for i in 0..=k {
            let i_f = i as f64;
            let log_term = ln_n1 - ln_gamma(i_f + 1.0) - ln_gamma(n as f64 - i_f + 1.0)
                + i_f * ln_p
                + (n as f64 - i_f) * ln_q;
            log_sum = super::log_sum_exp(log_sum, log_term);
        }
        log_sum.exp().min(1.0)
    }

    #[test]
    fn poisson_cdf_cross_checks_exact_binomial_at_large_lambda() {
        // λ = N·p = 1000 with p small enough that the Poisson approximation
        // is tight (total-variation distance ≤ λ·p). k spans the meaningful
        // part of the CDF: well below, at, and well above the mean.
        let n = 100_000_000u64;
        let p = 1e-5;
        for k in [900u64, 968, 1000, 1032, 1100] {
            let array = ArrayYield::with_redundancy(n, k);
            let poisson = array.yield_probability(p);
            let binomial = binomial_cdf(n, p, k);
            assert!(
                (poisson - binomial).abs() < 2e-2,
                "k={k}: poisson {poisson} vs binomial {binomial}"
            );
        }
        // Small-λ regime: the approximation is many digits tight.
        let n = 1_000_000u64;
        let p = 1e-6; // λ = 1
        for k in [0u64, 1, 2, 5] {
            let array = ArrayYield::with_redundancy(n, k);
            let poisson = array.yield_probability(p);
            let binomial = binomial_cdf(n, p, k);
            assert!(
                (poisson - binomial).abs() < 1e-5,
                "k={k}: poisson {poisson} vs binomial {binomial}"
            );
        }
    }

    #[test]
    fn log_yield_survives_lambda_where_linear_terms_underflow() {
        // λ = 2000: every individual Poisson term for i ≤ 100 is below
        // exp(-745) and underflows to 0.0 in linear space — the old
        // accumulation returned exactly 0. The log-space CDF is still exact.
        let array = ArrayYield::with_redundancy(2_000_000, 100);
        let log_yield = array.log_yield_probability(1e-3);
        assert!(log_yield.is_finite());
        // ln P(X ≤ 100 | λ = 2000) is dominated by the i = 100 term:
        // -2000 + 100·ln(2000) - ln(100!) ≈ -1603.
        assert!(
            log_yield > -1610.0 && log_yield < -1595.0,
            "log yield {log_yield}"
        );
        // The linear-space probability genuinely underflows...
        assert_eq!(array.yield_probability(1e-3), 0.0);
        // ...but moderate cases agree with the straightforward sum.
        let moderate = ArrayYield::with_redundancy(1 << 20, 4);
        let p = 2e-6;
        let lambda = (1u64 << 20) as f64 * p;
        let direct: f64 = (0..=4u64)
            .map(|i| {
                (-lambda + i as f64 * lambda.ln() - crate::special::ln_gamma(i as f64 + 1.0)).exp()
            })
            .sum();
        assert!((moderate.yield_probability(p) - direct).abs() < 1e-14);
    }

    #[test]
    fn upper_tail_shortcut_agrees_with_full_sum() {
        // k far above λ: the shortcut fires and must agree (to f64 round-off)
        // with what the full summation would have produced, i.e. exactly 1.
        let array = ArrayYield::with_redundancy(1_000_000, 400);
        let p = 5e-6; // λ = 5, k = 400 → P(X > k) astronomically small
        assert_eq!(array.yield_probability(p), 1.0);
        assert_eq!(array.log_yield_probability(p), 0.0);
        // Just inside the shortcut boundary the full sum runs and lands on
        // the same answer within round-off.
        let near = ArrayYield::with_redundancy(1_000_000, 30);
        let y = near.yield_probability(5e-6);
        assert!((y - 1.0).abs() < 1e-12, "{y}");
        // Monotonicity across the boundary: more spares never hurts.
        let mut prev = 0.0;
        for k in 0..50 {
            let y = ArrayYield::with_redundancy(1_000_000, k).yield_probability(1e-5);
            assert!(y >= prev - 1e-15, "non-monotone at k={k}");
            prev = y;
        }
    }

    #[test]
    #[should_panic(expected = "target yield must be in (0, 1)")]
    fn invalid_target_yield_rejected() {
        let _ = ArrayYield::without_redundancy(100).required_cell_failure_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "per-cell failure probability must be in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = ArrayYield::without_redundancy(100).yield_probability(-0.1);
    }
}
