//! Array-level yield arithmetic: translating a per-cell failure probability
//! into memory-array yield, with and without redundant (spare) rows, and the
//! inverse problem of deriving the per-cell sigma target for a capacity/yield
//! requirement — the numbers a memory architect actually asks the extraction
//! flow for.

use crate::special::ln_gamma;
use serde::{Deserialize, Serialize};

/// Array-level yield model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayYield {
    /// Number of bitcells in the array.
    pub cells: u64,
    /// Number of defective cells that can be repaired (spare rows/columns,
    /// expressed in repairable cells).
    pub repairable_cells: u64,
}

impl ArrayYield {
    /// An array of `cells` bitcells without redundancy.
    pub fn without_redundancy(cells: u64) -> Self {
        ArrayYield {
            cells,
            repairable_cells: 0,
        }
    }

    /// An array of `cells` bitcells that can repair up to `repairable_cells`
    /// failing cells.
    pub fn with_redundancy(cells: u64, repairable_cells: u64) -> Self {
        ArrayYield {
            cells,
            repairable_cells,
        }
    }

    /// Probability that the array yields (all failures repairable) for a given
    /// per-cell failure probability.
    ///
    /// Uses the Poisson approximation of the binomial count of failing cells,
    /// `λ = N·p`, which is accurate to many digits in the regime of interest
    /// (`p ≤ 1e-4`, `N ≥ 1e3`).
    ///
    /// # Panics
    ///
    /// Panics if `per_cell_failure_probability` is not in `[0, 1]`.
    pub fn yield_probability(&self, per_cell_failure_probability: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&per_cell_failure_probability),
            "per-cell failure probability must be in [0, 1]"
        );
        if self.cells == 0 {
            return 1.0;
        }
        let lambda = self.cells as f64 * per_cell_failure_probability;
        if lambda == 0.0 {
            return 1.0;
        }
        // P(X ≤ k) for X ~ Poisson(λ), accumulated in log space for stability.
        let k = self.repairable_cells;
        let mut cumulative = 0.0;
        for i in 0..=k {
            let log_term = -lambda + i as f64 * lambda.ln() - ln_gamma(i as f64 + 1.0);
            cumulative += log_term.exp();
        }
        cumulative.min(1.0)
    }

    /// Expected number of failing cells in the array.
    pub fn expected_failures(&self, per_cell_failure_probability: f64) -> f64 {
        self.cells as f64 * per_cell_failure_probability
    }

    /// The largest per-cell failure probability that still achieves the target
    /// array yield, found by bisection.
    ///
    /// # Panics
    ///
    /// Panics if `target_yield` is not in `(0, 1)`.
    pub fn required_cell_failure_probability(&self, target_yield: f64) -> f64 {
        assert!(
            target_yield > 0.0 && target_yield < 1.0,
            "target yield must be in (0, 1)"
        );
        if self.cells == 0 {
            return 1.0;
        }
        let mut lo = 0.0_f64;
        let mut hi = 1.0_f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.yield_probability(mid) >= target_yield {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The per-cell sigma target corresponding to
    /// [`ArrayYield::required_cell_failure_probability`].
    ///
    /// # Panics
    ///
    /// Panics if `target_yield` is not in `(0, 1)`.
    pub fn required_cell_sigma(&self, target_yield: f64) -> f64 {
        let p = self.required_cell_failure_probability(target_yield);
        if p <= 0.0 {
            f64::INFINITY
        } else if p >= 1.0 {
            0.0
        } else {
            gis_stats::normal::sigma_level(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yield_without_redundancy_matches_closed_form() {
        let array = ArrayYield::without_redundancy(1_000_000);
        let p = 1e-7_f64;
        // Exact binomial yield (1-p)^N vs the Poisson approximation.
        let exact = (1.0 - p).powf(1e6);
        let approx = array.yield_probability(p);
        assert!((exact - approx).abs() < 1e-6, "{exact} vs {approx}");
        // Edge cases.
        assert_eq!(array.yield_probability(0.0), 1.0);
        assert_eq!(
            ArrayYield::without_redundancy(0).yield_probability(0.5),
            1.0
        );
        assert!((array.expected_failures(p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn redundancy_improves_yield() {
        let p = 2e-6;
        let plain = ArrayYield::without_redundancy(1 << 20);
        let repaired = ArrayYield::with_redundancy(1 << 20, 4);
        let y_plain = plain.yield_probability(p);
        let y_repaired = repaired.yield_probability(p);
        assert!(y_repaired > y_plain);
        assert!(
            y_repaired > 0.9,
            "4 spare cells should rescue the yield, got {y_repaired}"
        );
        // With enough spares the yield approaches 1.
        let generous = ArrayYield::with_redundancy(1 << 20, 64);
        assert!(generous.yield_probability(p) > 0.999999);
    }

    #[test]
    fn required_probability_inverts_yield() {
        let array = ArrayYield::with_redundancy(8 * 1024 * 1024, 8);
        let target = 0.99;
        let p_req = array.required_cell_failure_probability(target);
        assert!(p_req > 0.0 && p_req < 1e-4);
        let achieved = array.yield_probability(p_req);
        assert!((achieved - target).abs() < 0.01, "achieved {achieved}");
        // Tighter target → smaller allowed probability.
        let p_tighter = array.required_cell_failure_probability(0.999);
        assert!(p_tighter < p_req);
    }

    #[test]
    fn sigma_targets_grow_with_capacity() {
        // The classic statement "a 64 Mb array needs ~6 sigma cells".
        let small = ArrayYield::without_redundancy(64 * 1024);
        let large = ArrayYield::without_redundancy(64 * 1024 * 1024);
        let sigma_small = small.required_cell_sigma(0.99);
        let sigma_large = large.required_cell_sigma(0.99);
        assert!(sigma_large > sigma_small);
        assert!(sigma_small > 4.0 && sigma_small < 6.0, "{sigma_small}");
        assert!(sigma_large > 5.5 && sigma_large < 7.5, "{sigma_large}");
    }

    #[test]
    #[should_panic(expected = "target yield must be in (0, 1)")]
    fn invalid_target_yield_rejected() {
        let _ = ArrayYield::without_redundancy(100).required_cell_failure_probability(1.5);
    }

    #[test]
    #[should_panic(expected = "per-cell failure probability must be in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = ArrayYield::without_redundancy(100).yield_probability(-0.1);
    }
}
