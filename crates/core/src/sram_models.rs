//! Adapters exposing the SRAM testbenches and surrogate as [`PerformanceModel`]s.
//!
//! The statistical layer works in the whitened variation space; these adapters
//! own a [`VariationSpace`] (the Pelgrom-scaled ΔV_T parameters of the six cell
//! transistors) and translate each whitened sample into physical threshold
//! shifts before invoking either the transient testbench or the analytical
//! surrogate.

use crate::model::PerformanceModel;
use gis_linalg::Vector;
use gis_sram::{SramSurrogate, SramTestbench, TransientKernel};
use gis_variation::VariationSpace;
use serde::{Deserialize, Serialize};

/// Which dynamic characteristic of the cell a model evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SramMetric {
    /// Read access time (seconds); spec is an upper limit.
    ReadAccessTime,
    /// Write delay (seconds); spec is an upper limit.
    WriteDelay,
    /// Peak read-disturb voltage on the low storage node (volts); spec is an
    /// upper limit (typically half the supply).
    ReadDisturb,
}

impl SramMetric {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SramMetric::ReadAccessTime => "read-access-time",
            SramMetric::WriteDelay => "write-delay",
            SramMetric::ReadDisturb => "read-disturb",
        }
    }
}

/// [`PerformanceModel`] backed by the closed-form SRAM surrogate.
///
/// Optionally pads the variation space with extra parameters representing the
/// peripheral devices that share the read/write path (column mux, sense
/// amplifier input pair, write driver). Each padded parameter contributes a
/// small additive perturbation to the metric, which is the standard way the
/// dimensionality-scaling experiments of the high-sigma literature are set up.
#[derive(Debug, Clone)]
pub struct SramSurrogateModel {
    surrogate: SramSurrogate,
    space: VariationSpace,
    metric: SramMetric,
    padded_dimensions: usize,
    padding_coefficient: f64,
    name: String,
}

impl SramSurrogateModel {
    /// Creates a surrogate-backed model.
    ///
    /// # Panics
    ///
    /// Panics if the variation space does not have exactly six parameters.
    pub fn new(surrogate: SramSurrogate, space: VariationSpace, metric: SramMetric) -> Self {
        assert_eq!(
            space.dim(),
            6,
            "the 6T surrogate expects a 6-parameter variation space"
        );
        let name = format!("sram-surrogate-{}", metric.name());
        SramSurrogateModel {
            surrogate,
            space,
            metric,
            padded_dimensions: 0,
            padding_coefficient: 0.02,
            name,
        }
    }

    /// Adds `extra` padded variation parameters (peripheral devices). Each one
    /// shifts the metric by `coefficient × nominal-metric × z_i`, so the metric
    /// remains dominated by the six cell transistors while the search space
    /// grows — exactly the stress the dimensionality-scaling table applies.
    ///
    /// # Panics
    ///
    /// Panics if `coefficient` is negative or not finite.
    pub fn with_padded_dimensions(mut self, extra: usize, coefficient: f64) -> Self {
        assert!(
            coefficient >= 0.0 && coefficient.is_finite(),
            "padding coefficient must be non-negative and finite"
        );
        self.padded_dimensions = extra;
        self.padding_coefficient = coefficient;
        self
    }

    /// The metric this model evaluates.
    pub fn metric(&self) -> SramMetric {
        self.metric
    }

    /// Metric value of the nominal (unvaried) cell — the anchor from which
    /// specification limits are usually derived (e.g. "1.5× nominal").
    pub fn nominal_metric(&self) -> f64 {
        let nominal = [0.0; 6];
        match self.metric {
            SramMetric::ReadAccessTime => self.surrogate.read_access_time(&nominal),
            SramMetric::WriteDelay => self.surrogate.write_delay(&nominal),
            SramMetric::ReadDisturb => self.surrogate.read_disturb_voltage(&nominal),
        }
    }
}

impl PerformanceModel for SramSurrogateModel {
    fn dim(&self) -> usize {
        6 + self.padded_dimensions
    }

    fn evaluate(&self, z: &Vector) -> f64 {
        assert_eq!(z.len(), self.dim(), "dimension mismatch");
        let cell_z: Vector = (0..6).map(|i| z[i]).collect();
        let deltas = self.space.to_physical(&cell_z);
        let base = match self.metric {
            SramMetric::ReadAccessTime => self.surrogate.read_access_time(deltas.as_slice()),
            SramMetric::WriteDelay => self.surrogate.write_delay(deltas.as_slice()),
            SramMetric::ReadDisturb => self.surrogate.read_disturb_voltage(deltas.as_slice()),
        };
        if self.padded_dimensions == 0 {
            return base;
        }
        let nominal = self.nominal_metric();
        let padding: f64 = (6..self.dim()).map(|i| z[i]).sum();
        base + self.padding_coefficient * nominal * padding
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// [`PerformanceModel`] backed by the full transient testbench.
///
/// Every evaluation builds the 6T netlist with the sampled threshold shifts and
/// runs one backward-Euler transient — this is the "SPICE-accurate" model of
/// the evaluation. Simulation errors (non-convergence) are mapped to
/// `f64::INFINITY`, i.e. counted as failures, mirroring how a production flow
/// treats a sample whose simulation dies.
#[derive(Debug, Clone)]
pub struct SramTransientModel {
    testbench: SramTestbench,
    space: VariationSpace,
    metric: SramMetric,
    kernel: TransientKernel,
    name: String,
}

impl SramTransientModel {
    /// Creates a transient-simulation-backed model on the sparse kernel.
    ///
    /// # Panics
    ///
    /// Panics if the variation space does not have exactly six parameters.
    pub fn new(testbench: SramTestbench, space: VariationSpace, metric: SramMetric) -> Self {
        assert_eq!(
            space.dim(),
            6,
            "the 6T testbench expects a 6-parameter variation space"
        );
        let name = format!("sram-transient-{}", metric.name());
        SramTransientModel {
            testbench,
            space,
            metric,
            kernel: TransientKernel::Sparse,
            name,
        }
    }

    /// Selects the solver kernel (default [`TransientKernel::Sparse`]). The
    /// dense reference and lockstep kernels produce bit-identical metrics
    /// (see [`TransientKernel::bit_identical`]); the benchmark harness uses
    /// them to assert end-to-end kernel equivalence. [`TransientKernel::Fast`]
    /// trades bit-identity for vectorizable transcendentals and is gated by
    /// the calibration suite.
    pub fn with_kernel(mut self, kernel: TransientKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel this model simulates on.
    pub fn kernel(&self) -> TransientKernel {
        self.kernel
    }

    /// The metric this model evaluates.
    pub fn metric(&self) -> SramMetric {
        self.metric
    }

    /// Metric value of the nominal (unvaried) cell.
    ///
    /// # Panics
    ///
    /// Panics if the nominal simulation itself fails, which indicates a broken
    /// testbench configuration rather than a statistical event.
    pub fn nominal_metric(&self) -> f64 {
        self.evaluate_deltas(&[0.0; 6])
    }

    fn evaluate_deltas(&self, deltas: &[f64]) -> f64 {
        match self.metric {
            SramMetric::ReadAccessTime => self
                .testbench
                .read_session()
                .map(|s| s.with_kernel(self.kernel))
                .and_then(|mut s| s.run(deltas))
                .map(|r| r.access_time)
                .unwrap_or(f64::INFINITY),
            SramMetric::WriteDelay => self
                .testbench
                .write_session()
                .map(|s| s.with_kernel(self.kernel))
                .and_then(|mut s| s.run(deltas))
                .map(|w| w.write_delay)
                .unwrap_or(f64::INFINITY),
            SramMetric::ReadDisturb => self
                .testbench
                .read_session()
                .map(|s| s.with_kernel(self.kernel))
                .and_then(|mut s| s.run(deltas))
                .map(|r| r.disturb_peak)
                .unwrap_or(f64::INFINITY),
        }
    }
}

impl PerformanceModel for SramTransientModel {
    fn dim(&self) -> usize {
        6
    }

    fn evaluate(&self, z: &Vector) -> f64 {
        assert_eq!(z.len(), 6, "dimension mismatch");
        let deltas = self.space.to_physical(z);
        self.evaluate_deltas(deltas.as_slice())
    }

    /// Batched transient evaluation: one [`gis_sram::ReadSession`] /
    /// [`gis_sram::WriteSession`] is built per batch, hoisting the netlist
    /// construction and solver setup out of the per-point loop; each point then
    /// only injects its six threshold shifts and solves the transient. On the
    /// lockstep kernels the session additionally advances up to
    /// [`gis_sram::LANE_GROUP`] points per solver call through one shared
    /// elimination program. The executor calls this once per work chunk, so
    /// batches evaluate concurrently on worker threads while each
    /// [`TransientKernel::Lockstep`] (and scalar-kernel) metric stays
    /// bit-identical to the scalar path; failed points — rejected shifts or
    /// non-converging lanes — evaluate to `f64::INFINITY` individually.
    fn evaluate_batch(&self, points: &[Vector]) -> Vec<f64> {
        let deltas: Vec<Vector> = points
            .iter()
            .map(|z| {
                assert_eq!(z.len(), 6, "dimension mismatch");
                self.space.to_physical(z)
            })
            .collect();
        let delta_refs: Vec<&[f64]> = deltas.iter().map(Vector::as_slice).collect();
        match self.metric {
            SramMetric::ReadAccessTime | SramMetric::ReadDisturb => {
                match self.testbench.read_session() {
                    Ok(session) => session
                        .with_kernel(self.kernel)
                        .run_batch(&delta_refs)
                        .into_iter()
                        .map(|result| {
                            result
                                .map(|r| match self.metric {
                                    SramMetric::ReadAccessTime => r.access_time,
                                    _ => r.disturb_peak,
                                })
                                .unwrap_or(f64::INFINITY)
                        })
                        .collect(),
                    Err(_) => vec![f64::INFINITY; points.len()],
                }
            }
            SramMetric::WriteDelay => match self.testbench.write_session() {
                Ok(session) => session
                    .with_kernel(self.kernel)
                    .run_batch(&delta_refs)
                    .into_iter()
                    .map(|result| result.map(|w| w.write_delay).unwrap_or(f64::INFINITY))
                    .collect(),
                Err(_) => vec![f64::INFINITY; points.len()],
            },
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the canonical 6-parameter variation space for a given cell
/// configuration using the supplied Pelgrom coefficient.
pub fn default_sram_variation_space(
    cell: &gis_sram::SramCellConfig,
    pelgrom: &gis_variation::PelgromModel,
) -> VariationSpace {
    gis_variation::sram_6t_variation_space(pelgrom, &cell.widths_lengths())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_sram::SramCellConfig;
    use gis_variation::PelgromModel;

    fn space() -> VariationSpace {
        default_sram_variation_space(
            &SramCellConfig::typical_45nm(),
            &PelgromModel::typical_45nm(),
        )
    }

    #[test]
    fn surrogate_model_basics() {
        let model = SramSurrogateModel::new(
            SramSurrogate::typical_45nm(),
            space(),
            SramMetric::ReadAccessTime,
        );
        assert_eq!(model.dim(), 6);
        assert_eq!(model.metric(), SramMetric::ReadAccessTime);
        assert!(model.name().contains("read-access-time"));
        let nominal = model.evaluate(&Vector::zeros(6));
        assert!((nominal - model.nominal_metric()).abs() < 1e-18);
        // Weakening the pass gate (z0 > 0 → ΔVth > 0) slows the read.
        let mut z = Vector::zeros(6);
        z[0] = 3.0;
        assert!(model.evaluate(&z) > nominal);
    }

    #[test]
    fn surrogate_metric_variants() {
        let write = SramSurrogateModel::new(
            SramSurrogate::typical_45nm(),
            space(),
            SramMetric::WriteDelay,
        );
        let disturb = SramSurrogateModel::new(
            SramSurrogate::typical_45nm(),
            space(),
            SramMetric::ReadDisturb,
        );
        assert!(write.nominal_metric() > 0.0);
        assert!(disturb.nominal_metric() > 0.0 && disturb.nominal_metric() < 1.0);
        assert_eq!(SramMetric::WriteDelay.name(), "write-delay");
        assert_eq!(SramMetric::ReadDisturb.name(), "read-disturb");
    }

    #[test]
    fn padded_dimensions_extend_the_space() {
        let model = SramSurrogateModel::new(
            SramSurrogate::typical_45nm(),
            space(),
            SramMetric::ReadAccessTime,
        )
        .with_padded_dimensions(6, 0.02);
        assert_eq!(model.dim(), 12);
        let nominal = model.evaluate(&Vector::zeros(12));
        // Padding parameters perturb the metric but only mildly.
        let mut z = Vector::zeros(12);
        z[8] = 3.0;
        let perturbed = model.evaluate(&z);
        assert!(perturbed > nominal);
        assert!((perturbed - nominal) / nominal < 0.2);
    }

    #[test]
    fn transient_model_matches_testbench() {
        let tb = SramTestbench::typical_45nm();
        let model = SramTransientModel::new(tb.clone(), space(), SramMetric::ReadAccessTime);
        assert_eq!(model.dim(), 6);
        let nominal_direct = tb.read(&[0.0; 6]).unwrap().access_time;
        let nominal_model = model.evaluate(&Vector::zeros(6));
        assert!((nominal_direct - nominal_model).abs() / nominal_direct < 1e-12);
        assert!(model.name().contains("transient"));
        assert!((model.nominal_metric() - nominal_direct).abs() / nominal_direct < 1e-12);
    }

    #[test]
    fn transient_batch_evaluation_matches_scalar_path() {
        let tb = SramTestbench::typical_45nm();
        for metric in [
            SramMetric::ReadAccessTime,
            SramMetric::WriteDelay,
            SramMetric::ReadDisturb,
        ] {
            let model = SramTransientModel::new(tb.clone(), space(), metric);
            let points = vec![
                Vector::zeros(6),
                Vector::from_slice(&[2.0, -1.0, 0.5, 0.0, 1.5, -0.5]),
            ];
            let batch = model.evaluate_batch(&points);
            for (z, batched) in points.iter().zip(batch) {
                assert_eq!(
                    batched.to_bits(),
                    model.evaluate(z).to_bits(),
                    "{metric:?} batch diverged from scalar evaluation"
                );
            }
        }
    }

    #[test]
    fn dense_kernel_model_is_bit_identical() {
        let tb = SramTestbench::typical_45nm();
        for metric in [SramMetric::ReadAccessTime, SramMetric::WriteDelay] {
            let sparse = SramTransientModel::new(tb.clone(), space(), metric);
            let dense = SramTransientModel::new(tb.clone(), space(), metric)
                .with_kernel(TransientKernel::Dense);
            assert_eq!(sparse.kernel(), TransientKernel::Sparse);
            assert_eq!(dense.kernel(), TransientKernel::Dense);
            let points = vec![
                Vector::zeros(6),
                Vector::from_slice(&[2.0, -1.0, 0.5, 0.0, 1.5, -0.5]),
            ];
            let s = sparse.evaluate_batch(&points);
            let d = dense.evaluate_batch(&points);
            for (a, b) in s.iter().zip(&d) {
                assert_eq!(a.to_bits(), b.to_bits(), "{metric:?} kernels diverged");
            }
        }
    }

    #[test]
    fn lockstep_kernel_model_is_bit_identical() {
        let tb = SramTestbench::typical_45nm();
        for metric in [
            SramMetric::ReadAccessTime,
            SramMetric::WriteDelay,
            SramMetric::ReadDisturb,
        ] {
            let sparse = SramTransientModel::new(tb.clone(), space(), metric);
            let lockstep = SramTransientModel::new(tb.clone(), space(), metric)
                .with_kernel(TransientKernel::Lockstep);
            assert!(lockstep.kernel().bit_identical());
            // Five points: one full lane group of four plus a ragged tail.
            let points = vec![
                Vector::zeros(6),
                Vector::from_slice(&[2.0, -1.0, 0.5, 0.0, 1.5, -0.5]),
                Vector::from_slice(&[-1.0, 0.5, 1.0, -0.5, 0.0, 2.0]),
                Vector::from_slice(&[0.5, 0.5, -0.5, 1.0, -1.0, 0.0]),
                Vector::from_slice(&[3.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            ];
            let s = sparse.evaluate_batch(&points);
            let l = lockstep.evaluate_batch(&points);
            for (z, (a, b)) in points.iter().zip(s.iter().zip(&l)) {
                assert_eq!(a.to_bits(), b.to_bits(), "{metric:?} kernels diverged");
                // The batched lockstep path also matches its own scalar entry.
                assert_eq!(b.to_bits(), lockstep.evaluate(z).to_bits());
            }
        }
    }

    #[test]
    fn fast_kernel_model_tracks_the_exact_metrics() {
        let tb = SramTestbench::typical_45nm();
        let exact = SramTransientModel::new(tb.clone(), space(), SramMetric::ReadAccessTime);
        let fast = SramTransientModel::new(tb, space(), SramMetric::ReadAccessTime)
            .with_kernel(TransientKernel::Fast);
        assert!(!fast.kernel().bit_identical());
        let points = vec![
            Vector::zeros(6),
            Vector::from_slice(&[2.0, -1.0, 0.5, 0.0, 1.5, -0.5]),
        ];
        for (a, b) in exact
            .evaluate_batch(&points)
            .iter()
            .zip(fast.evaluate_batch(&points))
        {
            let rel = (a - b).abs() / a;
            assert!(rel < 1e-3, "fast kernel deviates by {rel:e}");
        }
    }

    #[test]
    fn transient_write_and_disturb_metrics() {
        let tb = SramTestbench::typical_45nm();
        let write = SramTransientModel::new(tb.clone(), space(), SramMetric::WriteDelay);
        let disturb = SramTransientModel::new(tb, space(), SramMetric::ReadDisturb);
        let w = write.evaluate(&Vector::zeros(6));
        let d = disturb.evaluate(&Vector::zeros(6));
        assert!(w > 0.0 && w < 2e-9);
        assert!((0.0..0.5).contains(&d));
    }

    #[test]
    #[should_panic(expected = "6-parameter variation space")]
    fn wrong_space_dimension_rejected() {
        let bad_space =
            VariationSpace::independent([gis_variation::VariationParameter::new("only-one", 0.03)]);
        let _ = SramSurrogateModel::new(
            SramSurrogate::typical_45nm(),
            bad_space,
            SramMetric::ReadAccessTime,
        );
    }
}
