//! Performance-model abstraction: the function from whitened variation space to
//! a scalar dynamic characteristic, plus the specification that defines failure.
//!
//! Every estimator in this crate sees the circuit only through the
//! [`PerformanceModel`] trait: a deterministic map `z ↦ metric(z)` where `z`
//! lives in the whitened variation space (independent standard normals). The
//! [`Spec`] turns the metric into a pass/fail indicator, and
//! [`FailureProblem`] bundles the two together with an evaluation counter so
//! every method reports exactly how many simulator calls it spent — the central
//! cost metric of the evaluation tables.

use crate::exec::Executor;
use crate::special::ln_gamma;
use gis_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A deterministic performance metric defined over the whitened variation space.
///
/// Implementations must be deterministic (same `z` → same value) and should
/// return a *censored but finite* value (e.g. the simulation window length)
/// rather than `NaN` when the underlying simulation cannot produce the metric;
/// `f64::INFINITY` is acceptable and is always treated as a failure.
pub trait PerformanceModel: Send + Sync {
    /// Dimensionality of the whitened variation space.
    fn dim(&self) -> usize;

    /// Evaluates the metric at the whitened point `z`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `z.len() != self.dim()`.
    fn evaluate(&self, z: &Vector) -> f64;

    /// Evaluates the metric at every point of a batch, returning one value per
    /// point in input order.
    ///
    /// The default implementation is the scalar loop, so overriding is never
    /// required for correctness. Models with expensive per-point setup (e.g.
    /// the transient SRAM testbench, which otherwise rebuilds its netlist and
    /// solver structure on every call) override this to hoist that setup out
    /// of the loop. Implementations must return exactly `points.len()` values
    /// and must be *batch-transparent*: `evaluate_batch(points)[i]` must be
    /// bit-identical to `evaluate(&points[i])` — the determinism contract of
    /// [`crate::exec`] depends on it.
    fn evaluate_batch(&self, points: &[Vector]) -> Vec<f64> {
        points.iter().map(|z| self.evaluate(z)).collect()
    }

    /// Human-readable name used in reports.
    fn name(&self) -> &str {
        "performance-model"
    }
}

/// Adapter turning a closure into a [`PerformanceModel`].
///
/// ```
/// use gis_core::{FnModel, PerformanceModel};
/// use gis_linalg::Vector;
///
/// let model = FnModel::new("sum", 3, |z: &Vector| z.sum());
/// assert_eq!(model.dim(), 3);
/// assert_eq!(model.evaluate(&Vector::from_slice(&[1.0, 2.0, 3.0])), 6.0);
/// ```
pub struct FnModel<F> {
    name: String,
    dim: usize,
    function: F,
}

impl<F: Fn(&Vector) -> f64 + Send + Sync> FnModel<F> {
    /// Wraps a closure as a performance model.
    pub fn new(name: impl Into<String>, dim: usize, function: F) -> Self {
        FnModel {
            name: name.into(),
            dim,
            function,
        }
    }
}

impl<F: Fn(&Vector) -> f64 + Send + Sync> PerformanceModel for FnModel<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&self, z: &Vector) -> f64 {
        (self.function)(z)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<F> std::fmt::Debug for FnModel<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnModel")
            .field("name", &self.name)
            .field("dim", &self.dim)
            .finish()
    }
}

/// Specification limit defining when a metric value constitutes a failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Spec {
    /// Failure when the metric exceeds the limit (e.g. read access time).
    UpperLimit(f64),
    /// Failure when the metric falls below the limit (e.g. noise margin).
    LowerLimit(f64),
}

impl Spec {
    /// The numeric limit value.
    pub fn limit(&self) -> f64 {
        match self {
            Spec::UpperLimit(v) | Spec::LowerLimit(v) => *v,
        }
    }

    /// Returns `true` if `metric` violates the specification.
    ///
    /// Non-finite metric values (`NaN`, `±inf` in the failing direction) are
    /// conservatively treated as failures.
    pub fn is_failure(&self, metric: f64) -> bool {
        if metric.is_nan() {
            return true;
        }
        match self {
            Spec::UpperLimit(limit) => metric > *limit,
            Spec::LowerLimit(limit) => metric < *limit,
        }
    }

    /// Signed failure margin: positive inside the failure region, negative in
    /// the passing region, zero exactly on the specification boundary.
    ///
    /// `NaN` metrics map to `+inf` (worst case).
    pub fn failure_margin(&self, metric: f64) -> f64 {
        if metric.is_nan() {
            return f64::INFINITY;
        }
        match self {
            Spec::UpperLimit(limit) => metric - limit,
            Spec::LowerLimit(limit) => limit - metric,
        }
    }
}

/// A failure-probability problem: a performance model together with its
/// specification, instrumented with an evaluation counter.
///
/// The counter is shared (`Arc`) so cloned handles — e.g. one per method in a
/// comparison table — can either share or reset their accounting as needed.
pub struct FailureProblem {
    model: Arc<dyn PerformanceModel>,
    spec: Spec,
    evaluations: Arc<AtomicU64>,
}

impl FailureProblem {
    /// Creates a problem from a model and a specification.
    pub fn new(model: Arc<dyn PerformanceModel>, spec: Spec) -> Self {
        FailureProblem {
            model,
            spec,
            evaluations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Convenience constructor taking ownership of a concrete model.
    pub fn from_model<M: PerformanceModel + 'static>(model: M, spec: Spec) -> Self {
        FailureProblem::new(Arc::new(model), spec)
    }

    /// Dimensionality of the variation space.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }

    /// The specification.
    pub fn spec(&self) -> Spec {
        self.spec
    }

    /// Name of the underlying model.
    pub fn model_name(&self) -> &str {
        self.model.name()
    }

    /// Evaluates the raw metric at `z`, incrementing the evaluation counter.
    pub fn metric(&self, z: &Vector) -> f64 {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.model.evaluate(z)
    }

    /// Evaluates the signed failure margin at `z` (counts one evaluation).
    pub fn failure_margin(&self, z: &Vector) -> f64 {
        self.spec.failure_margin(self.metric(z))
    }

    /// Returns `true` if the sample at `z` fails the specification (counts one
    /// evaluation).
    pub fn is_failure(&self, z: &Vector) -> bool {
        self.spec.is_failure(self.metric(z))
    }

    /// Evaluates the raw metric at every point of a batch, charging the
    /// evaluation counter once per point. Results are in input order and
    /// bit-identical to calling [`FailureProblem::metric`] point by point.
    pub fn metrics_batch(&self, points: &[Vector]) -> Vec<f64> {
        self.evaluations
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        self.model.evaluate_batch(points)
    }

    /// Like [`FailureProblem::metrics_batch`], with the chunks of the batch
    /// evaluated on the worker threads of `exec`. The thread count changes
    /// wall-clock only: results (and the evaluation count) are identical to
    /// the serial path.
    pub fn metrics_batch_on(&self, exec: &Executor, points: &[Vector]) -> Vec<f64> {
        self.evaluations
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        exec.map_chunks(points, |chunk| self.model.evaluate_batch(chunk))
    }

    /// Signed failure margins for a batch of points (counts one evaluation per
    /// point).
    pub fn failure_margins_batch(&self, points: &[Vector]) -> Vec<f64> {
        self.metrics_batch(points)
            .into_iter()
            .map(|m| self.spec.failure_margin(m))
            .collect()
    }

    /// Signed failure margins for a batch, evaluated on `exec`.
    pub fn failure_margins_batch_on(&self, exec: &Executor, points: &[Vector]) -> Vec<f64> {
        self.metrics_batch_on(exec, points)
            .into_iter()
            .map(|m| self.spec.failure_margin(m))
            .collect()
    }

    /// Pass/fail indicators for a batch of points (counts one evaluation per
    /// point).
    pub fn is_failure_batch(&self, points: &[Vector]) -> Vec<bool> {
        self.metrics_batch(points)
            .into_iter()
            .map(|m| self.spec.is_failure(m))
            .collect()
    }

    /// Pass/fail indicators for a batch, evaluated on `exec`.
    pub fn is_failure_batch_on(&self, exec: &Executor, points: &[Vector]) -> Vec<bool> {
        self.metrics_batch_on(exec, points)
            .into_iter()
            .map(|m| self.spec.is_failure(m))
            .collect()
    }

    /// Number of metric evaluations performed so far through this problem
    /// (shared across clones).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Resets the evaluation counter to zero.
    pub fn reset_evaluations(&self) {
        self.evaluations.store(0, Ordering::Relaxed);
    }

    /// Creates a handle to the same model and spec with an *independent*
    /// evaluation counter — used when several methods must be charged
    /// separately against the same problem.
    pub fn fork(&self) -> FailureProblem {
        FailureProblem {
            model: Arc::clone(&self.model),
            spec: self.spec,
            evaluations: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Clone for FailureProblem {
    fn clone(&self) -> Self {
        FailureProblem {
            model: Arc::clone(&self.model),
            spec: self.spec,
            evaluations: Arc::clone(&self.evaluations),
        }
    }
}

impl std::fmt::Debug for FailureProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureProblem")
            .field("model", &self.model.name())
            .field("spec", &self.spec)
            .field("dim", &self.dim())
            .field("evaluations", &self.evaluations())
            .finish()
    }
}

/// Analytic benchmark: linear limit state `g(z) = aᵀz − β‖a‖` with exactly
/// known failure probability `P_fail = Φ(−β) = Q(β)`.
///
/// This is the canonical validation problem of the reliability/IS literature:
/// every estimator in this crate is tested against it because the answer is
/// known in closed form at any sigma level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearLimitState {
    direction: Vector,
    beta: f64,
}

impl LinearLimitState {
    /// Creates the limit state with failure plane at distance `beta` along
    /// `direction` (which is normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if `direction` has zero norm or `beta` is not finite.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(direction: Vector, beta: f64) -> Self {
        assert!(beta.is_finite(), "beta must be finite");
        let direction = direction
            .normalized()
            .expect("limit-state direction must be non-zero");
        LinearLimitState { direction, beta }
    }

    /// Axis-aligned variant: failure plane perpendicular to the first axis.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn along_first_axis(dim: usize, beta: f64) -> Self {
        LinearLimitState::new(Vector::basis(dim, 0).expect("dim must be at least 1"), beta)
    }

    /// The exact failure probability of this limit state under the standard
    /// normal density.
    pub fn exact_failure_probability(&self) -> f64 {
        gis_stats::normal::upper_tail_probability(self.beta)
    }

    /// Reliability index β (distance of the failure plane from the origin).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The most-probable failure point `β·a`.
    pub fn exact_mpfp(&self) -> Vector {
        self.direction.scaled(self.beta)
    }

    /// The spec to pair this model with so that "metric > 0" means failure.
    pub fn spec() -> Spec {
        Spec::UpperLimit(0.0)
    }
}

impl PerformanceModel for LinearLimitState {
    fn dim(&self) -> usize {
        self.direction.len()
    }

    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn evaluate(&self, z: &Vector) -> f64 {
        self.direction.dot(z).expect("dimension mismatch") - self.beta
    }

    fn name(&self) -> &str {
        "linear-limit-state"
    }
}

/// Analytic benchmark with a curved (quadratic) limit state:
/// `g(z) = z₀ − β + κ·Σ_{i>0} z_i²`. For `κ > 0` the failure region bulges
/// towards the origin, stressing methods that assume a flat boundary.
///
/// The exact failure probability is not available in closed form but a
/// high-accuracy reference can be computed cheaply by one-dimensional
/// quadrature ([`QuadraticLimitState::reference_failure_probability`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadraticLimitState {
    dim: usize,
    beta: f64,
    curvature: f64,
}

impl QuadraticLimitState {
    /// Creates the limit state.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the parameters are not finite.
    pub fn new(dim: usize, beta: f64, curvature: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(
            beta.is_finite() && curvature.is_finite(),
            "parameters must be finite"
        );
        QuadraticLimitState {
            dim,
            beta,
            curvature,
        }
    }

    /// Reliability index of the underlying linear part.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Curvature κ.
    pub fn curvature(&self) -> f64 {
        self.curvature
    }

    /// The spec to pair this model with.
    pub fn spec() -> Spec {
        Spec::UpperLimit(0.0)
    }

    /// Reference failure probability computed by integrating
    /// `P(z₀ > β − κ·s)` against the χ²_{d−1} density of `s = Σ_{i>0} z_i²`
    /// with adaptive trapezoidal quadrature. Accurate to well below 1% for the
    /// parameter ranges used in the tests.
    pub fn reference_failure_probability(&self) -> f64 {
        use gis_stats::normal::upper_tail_probability;
        // gis-analyze: allow(float-eq, exact-zero curvature selects the closed-form linear limit)
        if self.dim == 1 || self.curvature == 0.0 {
            return upper_tail_probability(self.beta);
        }
        let k = (self.dim - 1) as f64;
        // Integrate over s ∈ [0, s_max] where the chi-square density is
        // negligible beyond s_max.
        let s_max = k + 12.0 * (2.0 * k).sqrt() + 40.0;
        let steps = 20_000;
        let h = s_max / steps as f64;
        let chi_log_norm = -0.5 * k * std::f64::consts::LN_2 - ln_gamma(0.5 * k);
        let chi_pdf = |s: f64| {
            if s <= 0.0 {
                0.0
            } else {
                (chi_log_norm + (0.5 * k - 1.0) * s.ln() - 0.5 * s).exp()
            }
        };
        let mut integral = 0.0;
        for i in 0..steps {
            let s0 = i as f64 * h;
            let s1 = s0 + h;
            let f0 = chi_pdf(s0) * upper_tail_probability(self.beta - self.curvature * s0);
            let f1 = chi_pdf(s1) * upper_tail_probability(self.beta - self.curvature * s1);
            integral += 0.5 * (f0 + f1) * h;
        }
        integral
    }
}

impl PerformanceModel for QuadraticLimitState {
    fn dim(&self) -> usize {
        self.dim
    }

    fn evaluate(&self, z: &Vector) -> f64 {
        assert_eq!(z.len(), self.dim, "dimension mismatch");
        let tail: f64 = (1..self.dim).map(|i| z[i] * z[i]).sum();
        z[0] - self.beta + self.curvature * tail
    }

    fn name(&self) -> &str {
        "quadratic-limit-state"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_failure_and_margin() {
        let upper = Spec::UpperLimit(2.0);
        assert!(upper.is_failure(2.5));
        assert!(!upper.is_failure(1.5));
        assert!(upper.is_failure(f64::NAN));
        assert_eq!(upper.failure_margin(3.0), 1.0);
        assert_eq!(upper.failure_margin(1.0), -1.0);
        assert_eq!(upper.limit(), 2.0);

        let lower = Spec::LowerLimit(0.5);
        assert!(lower.is_failure(0.1));
        assert!(!lower.is_failure(0.9));
        assert_eq!(lower.failure_margin(0.2), 0.3);
        assert!(lower.failure_margin(f64::NAN).is_infinite());
    }

    #[test]
    fn fn_model_adapts_closures() {
        let m = FnModel::new("norm", 2, |z: &Vector| z.norm());
        assert_eq!(m.dim(), 2);
        assert_eq!(m.name(), "norm");
        assert_eq!(m.evaluate(&Vector::from_slice(&[3.0, 4.0])), 5.0);
        assert!(format!("{m:?}").contains("norm"));
    }

    #[test]
    fn failure_problem_counts_evaluations() {
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(2, 3.0),
            LinearLimitState::spec(),
        );
        assert_eq!(problem.evaluations(), 0);
        let z = Vector::from_slice(&[4.0, 0.0]);
        assert!(problem.is_failure(&z));
        assert!(problem.failure_margin(&z) > 0.0);
        let _ = problem.metric(&Vector::zeros(2));
        assert_eq!(problem.evaluations(), 3);

        // Clones share the counter, forks do not.
        let clone = problem.clone();
        let _ = clone.metric(&Vector::zeros(2));
        assert_eq!(problem.evaluations(), 4);
        let fork = problem.fork();
        let _ = fork.metric(&Vector::zeros(2));
        assert_eq!(fork.evaluations(), 1);
        assert_eq!(problem.evaluations(), 4);

        problem.reset_evaluations();
        assert_eq!(problem.evaluations(), 0);
        assert_eq!(problem.dim(), 2);
        assert_eq!(problem.model_name(), "linear-limit-state");
        assert!(format!("{problem:?}").contains("linear-limit-state"));
    }

    #[test]
    fn batch_paths_match_scalar_paths_and_charge_per_point() {
        let problem = FailureProblem::from_model(
            QuadraticLimitState::new(3, 2.0, 0.1),
            QuadraticLimitState::spec(),
        );
        let points: Vec<Vector> = [
            [0.0, 0.0, 0.0],
            [2.5, 0.3, -0.4],
            [1.0, -1.0, 2.0],
            [3.0, 0.0, 0.0],
        ]
        .iter()
        .map(|p| Vector::from_slice(p))
        .collect();

        let scalar_fork = problem.fork();
        let scalar_metrics: Vec<f64> = points.iter().map(|z| scalar_fork.metric(z)).collect();
        assert_eq!(scalar_fork.evaluations(), points.len() as u64);

        let batch_fork = problem.fork();
        let batch_metrics = batch_fork.metrics_batch(&points);
        assert_eq!(batch_fork.evaluations(), points.len() as u64);
        for (a, b) in scalar_metrics.iter().zip(&batch_metrics) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        for exec in [Executor::serial(), Executor::new(4).with_chunk_size(2)] {
            let fork = problem.fork();
            let margins = fork.failure_margins_batch_on(&exec, &points);
            let fails = fork.is_failure_batch_on(&exec, &points);
            assert_eq!(fork.evaluations(), 2 * points.len() as u64);
            for (i, z) in points.iter().enumerate() {
                assert_eq!(
                    margins[i].to_bits(),
                    problem.spec().failure_margin(scalar_metrics[i]).to_bits()
                );
                assert_eq!(fails[i], problem.fork().is_failure(z));
            }
        }
        assert_eq!(
            problem.fork().failure_margins_batch(&points),
            problem
                .fork()
                .failure_margins_batch_on(&Executor::new(8), &points)
        );
        assert_eq!(
            problem.fork().is_failure_batch(&points),
            problem
                .fork()
                .is_failure_batch_on(&Executor::new(3), &points)
        );
    }

    #[test]
    fn default_evaluate_batch_is_the_scalar_loop() {
        let model = FnModel::new("sum", 2, |z: &Vector| z.sum());
        let points = vec![
            Vector::from_slice(&[1.0, 2.0]),
            Vector::from_slice(&[-3.0, 0.5]),
        ];
        assert_eq!(
            model.evaluate_batch(&points),
            points.iter().map(|z| model.evaluate(z)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn linear_limit_state_properties() {
        let ls = LinearLimitState::new(Vector::from_slice(&[3.0, 4.0]), 4.0);
        // Direction is normalized.
        assert!((ls.exact_mpfp().norm() - 4.0).abs() < 1e-12);
        assert_eq!(ls.beta(), 4.0);
        // At the MPFP the limit state is exactly zero.
        assert!(ls.evaluate(&ls.exact_mpfp()).abs() < 1e-12);
        // At the origin it is −β.
        assert!((ls.evaluate(&Vector::zeros(2)) + 4.0).abs() < 1e-12);
        // Exact probability matches the normal tail.
        let p = ls.exact_failure_probability();
        assert!((p - gis_stats::normal::upper_tail_probability(4.0)).abs() < 1e-18);
        assert_eq!(LinearLimitState::spec(), Spec::UpperLimit(0.0));
    }

    #[test]
    fn quadratic_limit_state_reference_probability() {
        // Zero curvature reduces to the linear case.
        let q = QuadraticLimitState::new(4, 3.0, 0.0);
        let expected = gis_stats::normal::upper_tail_probability(3.0);
        assert!((q.reference_failure_probability() - expected).abs() / expected < 1e-6);

        // Positive curvature enlarges the failure region.
        let q_curved = QuadraticLimitState::new(4, 3.0, 0.05);
        assert!(q_curved.reference_failure_probability() > expected);
        assert_eq!(q_curved.beta(), 3.0);
        assert_eq!(q_curved.curvature(), 0.05);

        // Evaluation agrees with the definition.
        let z = Vector::from_slice(&[1.0, 2.0, 0.0, 0.0]);
        assert!((q_curved.evaluate(&z) - (1.0 - 3.0 + 0.05 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn quadratic_monte_carlo_cross_check() {
        // Cheap sanity check of the quadrature reference at a low sigma level
        // where plain Monte Carlo converges quickly.
        use gis_stats::RngStream;
        let q = QuadraticLimitState::new(3, 1.5, 0.1);
        let reference = q.reference_failure_probability();
        let mut rng = RngStream::from_seed(77);
        let n = 200_000;
        let mut failures = 0u64;
        for _ in 0..n {
            let z = rng.standard_normal_vector(3);
            if QuadraticLimitState::spec().is_failure(q.evaluate(&z)) {
                failures += 1;
            }
        }
        let p_mc = failures as f64 / n as f64;
        let rel = (p_mc - reference).abs() / reference;
        assert!(rel < 0.05, "quadrature {reference:e} vs MC {p_mc:e}");
    }
}
