//! Analytic benchmark problems with closed-form ground truth.
//!
//! The paper's claims are statistical — each estimator reports a failure
//! probability *and* an error bar — so validating them needs problems where
//! the true answer is known exactly. This module is the generator library of
//! such problems: every [`BenchmarkProblem`] bundles a [`FailureProblem`]
//! with its exact failure probability, spanning the failure-region geometries
//! a production extraction flow encounters:
//!
//! | Generator | Geometry | Ground truth |
//! |---|---|---|
//! | [`BenchmarkProblem::linear`] | tilted hyperplane at β | `Q(β)` exactly |
//! | [`BenchmarkProblem::correlated`] | linear spec on Cholesky-colored (equicorrelated) variation | `Q(β)` exactly |
//! | [`BenchmarkProblem::bimodal`] | two *disjoint* opposite half-spaces | `2·Q(β)` exactly |
//! | [`BenchmarkProblem::union`] | union of two orthogonal half-spaces | `p₁ + p₂ − p₁p₂` exactly |
//! | [`BenchmarkProblem::quadratic`] | curved (non-convex for κ>0) boundary | 1-D quadrature, sub-1% |
//! | [`BenchmarkProblem::dimensionality_ladder`] | hyperplane at fixed β, d ∈ {6, 24, 96, 576} | `Q(β)` exactly |
//!
//! [`BenchmarkProblem::standard_suite`] is the full matrix;
//! [`BenchmarkProblem::fast_suite`] is the reduced matrix the CI calibration
//! gate asserts coverage on (see [`crate::calibration`]).
//!
//! ```
//! use gis_core::problems::BenchmarkProblem;
//!
//! let bench = BenchmarkProblem::linear(6, 4.0);
//! assert!(bench.exact_probability() > 3.1e-5 && bench.exact_probability() < 3.2e-5);
//! assert_eq!(bench.dim(), 6);
//! // `fork()` hands an estimator the problem with a fresh evaluation counter.
//! let problem = bench.fork();
//! assert_eq!(problem.dim(), 6);
//! ```

use crate::model::{FailureProblem, FnModel, QuadraticLimitState, Spec};
use gis_linalg::{Cholesky, Matrix, Vector};
use gis_stats::normal::upper_tail_probability;
use serde::{Deserialize, Serialize};

/// How the reference probability of a [`BenchmarkProblem`] was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Closed form (normal tail arithmetic); exact to machine precision.
    Exact,
    /// High-accuracy one-dimensional quadrature; relative error well below
    /// the statistical resolution of any calibration run.
    Quadrature,
}

/// A named failure problem whose true failure probability is known.
pub struct BenchmarkProblem {
    name: String,
    description: String,
    problem: FailureProblem,
    exact_probability: f64,
    ground_truth: GroundTruth,
}

/// Deterministic oblique unit direction: every component non-zero and all
/// magnitudes distinct, so nothing aligns with a coordinate axis and no
/// estimator gets an accidental symmetry gift.
#[allow(clippy::expect_used)] // invariants stated in the expect messages
fn oblique_direction(dim: usize) -> Vector {
    let v: Vector = (0..dim)
        .map(|i| 1.0 + 0.6 * (0.7 * i as f64 + 0.3).sin())
        .collect();
    v.normalized().expect("components are positive")
}

impl BenchmarkProblem {
    fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        problem: FailureProblem,
        exact_probability: f64,
        ground_truth: GroundTruth,
    ) -> Self {
        assert!(
            exact_probability > 0.0 && exact_probability < 1.0,
            "benchmark ground truth must be a non-trivial probability"
        );
        BenchmarkProblem {
            name: name.into(),
            description: description.into(),
            problem,
            exact_probability,
            ground_truth,
        }
    }

    /// Single linear specification: failure beyond a tilted hyperplane at
    /// distance `beta` from the origin (arbitrary sigma level). Exact
    /// probability `Q(beta)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `beta` is not a positive finite sigma level.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn linear(dim: usize, beta: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        let direction = oblique_direction(dim);
        let model = FnModel::new("linear", dim, move |z: &Vector| {
            direction.dot(z).expect("dimension fixed") - beta
        });
        BenchmarkProblem::new(
            format!("linear-{dim}d-{beta:.1}s"),
            format!("tilted hyperplane at {beta:.1}σ in {dim} dimensions"),
            FailureProblem::from_model(model, Spec::UpperLimit(0.0)),
            upper_tail_probability(beta),
            GroundTruth::Exact,
        )
    }

    /// Correlated process variation: the physical parameters carry an
    /// equicorrelated covariance (off-diagonal `rho`), realized by coloring
    /// the whitened point through the Cholesky factor `L`, and the
    /// specification is linear *in the physical space*. In whitened space the
    /// boundary is the tilted plane `(Lᵀa)ᵀz = τ`; the spec threshold `τ` is
    /// placed so the effective reliability index is exactly `beta`, giving
    /// the closed form `Q(beta)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2`, `beta` is not positive finite, or `rho` is
    /// outside `[0, 1)` (the equicorrelation matrix must stay positive
    /// definite).
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn correlated(dim: usize, beta: f64, rho: f64) -> Self {
        assert!(dim >= 2, "correlation needs at least two dimensions");
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        assert!(
            (0.0..1.0).contains(&rho),
            "equicorrelation must be in [0, 1)"
        );
        let covariance = Matrix::from_fn(dim, dim, |i, j| if i == j { 1.0 } else { rho });
        let chol = Cholesky::new(&covariance).expect("equicorrelation matrix is SPD");
        // Physical-space spec direction: equal weight on every parameter.
        let spec_direction = Vector::filled(dim, 1.0).normalized().expect("non-zero");
        // ‖Lᵀa‖ sets the conversion between the physical threshold and the
        // whitened-space reliability index.
        let whitened_normal = chol
            .lower()
            .matvec_transposed(&spec_direction)
            .expect("dimensions match");
        let threshold = beta * whitened_normal.norm();
        let model = FnModel::new("correlated-linear", dim, move |z: &Vector| {
            let physical = chol.color(z).expect("dimension fixed");
            spec_direction.dot(&physical).expect("dimension fixed") - threshold
        });
        BenchmarkProblem::new(
            format!("correlated-{dim}d-{beta:.1}s-rho{rho:.1}"),
            format!(
                "linear spec on equicorrelated (ρ = {rho:.1}) variation at {beta:.1}σ \
                 in {dim} dimensions"
            ),
            FailureProblem::from_model(model, Spec::UpperLimit(0.0)),
            upper_tail_probability(beta),
            GroundTruth::Exact,
        )
    }

    /// Two *disjoint* failure regions: the opposite tails `|uᵀz| > beta`
    /// along an oblique direction. Exact probability `2·Q(beta)`. The
    /// gradient at the origin vanishes by symmetry and any mean-shift
    /// proposal can cover at most one mode directly — the stress case for
    /// search-based methods.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `beta` is not positive finite.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn bimodal(dim: usize, beta: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(beta.is_finite() && beta > 0.0, "beta must be positive");
        let direction = oblique_direction(dim);
        let model = FnModel::new("bimodal", dim, move |z: &Vector| {
            direction.dot(z).expect("dimension fixed").abs() - beta
        });
        BenchmarkProblem::new(
            format!("bimodal-{dim}d-{beta:.1}s"),
            format!("two disjoint opposite tails at ±{beta:.1}σ in {dim} dimensions"),
            FailureProblem::from_model(model, Spec::UpperLimit(0.0)),
            2.0 * upper_tail_probability(beta),
            GroundTruth::Exact,
        )
    }

    /// Union of two half-spaces with *orthogonal* boundary normals at sigma
    /// levels `beta_primary` and `beta_secondary`. Because the two linear
    /// forms are independent standard normals, inclusion–exclusion gives the
    /// exact probability `p₁ + p₂ − p₁·p₂`.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 2` or either beta is not positive finite.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn union(dim: usize, beta_primary: f64, beta_secondary: f64) -> Self {
        assert!(dim >= 2, "a two-region union needs at least two dimensions");
        assert!(
            beta_primary.is_finite()
                && beta_primary > 0.0
                && beta_secondary.is_finite()
                && beta_secondary > 0.0,
            "betas must be positive"
        );
        let u1 = oblique_direction(dim);
        // Gram–Schmidt the first basis vector against u1 for an exactly
        // orthogonal second normal.
        let e0 = Vector::basis(dim, 0).expect("dim >= 2");
        let proj = u1.scaled(e0.dot(&u1).expect("dimension fixed"));
        let u2 = (&e0 - &proj).normalized().expect("u1 is oblique, not e0");
        let (b1, b2) = (beta_primary, beta_secondary);
        let model = FnModel::new("union", dim, move |z: &Vector| {
            let g1 = u1.dot(z).expect("dimension fixed") - b1;
            let g2 = u2.dot(z).expect("dimension fixed") - b2;
            g1.max(g2)
        });
        let p1 = upper_tail_probability(beta_primary);
        let p2 = upper_tail_probability(beta_secondary);
        BenchmarkProblem::new(
            format!("union-{dim}d-{beta_primary:.1}s+{beta_secondary:.1}s"),
            format!(
                "union of orthogonal half-spaces at {beta_primary:.1}σ and \
                 {beta_secondary:.1}σ in {dim} dimensions"
            ),
            FailureProblem::from_model(model, Spec::UpperLimit(0.0)),
            p1 + p2 - p1 * p2,
            GroundTruth::Exact,
        )
    }

    /// Curved (quadratic) failure boundary `z₀ − β + κ·Σ_{i>0} z_i² > 0`,
    /// non-convex passing region for `κ > 0`. The reference probability comes
    /// from [`QuadraticLimitState::reference_failure_probability`]
    /// (one-dimensional quadrature against the χ² density, accurate far below
    /// the statistical resolution of a calibration run).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or the parameters are not finite.
    pub fn quadratic(dim: usize, beta: f64, curvature: f64) -> Self {
        let limit_state = QuadraticLimitState::new(dim, beta, curvature);
        let reference = limit_state.reference_failure_probability();
        BenchmarkProblem::new(
            format!("quadratic-{dim}d-{beta:.1}s-k{curvature:.2}"),
            format!(
                "curved boundary at {beta:.1}σ with curvature {curvature:.2} \
                 in {dim} dimensions"
            ),
            FailureProblem::from_model(limit_state, QuadraticLimitState::spec()),
            reference,
            GroundTruth::Quadrature,
        )
    }

    /// The dimensionality ladder: the same `beta`-sigma hyperplane in
    /// 6 → 24 → 96 → 576 dimensions (the paper's Table 3 progression, from
    /// a single 6T cell up to large mismatch netlists). The exact
    /// probability is `Q(beta)` at every rung — only the search/sampling
    /// difficulty grows — which makes the ladder a pure test of how
    /// estimator accuracy and honesty scale with dimension.
    pub fn dimensionality_ladder(beta: f64) -> Vec<Self> {
        [6, 24, 96, 576]
            .into_iter()
            .map(|dim| BenchmarkProblem::linear(dim, beta))
            .collect()
    }

    /// The full calibration matrix: every failure-region family of this
    /// module across sigma levels and dimensions (10 problems).
    pub fn standard_suite() -> Vec<Self> {
        let mut suite = vec![
            BenchmarkProblem::linear(6, 2.5),
            BenchmarkProblem::linear(6, 4.0),
            BenchmarkProblem::correlated(8, 3.0, 0.5),
            BenchmarkProblem::bimodal(6, 2.5),
            BenchmarkProblem::union(6, 2.5, 3.5),
            BenchmarkProblem::union(12, 2.6, 3.6),
            BenchmarkProblem::quadratic(6, 3.0, 0.05),
        ];
        suite.extend(
            BenchmarkProblem::dimensionality_ladder(3.0)
                .into_iter()
                .skip(1), // 6-d rung overlaps the linear problems above
        );
        suite.push(BenchmarkProblem::quadratic(12, 4.0, 0.08));
        suite
    }

    /// The reduced matrix asserted by the CI calibration gate: seven problems
    /// (five with closed-form ground truth, two quadrature-referenced curved
    /// boundaries) at sigma levels where *every* estimator — including
    /// budget-capped brute-force Monte Carlo — can produce an honest
    /// confidence interval within a CI-sized budget.
    ///
    /// The multi-region stress geometries ([`BenchmarkProblem::bimodal`],
    /// [`BenchmarkProblem::union`]) are deliberately *not* here: mean-shift
    /// importance sampling is knowingly overconfident on disjoint regions,
    /// and scaled-sigma extrapolation is knowingly biased on unions (under
    /// sigma inflation a distant secondary region dominates the fitted
    /// curve while contributing nothing at nominal sigma — a model error
    /// invisible to in-sample residuals). The full
    /// [`BenchmarkProblem::standard_suite`] *reports* those violations; this
    /// suite gates what can honestly be gated.
    pub fn fast_suite() -> Vec<Self> {
        vec![
            BenchmarkProblem::linear(6, 2.5),
            BenchmarkProblem::linear(6, 3.0),
            BenchmarkProblem::correlated(8, 2.5, 0.5),
            BenchmarkProblem::correlated(12, 2.7, 0.3),
            BenchmarkProblem::quadratic(6, 2.5, 0.05),
            BenchmarkProblem::quadratic(8, 2.5, -0.04),
            BenchmarkProblem::linear(24, 2.5),
        ]
    }

    /// Stable problem name (encodes family, dimension and sigma level).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description of the failure-region geometry.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The exact (or quadrature-reference) failure probability.
    pub fn exact_probability(&self) -> f64 {
        self.exact_probability
    }

    /// How the reference probability was obtained.
    pub fn ground_truth(&self) -> GroundTruth {
        self.ground_truth
    }

    /// The exact sigma level `Φ⁻¹(1 − p)` of the ground truth.
    pub fn exact_sigma_level(&self) -> f64 {
        gis_stats::normal::sigma_level(self.exact_probability)
    }

    /// Dimensionality of the variation space.
    pub fn dim(&self) -> usize {
        self.problem.dim()
    }

    /// The underlying failure problem (shared evaluation counter).
    pub fn problem(&self) -> &FailureProblem {
        &self.problem
    }

    /// A handle on the same problem with an independent evaluation counter —
    /// what a calibration replication hands to an estimator.
    pub fn fork(&self) -> FailureProblem {
        self.problem.fork()
    }
}

impl std::fmt::Debug for BenchmarkProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkProblem")
            .field("name", &self.name)
            .field("dim", &self.dim())
            .field("exact_probability", &self.exact_probability)
            .field("ground_truth", &self.ground_truth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gis_stats::RngStream;

    /// Monte Carlo cross-check of a generator's ground truth at a sigma level
    /// low enough for brute force to resolve it.
    fn monte_carlo_check(bench: &BenchmarkProblem, samples: u64, tolerance: f64) {
        let problem = bench.fork();
        let mut rng = RngStream::from_seed(20260727);
        let mut failures = 0u64;
        for _ in 0..samples {
            let z = rng.standard_normal_vector(bench.dim());
            if problem.is_failure(&z) {
                failures += 1;
            }
        }
        let p_mc = failures as f64 / samples as f64;
        let rel = (p_mc - bench.exact_probability()).abs() / bench.exact_probability();
        assert!(
            rel < tolerance,
            "{}: ground truth {:e} vs MC {:e} (rel {rel:.3})",
            bench.name(),
            bench.exact_probability(),
            p_mc
        );
    }

    #[test]
    fn linear_ground_truth_matches_monte_carlo() {
        monte_carlo_check(&BenchmarkProblem::linear(6, 2.0), 150_000, 0.05);
    }

    #[test]
    fn correlated_ground_truth_matches_monte_carlo() {
        monte_carlo_check(&BenchmarkProblem::correlated(5, 2.0, 0.6), 150_000, 0.05);
    }

    #[test]
    fn bimodal_ground_truth_matches_monte_carlo() {
        monte_carlo_check(&BenchmarkProblem::bimodal(4, 2.0), 150_000, 0.05);
    }

    #[test]
    fn union_ground_truth_matches_monte_carlo() {
        monte_carlo_check(&BenchmarkProblem::union(5, 1.8, 2.2), 150_000, 0.05);
    }

    #[test]
    fn union_inclusion_exclusion_is_applied() {
        let bench = BenchmarkProblem::union(4, 2.0, 2.0);
        let p = upper_tail_probability(2.0);
        assert!((bench.exact_probability() - (2.0 * p - p * p)).abs() < 1e-18);
        // The union is strictly larger than either region but smaller than
        // the disjoint sum.
        assert!(bench.exact_probability() > p);
        assert!(bench.exact_probability() < 2.0 * p);
    }

    #[test]
    fn bimodal_is_twice_the_single_tail() {
        let bench = BenchmarkProblem::bimodal(6, 3.0);
        assert!((bench.exact_probability() - 2.0 * upper_tail_probability(3.0)).abs() < 1e-18);
        // Both modes fail, the origin passes.
        let problem = bench.fork();
        let direction = oblique_direction(6);
        assert!(problem.is_failure(&direction.scaled(3.5)));
        assert!(problem.is_failure(&direction.scaled(-3.5)));
        assert!(!problem.is_failure(&Vector::zeros(6)));
    }

    #[test]
    fn correlated_boundary_sits_at_the_advertised_sigma() {
        // The minimum-norm point of the correlated problem's failure region
        // must lie at distance beta: walking along the whitened-space normal
        // hits the boundary at exactly beta.
        let beta = 3.0;
        let bench = BenchmarkProblem::correlated(6, beta, 0.4);
        let problem = bench.fork();
        // Reconstruct the whitened normal by finite differences at origin.
        let dim = bench.dim();
        let h = 1e-6;
        let g0 = problem.metric(&Vector::zeros(dim));
        let gradient: Vector = (0..dim)
            .map(|i| {
                let probe = Vector::basis(dim, i).unwrap().scaled(h);
                (problem.metric(&probe) - g0) / h
            })
            .collect();
        let normal = gradient.normalized().unwrap();
        // Just inside passes, just outside fails.
        assert!(!problem.is_failure(&normal.scaled(beta * 0.999)));
        assert!(problem.is_failure(&normal.scaled(beta * 1.001)));
    }

    #[test]
    fn ladder_spans_the_advertised_dimensions() {
        let ladder = BenchmarkProblem::dimensionality_ladder(3.0);
        let dims: Vec<usize> = ladder.iter().map(|b| b.dim()).collect();
        assert_eq!(dims, vec![6, 24, 96, 576]);
        // Identical ground truth at every rung.
        for bench in &ladder {
            assert_eq!(
                bench.exact_probability().to_bits(),
                upper_tail_probability(3.0).to_bits()
            );
        }
    }

    #[test]
    fn suites_are_well_formed() {
        for suite in [
            BenchmarkProblem::standard_suite(),
            BenchmarkProblem::fast_suite(),
        ] {
            assert!(suite.len() >= 6);
            let mut names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), suite.len(), "duplicate problem names");
            for bench in &suite {
                assert!(bench.exact_probability() > 0.0 && bench.exact_probability() < 1.0);
                assert!(bench.exact_sigma_level() > 2.0);
                assert!(!bench.description().is_empty());
                assert!(format!("{bench:?}").contains(bench.name()));
            }
        }
        // The full matrix reaches 576 dimensions; the fast matrix stays small.
        let standard = BenchmarkProblem::standard_suite();
        assert_eq!(standard.iter().map(|b| b.dim()).max(), Some(576));
        assert!(BenchmarkProblem::fast_suite().iter().all(|b| b.dim() <= 24));
        // The fast gate needs at least five closed-form problems.
        let exact = BenchmarkProblem::fast_suite()
            .iter()
            .filter(|b| b.ground_truth() == GroundTruth::Exact)
            .count();
        assert!(exact >= 5);
    }

    #[test]
    fn quadratic_wraps_the_limit_state_reference() {
        let bench = BenchmarkProblem::quadratic(5, 3.0, 0.05);
        let reference = QuadraticLimitState::new(5, 3.0, 0.05).reference_failure_probability();
        assert_eq!(bench.exact_probability().to_bits(), reference.to_bits());
        assert_eq!(bench.ground_truth(), GroundTruth::Quadrature);
        assert_eq!(
            BenchmarkProblem::linear(4, 3.0).ground_truth(),
            GroundTruth::Exact
        );
    }

    #[test]
    #[should_panic(expected = "equicorrelation must be in [0, 1)")]
    fn correlated_rejects_invalid_rho() {
        let _ = BenchmarkProblem::correlated(4, 3.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn linear_rejects_non_positive_beta() {
        let _ = BenchmarkProblem::linear(4, 0.0);
    }
}
