//! Special functions needed by the estimators: log-gamma, the regularized
//! incomplete gamma function and the chi/chi-square tail probabilities used by
//! the spherical-sampling baseline.

/// Log-gamma via the Lanczos approximation (absolute error ≲ 1e-13 for positive
/// arguments).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFICIENTS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFICIENTS[0];
    for (i, &c) in COEFFICIENTS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`,
/// computed by its series expansion (used for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum * (-x + a * x.ln() - ln_ga).exp()).clamp(0.0, 1.0)
}

/// Regularized upper incomplete gamma function `Q(a, x) = Γ(a, x) / Γ(a)`,
/// computed by its continued fraction (used for `x ≥ a + 1`).
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        // One-ulp convergence (a sub-ulp tolerance can miss termination and
        // burn the iteration cap when delta oscillates around 1.0).
        if (delta - 1.0).abs() < f64::EPSILON {
            break;
        }
    }
    ((-x + a * x.ln() - ln_ga).exp() * h).clamp(0.0, 1.0)
}

/// Regularized upper incomplete gamma function `Q(a, x) = P(X > x)` for a
/// Gamma(a, 1) random variable.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    // gis-analyze: allow(float-eq, exact boundary case Q(a, 0) = 1 of the incomplete gamma)
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = P(X ≤ x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    1.0 - gamma_q(a, x)
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `P(χ²_dof > x)`.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
pub fn chi_square_survival(dof: usize, x: f64) -> f64 {
    assert!(dof > 0, "chi-square needs at least one degree of freedom");
    gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Survival function of the chi distribution (the norm of a `dof`-dimensional
/// standard normal vector): `P(‖Z‖ > r)`.
///
/// # Panics
///
/// Panics if `dof == 0` or `r < 0`.
pub fn chi_survival(dof: usize, r: f64) -> f64 {
    assert!(r >= 0.0, "radius must be non-negative");
    chi_square_survival(dof, r * r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
        // Recurrence Γ(x+1) = x·Γ(x).
        for &x in &[0.3, 1.7, 4.2, 9.9] {
            assert!((ln_gamma(x + 1.0) - (ln_gamma(x) + x.ln())).abs() < 1e-10);
        }
    }

    #[test]
    fn gamma_pq_are_complementary_and_monotone() {
        for &a in &[0.5, 1.0, 2.5, 10.0] {
            let mut prev_q = 1.0;
            for i in 0..40 {
                let x = i as f64 * 0.5;
                let p = gamma_p(a, x);
                let q = gamma_q(a, x);
                assert!((p + q - 1.0).abs() < 1e-12);
                assert!(q <= prev_q + 1e-12, "Q not monotone at a={a}, x={x}");
                prev_q = q;
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // For a = 1 the gamma distribution is Exponential(1): Q(1, x) = exp(−x).
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_q(1.0, x) - (-x).exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_survival_matches_known_values() {
        // χ²_1: P(χ² > x) = 2·Q_normal(sqrt(x)). Both sides are now accurate
        // to ~1e-15 relative error, so the agreement is machine-precision.
        for &x in &[0.5_f64, 1.0, 4.0, 9.0] {
            let expected = 2.0 * gis_stats::normal::upper_tail_probability(x.sqrt());
            let got = chi_square_survival(1, x);
            assert!(
                (got - expected).abs() < 1e-13 * expected,
                "{got} vs {expected}"
            );
        }
        // χ²_2 is Exponential(1/2): P(χ² > x) = exp(−x/2).
        for &x in &[0.5, 2.0, 8.0] {
            assert!((chi_square_survival(2, x) - (-x / 2.0).exp()).abs() < 1e-12);
        }
        // Median of χ²_k is approximately k(1 − 2/(9k))³.
        let median_approx = 6.0 * (1.0 - 2.0 / 54.0f64).powi(3);
        let at_median = chi_square_survival(6, median_approx);
        assert!((at_median - 0.5).abs() < 0.01);
    }

    #[test]
    fn chi_survival_relationship() {
        for dof in [1usize, 3, 6, 12] {
            for &r in &[0.5, 1.5, 3.0, 5.0] {
                assert!((chi_survival(dof, r) - chi_square_survival(dof, r * r)).abs() < 1e-15);
            }
        }
        // In 1D the chi tail is the two-sided normal tail; with the
        // continued-fraction erfc this holds to full precision even far out.
        for &r in &[3.0, 6.0, 8.0] {
            let expected = 2.0 * gis_stats::normal::upper_tail_probability(r);
            assert!(
                (chi_survival(1, r) - expected).abs() < 1e-13 * expected,
                "chi_survival(1, {r}) mismatch"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires a positive argument")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    #[should_panic(expected = "gamma_q requires x >= 0")]
    fn gamma_q_rejects_negative_x() {
        let _ = gamma_q(1.0, -1.0);
    }
}
