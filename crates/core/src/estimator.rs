//! The unified estimator abstraction shared by all five extraction methods.
//!
//! The paper's evaluation is a *comparison*: the same failure problems are
//! attacked by Gradient Importance Sampling, brute-force Monte Carlo,
//! minimum-norm IS, spherical sampling and scaled-sigma sampling, and the
//! estimates/costs are tabulated side by side. The [`Estimator`] trait is the
//! object-safe common denominator that makes such comparisons a one-liner:
//! every method produces an [`EstimatorOutcome`] carrying the shared
//! [`ExtractionResult`] plus a typed [`Diagnostics`] payload preserving the
//! method-specific extras (MPFP trace, search outcome, scale points, …).
//!
//! Drivers — most prominently [`crate::analysis::YieldAnalysis`] — operate on
//! `Box<dyn Estimator>` and never need to know which concrete method they are
//! running.
//!
//! ```
//! use gis_core::{
//!     Estimator, GisConfig, GradientImportanceSampling, FailureProblem,
//!     LinearLimitState, MonteCarlo, MonteCarloConfig,
//! };
//! use gis_stats::RngStream;
//!
//! let methods: Vec<Box<dyn Estimator>> = vec![
//!     Box::new(GradientImportanceSampling::new(GisConfig::default())),
//!     Box::new(MonteCarlo::new(MonteCarloConfig::default())),
//! ];
//! let problem = FailureProblem::from_model(
//!     LinearLimitState::along_first_axis(4, 3.0),
//!     LinearLimitState::spec(),
//! );
//! for method in &methods {
//!     let outcome = method.estimate(&problem.fork(), &mut RngStream::from_seed(1));
//!     assert_eq!(outcome.result.method, method.name());
//! }
//! ```

use crate::baselines::mnis::MnisSearchOutcome;
use crate::baselines::sss::ScalePoint;
use crate::exec::ExecutionConfig;
use crate::importance::IsDiagnostics;
use crate::model::FailureProblem;
use crate::mpfp::MpfpResult;
use crate::result::ExtractionResult;
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Method-specific diagnostics attached to an [`EstimatorOutcome`].
///
/// Each variant preserves exactly the extra information the corresponding
/// method used to return from its bespoke `run` signature, so nothing is lost
/// by going through the unified API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Diagnostics {
    /// Gradient Importance Sampling: importance-sampling health, the MPFP
    /// search result and the adaptation history of the shift vector.
    GradientImportanceSampling {
        /// Importance-sampling diagnostics (ESS, max weight, final shift).
        is: IsDiagnostics,
        /// The gradient MPFP search result, including its trace.
        mpfp: MpfpResult,
        /// Shift vectors across adaptation steps (first entry is the MPFP).
        shift_history: Vec<Vector>,
    },
    /// Brute-force Monte Carlo carries no extras beyond the shared result.
    MonteCarlo,
    /// Minimum-norm IS: importance-sampling health plus the presampling
    /// search outcome.
    MinimumNormIs {
        /// Importance-sampling diagnostics (ESS, max weight, shift).
        is: IsDiagnostics,
        /// The derivative-free minimum-norm search outcome.
        search: MnisSearchOutcome,
    },
    /// Spherical sampling: the boundary-geometry summary of the run.
    SphericalSampling {
        /// Smallest failing boundary radius found across all directions (the
        /// spherical estimate of the reliability index β), `None` when no
        /// direction failed within the radius cap. This is what a grid
        /// neighbor warm-starts its bisection bracket from.
        min_beta: Option<f64>,
    },
    /// Scaled-sigma sampling: the per-scale measurements behind the
    /// extrapolation.
    ScaledSigmaSampling {
        /// Failure counts and probabilities at each inflated sigma.
        scale_points: Vec<ScalePoint>,
    },
}

/// Outcome of running any [`Estimator`]: the shared extraction result plus the
/// method's typed diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorOutcome {
    /// The failure-probability extraction result (estimate, errors, cost).
    pub result: ExtractionResult,
    /// Method-specific diagnostics.
    pub diagnostics: Diagnostics,
}

impl EstimatorOutcome {
    /// Importance-sampling diagnostics, for the IS-based methods.
    pub fn is_diagnostics(&self) -> Option<&IsDiagnostics> {
        match &self.diagnostics {
            Diagnostics::GradientImportanceSampling { is, .. } => Some(is),
            Diagnostics::MinimumNormIs { is, .. } => Some(is),
            _ => None,
        }
    }

    /// The gradient MPFP search result, when the method ran one.
    pub fn mpfp(&self) -> Option<&MpfpResult> {
        match &self.diagnostics {
            Diagnostics::GradientImportanceSampling { mpfp, .. } => Some(mpfp),
            _ => None,
        }
    }

    /// The final proposal shift vector, when the method used a mean shift.
    pub fn shift(&self) -> Option<&[f64]> {
        self.is_diagnostics().and_then(|d| d.shift.as_deref())
    }

    /// The shift adaptation history, for Gradient Importance Sampling.
    pub fn shift_history(&self) -> Option<&[Vector]> {
        match &self.diagnostics {
            Diagnostics::GradientImportanceSampling { shift_history, .. } => Some(shift_history),
            _ => None,
        }
    }

    /// The minimum-norm search outcome, for MNIS.
    pub fn search(&self) -> Option<&MnisSearchOutcome> {
        match &self.diagnostics {
            Diagnostics::MinimumNormIs { search, .. } => Some(search),
            _ => None,
        }
    }

    /// The per-scale measurements, for scaled-sigma sampling.
    pub fn scale_points(&self) -> Option<&[ScalePoint]> {
        match &self.diagnostics {
            Diagnostics::ScaledSigmaSampling { scale_points } => Some(scale_points),
            _ => None,
        }
    }

    /// Whether the method's diagnostics flagged a suspected second failure
    /// mode (`false` for methods without the heuristic).
    pub fn multimodal_suspected(&self) -> bool {
        self.is_diagnostics()
            .map(|d| d.multimodal_suspected)
            .unwrap_or(false)
    }

    /// The smallest failing boundary radius, for spherical sampling.
    pub fn min_beta(&self) -> Option<f64> {
        match &self.diagnostics {
            Diagnostics::SphericalSampling { min_beta } => *min_beta,
            _ => None,
        }
    }

    /// Extracts the warm-start hint a grid neighbor of the *same estimator*
    /// could seed its search from, or `None` when this outcome carries
    /// nothing worth continuing from (Monte Carlo, failed searches,
    /// zero-failure runs).
    ///
    /// The extraction is a pure function of the diagnostics, so a hint
    /// rebuilt from a checkpoint-restored outcome is bit-identical to the
    /// one the live run produced — the property warm-sweep resume relies on.
    pub fn warm_hint(&self) -> Option<WarmStart> {
        match &self.diagnostics {
            Diagnostics::GradientImportanceSampling { mpfp, .. } => {
                if mpfp.converged && mpfp.mpfp.is_finite() && mpfp.beta > 0.0 {
                    Some(WarmStart::MpfpShift {
                        shift: mpfp.mpfp.clone(),
                        beta: mpfp.beta,
                    })
                } else {
                    None
                }
            }
            Diagnostics::MonteCarlo => None,
            Diagnostics::MinimumNormIs { search, .. } => {
                if search.found_failure && search.center.is_finite() && search.beta > 0.0 {
                    Some(WarmStart::MinimumNormCenter {
                        center: search.center.clone(),
                        beta: search.beta,
                    })
                } else {
                    None
                }
            }
            Diagnostics::SphericalSampling { min_beta } => min_beta
                .filter(|beta| beta.is_finite() && *beta > 0.0)
                .map(|min_beta| WarmStart::RadiusBracket { min_beta }),
            Diagnostics::ScaledSigmaSampling { scale_points } => {
                let scales: Vec<f64> = scale_points
                    .iter()
                    .filter(|point| point.failures > 0)
                    .map(|point| point.scale)
                    .collect();
                if scales.is_empty() {
                    None
                } else {
                    Some(WarmStart::UsableScales { scales })
                }
            }
        }
    }
}

/// A warm-start hint: the search state a completed grid neighbor donates to
/// an adjacent cell of the *same estimator*, so the recipient can skip or
/// shorten its own search phase. Hints are advisory — every estimator
/// validates the hint against its own problem (dimension, finiteness) and
/// falls back to the blind path when it does not apply. Monte Carlo has no
/// search phase and ignores hints entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WarmStart {
    /// Gradient IS: seed the damped HL–RF iteration at a neighbor's
    /// converged MPFP instead of the origin. Near-identical neighbor
    /// geometry converges in one or two iterations.
    MpfpShift {
        /// The neighbor's converged most-probable failure point.
        shift: Vector,
        /// Its reliability index (norm of the shift), kept for provenance
        /// and disagreement diagnostics.
        beta: f64,
    },
    /// Minimum-norm IS: center the proposal search on a neighbor's
    /// minimum-norm failing point, skipping the LHS presampling rounds.
    MinimumNormCenter {
        /// The neighbor's minimum-norm failing point.
        center: Vector,
        /// Its norm in sigmas.
        beta: f64,
    },
    /// Spherical sampling: tighten the radial bisection bracket around a
    /// neighbor's smallest failing radius.
    RadiusBracket {
        /// The neighbor's smallest failing boundary radius.
        min_beta: f64,
    },
    /// Scaled-sigma sampling: spend samples only on the scales that
    /// produced failures for the neighbor (the extrapolation's usable
    /// points), skipping scales whose clouds were all-passing.
    UsableScales {
        /// Scale factors that produced at least one failure.
        scales: Vec<f64>,
    },
}

/// Budget and stopping policy a driver imposes uniformly on every estimator.
///
/// Each method maps the policy onto its own configuration: the sampling-based
/// methods take the fields directly; spherical sampling converts the
/// evaluation budget into a direction budget; scaled-sigma sampling divides it
/// across its scale factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePolicy {
    /// Maximum sampling-phase metric evaluations per method.
    pub max_evaluations: u64,
    /// Target relative standard error at which a method may stop early.
    pub target_relative_error: f64,
    /// Minimum observed failures before the stopping rule may fire.
    pub min_failures: u64,
}

impl Default for ConvergencePolicy {
    fn default() -> Self {
        ConvergencePolicy {
            max_evaluations: 50_000,
            target_relative_error: 0.1,
            min_failures: 20,
        }
    }
}

impl ConvergencePolicy {
    /// Creates a policy with the given evaluation budget and defaults for the
    /// stopping rule.
    pub fn with_budget(max_evaluations: u64) -> Self {
        ConvergencePolicy {
            max_evaluations,
            ..ConvergencePolicy::default()
        }
    }

    /// Sets the target relative standard error.
    pub fn target_relative_error(mut self, target: f64) -> Self {
        self.target_relative_error = target;
        self
    }

    /// Sets the minimum-failures guard of the stopping rule.
    pub fn min_failures(mut self, min_failures: u64) -> Self {
        self.min_failures = min_failures;
        self
    }
}

/// A failure-probability estimator: the object-safe interface implemented by
/// all five extraction methods.
///
/// Implementations must be deterministic given the same problem and RNG
/// stream, and must charge every metric evaluation (search and sampling
/// phases alike) to the problem's counter so cost comparisons stay honest.
/// Parallelism ([`ExecutionConfig`]) must never change what an implementation
/// computes — estimates and evaluation counts are required to be bit-identical
/// at every thread count (see [`crate::exec`]).
pub trait Estimator: Send + Sync {
    /// Stable method name, identical to the `method` field of the produced
    /// [`ExtractionResult`] (e.g. `"gradient-is"`).
    fn name(&self) -> &str;

    /// Runs the full extraction on `problem`, drawing randomness from `rng`.
    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome;

    /// Runs the extraction seeded from a grid neighbor's [`WarmStart`] hint.
    ///
    /// Contract: `estimate_warm(problem, rng, None)` must be bit-identical
    /// to [`estimate`](Estimator::estimate) — the blind path is the
    /// reproducibility reference — and an inapplicable hint (wrong
    /// dimension, non-finite, wrong variant) must fall back to it. The
    /// default implementation ignores hints, which is the correct behavior
    /// for estimators without a search phase (Monte Carlo).
    fn estimate_warm(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        let _ = warm;
        self.estimate(problem, rng)
    }

    /// Maps a driver-imposed budget/stopping policy onto the method's own
    /// configuration. The default implementation ignores the policy.
    fn configure(&mut self, policy: &ConvergencePolicy) {
        let _ = policy;
    }

    /// Sets the parallel-execution configuration used by
    /// [`estimate`](Estimator::estimate). The default implementation ignores
    /// it (a serial estimator is always a valid implementation).
    fn set_execution(&mut self, exec: ExecutionConfig) {
        let _ = exec;
    }

    /// The parallel-execution configuration [`estimate`](Estimator::estimate)
    /// will use — what drivers record as run metadata. Implementations that
    /// parallelize must override this together with
    /// [`set_execution`](Estimator::set_execution) and report the configured
    /// value; the default declares "no managed parallelism" (serial), which is
    /// accurate for an estimator that ignores `set_execution`.
    fn effective_execution(&self) -> ExecutionConfig {
        ExecutionConfig::serial()
    }
}

impl std::fmt::Debug for dyn Estimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Estimator({})", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{
        MinimumNormIs, MnisConfig, ScaledSigmaSampling, SphericalSampling, SphericalSamplingConfig,
        SssConfig,
    };
    use crate::gis::{GisConfig, GradientImportanceSampling};
    use crate::model::LinearLimitState;
    use crate::montecarlo::{MonteCarlo, MonteCarloConfig};

    fn all_methods() -> Vec<Box<dyn Estimator>> {
        vec![
            Box::new(GradientImportanceSampling::new(GisConfig::default())),
            Box::new(MonteCarlo::new(MonteCarloConfig::default())),
            Box::new(MinimumNormIs::new(MnisConfig::default())),
            Box::new(SphericalSampling::new(SphericalSamplingConfig::default())),
            Box::new(ScaledSigmaSampling::new(SssConfig::default())),
        ]
    }

    #[test]
    fn names_are_stable_and_match_results() {
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(3, 3.0),
            LinearLimitState::spec(),
        );
        let expected = [
            "gradient-is",
            "monte-carlo",
            "minimum-norm-is",
            "spherical-sampling",
            "scaled-sigma-sampling",
        ];
        for (method, expected_name) in all_methods().iter().zip(expected) {
            assert_eq!(method.name(), expected_name);
            let outcome = method.estimate(&problem.fork(), &mut RngStream::from_seed(5));
            assert_eq!(outcome.result.method, expected_name);
        }
    }

    #[test]
    fn diagnostics_accessors_route_to_the_right_variant() {
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(3, 3.0),
            LinearLimitState::spec(),
        );
        let gis = GradientImportanceSampling::new(GisConfig::default());
        let outcome = Estimator::estimate(&gis, &problem.fork(), &mut RngStream::from_seed(2));
        assert!(outcome.mpfp().is_some());
        assert!(outcome.is_diagnostics().is_some());
        assert!(outcome.shift_history().is_some());
        assert!(outcome.search().is_none());
        assert!(outcome.scale_points().is_none());

        let mc = MonteCarlo::new(MonteCarloConfig::with_budget(5_000));
        let outcome = Estimator::estimate(&mc, &problem.fork(), &mut RngStream::from_seed(2));
        assert_eq!(outcome.diagnostics, Diagnostics::MonteCarlo);
        assert!(outcome.mpfp().is_none());

        let sss = ScaledSigmaSampling::new(SssConfig::default());
        let outcome = Estimator::estimate(&sss, &problem.fork(), &mut RngStream::from_seed(2));
        assert!(outcome.scale_points().is_some());
    }

    #[test]
    fn policy_configures_every_method() {
        let policy = ConvergencePolicy::with_budget(4_000)
            .target_relative_error(0.3)
            .min_failures(5);
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(2, 2.0),
            LinearLimitState::spec(),
        );
        for mut method in all_methods() {
            method.configure(&policy);
            let fork = problem.fork();
            let outcome = method.estimate(&fork, &mut RngStream::from_seed(9));
            // The sampling-phase cost respects the budget; search phases may
            // add their own (bounded) evaluations on top.
            assert!(
                outcome.result.sampling_evaluations <= 4_000 + 32,
                "{} overspent: {}",
                method.name(),
                outcome.result.sampling_evaluations
            );
        }
    }

    #[test]
    fn outcomes_serialize_round_trip() {
        let problem = FailureProblem::from_model(
            LinearLimitState::along_first_axis(3, 3.5),
            LinearLimitState::spec(),
        );
        for method in all_methods() {
            let outcome = method.estimate(&problem.fork(), &mut RngStream::from_seed(3));
            let json = serde_json::to_string(&outcome).expect("outcome serializes");
            let back: EstimatorOutcome = serde_json::from_str(&json).expect("round trip");
            assert_eq!(back.result.method, outcome.result.method);
            assert_eq!(back.result.evaluations, outcome.result.evaluations);
            assert_eq!(back.diagnostics, outcome.diagnostics);
        }
    }
}
