//! Fault containment and deterministic fault injection.
//!
//! Long sweeps must degrade gracefully: a single panicking estimator, a
//! singular MNA matrix or a NaN-poisoned metric must not abort hours of
//! completed work. This module provides the two halves of that contract.
//!
//! # Containment
//!
//! [`run_contained`] wraps one (problem, estimator) cell execution in
//! [`std::panic::catch_unwind`] and a bounded retry loop, and classifies any
//! failure into a typed [`CellOutcome::Failed`] carrying a
//! [`CellFailureReason`] and the attempt count. Drivers
//! ([`crate::sweep::SweepRunner`], the `gis-serve` daemon) record the failure
//! in their checkpoint/journal and keep going; healthy cells are returned
//! **unmodified**, so the determinism contract of [`crate::exec`] extends to
//! partial failure: every non-failed cell is bit-identical to a fault-free
//! run. Retries are seed-deterministic for free — a cell is a pure function
//! of its derived seed, so re-running it cannot diverge; the retry loop only
//! matters for *injected* faults bounded to the first k attempts (and for
//! genuinely transient environmental failures in deployments).
//!
//! # Injection
//!
//! [`FaultPlan`] describes a deterministic fault schedule, parsed from the
//! `GIS_FAULTS` environment variable (see [`FAULTS_ENV_VAR`]) or built
//! directly via [`FaultPlan::parse`] in tests. Injection is **off by
//! default**: when the variable is unset, [`global`] caches `None` once and
//! the hot path reduces to a single `Option` check. Faults are keyed by the
//! cell's problem/estimator names — the same identifiers the derived cell
//! seeds hash — so every injected failure is reproducible.
//!
//! Directives (comma-separated):
//!
//! | directive | effect |
//! |---|---|
//! | `panic:<problem>/<estimator>[:<k>]` | the cell's worker panics (first `k` attempts; default: all) |
//! | `singular:<problem>/<estimator>[:<k>]` | typed singular-matrix non-convergence |
//! | `nan:<problem>/<estimator>[:<k>]` | the cell's estimate is NaN-poisoned |
//! | `torn-journal:<n>` | the `n`-th checkpoint/journal append is torn mid-line |
//! | `drop-frame:<n>[:<times>]` | the server tears the `n`-th reply frame of a connection and drops the socket (at most `times` times; default 1) |
//!
//! # Checkpoint integrity
//!
//! [`crc32`] is the hand-rolled (std-only) CRC-32/ISO-HDLC used to checksum
//! checkpoint and journal lines, so a torn write is detected by checksum even
//! when the truncated prefix happens to parse as JSON.

use crate::analysis::{ComparisonRow, MethodReport};
use crate::estimator::{Diagnostics, EstimatorOutcome};
use crate::result::ExtractionResult;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// Environment variable holding the fault-injection schedule (see the
/// [module documentation](self) for the directive grammar). Unset (the
/// default) means no injection anywhere.
pub const FAULTS_ENV_VAR: &str = "GIS_FAULTS";

/// Default bounded retry budget: one retry after the first failure. Retries
/// are cheap to reason about (cells are pure functions of their seed) but a
/// deterministic failure will fail every attempt, so a small bound quarantines
/// it quickly.
pub const DEFAULT_CELL_ATTEMPTS: u32 = 2;

/// Why a cell failed — the failure taxonomy of the containment plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellFailureReason {
    /// The cell's worker panicked; the payload message is preserved.
    Panic {
        /// The panic payload, downcast to a string when possible.
        message: String,
    },
    /// The estimator reported a structural non-convergence (e.g. a singular
    /// system matrix) rather than completing with a result.
    NonConvergence {
        /// Human-readable description of the non-convergence.
        detail: String,
    },
    /// The cell completed but its failure-probability estimate is NaN — a
    /// poisoned metric that must not silently enter a report.
    NanMetric {
        /// Which quantity was poisoned.
        detail: String,
    },
    /// The job's server-side deadline expired before the cell ran.
    DeadlineExceeded {
        /// The deadline that expired.
        detail: String,
    },
}

impl std::fmt::Display for CellFailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailureReason::Panic { message } => write!(f, "panic: {message}"),
            CellFailureReason::NonConvergence { detail } => write!(f, "non-convergence: {detail}"),
            CellFailureReason::NanMetric { detail } => write!(f, "NaN metric: {detail}"),
            CellFailureReason::DeadlineExceeded { detail } => {
                write!(f, "deadline exceeded: {detail}")
            }
        }
    }
}

/// A quarantined cell failure: the typed reason plus how many bounded
/// attempts were spent before giving up. Attached to the placeholder
/// [`MethodReport`] recorded for the cell (see [`MethodReport::failed`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Why the final attempt failed.
    pub reason: CellFailureReason,
    /// Number of attempts made (the retry budget that was exhausted).
    pub attempts: u32,
}

/// Outcome of one contained cell execution.
// `Completed` dwarfs `Failed`, but the outcome lives only between
// `run_contained` and the immediate `into_report` call — boxing the report
// would only add a hop on the per-cell hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CellOutcome {
    /// The cell completed; the report is bit-identical to an uncontained run.
    Completed(MethodReport),
    /// Every attempt failed; the cell is quarantined with a typed reason.
    Failed {
        /// Why the final attempt failed.
        reason: CellFailureReason,
        /// Number of attempts made before quarantine.
        attempts: u32,
    },
}

impl CellOutcome {
    /// Whether this outcome is a quarantined failure.
    pub fn is_failed(&self) -> bool {
        matches!(self, CellOutcome::Failed { .. })
    }

    /// Converts the outcome into the uniform per-cell record: the healthy
    /// report unchanged, or the typed placeholder from [`failed_report`].
    pub fn into_report(self, estimator: &str, seed: u64) -> MethodReport {
        match self {
            CellOutcome::Completed(report) => report,
            CellOutcome::Failed { reason, attempts } => {
                failed_report(estimator, seed, CellFailure { reason, attempts })
            }
        }
    }
}

/// Builds the placeholder [`MethodReport`] recorded for a quarantined cell:
/// NaN estimate, zero evaluations, not converged, and the typed
/// [`CellFailure`] attached. The diagnostics are [`Diagnostics::MonteCarlo`]
/// (the empty payload), whose [`EstimatorOutcome::warm_hint`] is `None` — so
/// warm-start dependents of a quarantined donor automatically fall back to
/// blind execution.
pub fn failed_report(estimator: &str, seed: u64, failure: CellFailure) -> MethodReport {
    let result = ExtractionResult {
        method: estimator.to_string(),
        failure_probability: f64::NAN,
        standard_error: f64::NAN,
        sigma_level: f64::NAN,
        evaluations: 0,
        sampling_evaluations: 0,
        failures_observed: 0,
        converged: false,
        trace: Vec::new(),
    };
    let outcome = EstimatorOutcome {
        result,
        diagnostics: Diagnostics::MonteCarlo,
    };
    MethodReport {
        estimator: estimator.to_string(),
        seed,
        row: ComparisonRow::from_outcome(&outcome),
        outcome,
        failed: Some(failure),
    }
}

/// Runs one cell under containment: up to `max_attempts` executions of `run`
/// behind [`catch_unwind`], with deterministic fault injection from `faults`
/// applied per attempt. A healthy completion is returned **unmodified** (the
/// report is bit-identical to an uncontained run); exhausting the attempts
/// yields a typed [`CellOutcome::Failed`].
///
/// `run` must be a pure function of the cell's inputs (the invariant every
/// cell already satisfies — see [`crate::analysis::YieldAnalysis::run_cell`]),
/// which is what justifies the `AssertUnwindSafe` below: a panicking attempt
/// leaves no state a retry could observe.
pub fn run_contained<F>(
    problem: &str,
    estimator: &str,
    max_attempts: u32,
    faults: Option<&FaultPlan>,
    run: F,
) -> CellOutcome
where
    F: Fn() -> MethodReport,
{
    let max_attempts = max_attempts.max(1);
    let mut last_reason = None;
    for attempt in 1..=max_attempts {
        let injected = faults
            .and_then(|plan| plan.cell_fault(problem, estimator))
            .filter(|fault| attempt <= fault.attempts)
            .map(|fault| fault.kind);
        if injected == Some(FaultKind::Singular) {
            last_reason = Some(CellFailureReason::NonConvergence {
                detail: format!(
                    "injected singular-matrix non-convergence for cell ({problem}, {estimator})"
                ),
            });
            continue;
        }
        let attempt_result = catch_unwind(AssertUnwindSafe(|| {
            if injected == Some(FaultKind::Panic) {
                // gis-analyze: allow(panic-site, deterministic injected fault, caught by the surrounding catch_unwind)
                panic!("injected worker panic for cell ({problem}, {estimator})");
            }
            run()
        }));
        match attempt_result {
            Err(payload) => {
                last_reason = Some(CellFailureReason::Panic {
                    message: panic_message(payload.as_ref()),
                });
            }
            Ok(mut report) => {
                if injected == Some(FaultKind::Nan) {
                    report.row.failure_probability = f64::NAN;
                    report.outcome.result.failure_probability = f64::NAN;
                }
                if report.outcome.result.failure_probability.is_nan() {
                    last_reason = Some(CellFailureReason::NanMetric {
                        detail: format!(
                            "failure_probability is NaN for cell ({problem}, {estimator})"
                        ),
                    });
                } else {
                    return CellOutcome::Completed(report);
                }
            }
        }
    }
    CellOutcome::Failed {
        // A reason was recorded on every attempt path before reaching here.
        reason: last_reason.unwrap_or(CellFailureReason::NonConvergence {
            detail: "no attempt was made".to_string(),
        }),
        attempts: max_attempts,
    }
}

/// Renders a caught panic payload as a string (the common `&str`/`String`
/// payloads verbatim, anything else as a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Which cell-level fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the cell's worker.
    Panic,
    /// Typed singular-matrix/non-convergence error (the cell never runs).
    Singular,
    /// NaN-poison the cell's failure-probability estimate.
    Nan,
}

/// One cell-level fault directive: which (problem, estimator) cell, which
/// fault, and for how many attempts it fires.
#[derive(Debug, Clone, PartialEq)]
pub struct CellFault {
    /// Problem (scenario) name the fault is keyed on.
    pub problem: String,
    /// Estimator name the fault is keyed on.
    pub estimator: String,
    /// What to inject.
    pub kind: FaultKind,
    /// The fault fires on attempts `1..=attempts` (so `1` with a retry budget
    /// of 2 exercises the retry-then-success path); `u32::MAX` means every
    /// attempt.
    pub attempts: u32,
}

/// Nth-frame socket-drop directive for the serve wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropFrame {
    /// 1-based reply-frame index (per connection, after the `Hello` banner)
    /// at which the server tears the frame and drops the socket.
    pub nth: u64,
    /// Total number of drops across the server's lifetime; once spent, the
    /// fault disarms (so a reconnecting client can finish the job).
    pub times: u64,
}

/// A deterministic fault-injection schedule. Off by default; see the
/// [module documentation](self) for the directive grammar and [`global`] for
/// the process-wide env-driven instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Cell-level faults (panic / singular / NaN), keyed by cell names.
    pub cell_faults: Vec<CellFault>,
    /// Tear the `n`-th (1-based) checkpoint/journal line append mid-line.
    pub torn_journal_line: Option<u64>,
    /// Drop the socket at the `n`-th reply frame of a connection.
    pub drop_frame: Option<DropFrame>,
}

impl FaultPlan {
    /// Parses a comma-separated directive list (the `GIS_FAULTS` grammar).
    /// Whitespace around directives is ignored; an empty string parses to the
    /// empty (no-fault) plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            let mut parts = directive.splitn(2, ':');
            let head = parts.next().unwrap_or("");
            let rest = parts
                .next()
                .ok_or_else(|| format!("fault directive `{directive}` is missing an argument"))?;
            match head {
                "panic" | "singular" | "nan" => {
                    let kind = match head {
                        "panic" => FaultKind::Panic,
                        "singular" => FaultKind::Singular,
                        _ => FaultKind::Nan,
                    };
                    plan.cell_faults
                        .push(parse_cell_fault(directive, kind, rest)?);
                }
                "torn-journal" => {
                    let n: u64 = rest.parse().map_err(|_| {
                        format!("fault directive `{directive}`: line number must be an integer")
                    })?;
                    plan.torn_journal_line = Some(n);
                }
                "drop-frame" => {
                    let mut args = rest.splitn(2, ':');
                    let nth: u64 = args.next().unwrap_or("").parse().map_err(|_| {
                        format!("fault directive `{directive}`: frame number must be an integer")
                    })?;
                    let times: u64 = match args.next() {
                        Some(times) => times.parse().map_err(|_| {
                            format!("fault directive `{directive}`: drop count must be an integer")
                        })?,
                        None => 1,
                    };
                    plan.drop_frame = Some(DropFrame { nth, times });
                }
                _ => return Err(format!("unknown fault directive `{directive}`")),
            }
        }
        Ok(plan)
    }

    /// Parses the `GIS_FAULTS` environment variable; `None` when unset or
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics on a malformed schedule — an invalid injection spec is operator
    /// error and failing fast beats silently running fault-free.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var(FAULTS_ENV_VAR).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            // gis-analyze: allow(panic-site, malformed GIS_FAULTS is operator error; failing fast beats silently running fault-free)
            Err(e) => panic!("invalid {FAULTS_ENV_VAR}: {e}"),
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.cell_faults.is_empty() && self.torn_journal_line.is_none() && self.drop_frame.is_none()
    }

    /// The cell-level fault keyed on `(problem, estimator)`, if any.
    pub fn cell_fault(&self, problem: &str, estimator: &str) -> Option<&CellFault> {
        self.cell_faults
            .iter()
            .find(|f| f.problem == problem && f.estimator == estimator)
    }

    /// Whether the `line`-th (1-based) journal append should be torn.
    pub fn tears_journal_line(&self, line: u64) -> bool {
        self.torn_journal_line == Some(line)
    }
}

fn parse_cell_fault(directive: &str, kind: FaultKind, rest: &str) -> Result<CellFault, String> {
    let mut args = rest.splitn(2, ':');
    let cell = args.next().unwrap_or("");
    let attempts = match args.next() {
        Some(k) => k.parse().map_err(|_| {
            format!("fault directive `{directive}`: attempt count must be an integer")
        })?,
        None => u32::MAX,
    };
    let (problem, estimator) = cell.split_once('/').ok_or_else(|| {
        format!("fault directive `{directive}`: cell must be `<problem>/<estimator>`")
    })?;
    if problem.is_empty() || estimator.is_empty() {
        return Err(format!(
            "fault directive `{directive}`: cell must name both a problem and an estimator"
        ));
    }
    Ok(CellFault {
        problem: problem.to_string(),
        estimator: estimator.to_string(),
        kind,
        attempts,
    })
}

/// The process-wide fault plan from `GIS_FAULTS`, parsed once and cached.
/// `None` (the overwhelmingly common case) costs one atomic load per call, so
/// disabled injection compiles down to a no-op on the hot path.
pub fn global() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(FaultPlan::from_env).as_ref()
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected 0xEDB88320) over
/// `bytes` — hand-rolled and std-only, used to checksum checkpoint/journal
/// lines so torn writes are detected by checksum rather than only by JSON
/// parse failure.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn parses_full_directive_list() {
        let plan = FaultPlan::parse(
            "panic:p/gradient-is, singular:q/monte-carlo:1, nan:r/sss, torn-journal:5, drop-frame:3:2",
        )
        .unwrap();
        assert_eq!(plan.cell_faults.len(), 3);
        let panic_fault = plan.cell_fault("p", "gradient-is").unwrap();
        assert_eq!(panic_fault.kind, FaultKind::Panic);
        assert_eq!(panic_fault.attempts, u32::MAX);
        let singular = plan.cell_fault("q", "monte-carlo").unwrap();
        assert_eq!(singular.kind, FaultKind::Singular);
        assert_eq!(singular.attempts, 1);
        assert_eq!(plan.cell_fault("r", "sss").unwrap().kind, FaultKind::Nan);
        assert!(plan.tears_journal_line(5));
        assert!(!plan.tears_journal_line(4));
        assert_eq!(plan.drop_frame, Some(DropFrame { nth: 3, times: 2 }));
        assert!(plan.cell_fault("p", "monte-carlo").is_none());
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn malformed_directives_are_rejected() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic:no-slash").is_err());
        assert!(FaultPlan::parse("panic:/e").is_err());
        assert!(FaultPlan::parse("panic:p/").is_err());
        assert!(FaultPlan::parse("torn-journal:x").is_err());
        assert!(FaultPlan::parse("drop-frame:1:y").is_err());
        assert!(FaultPlan::parse("meteor-strike:now").is_err());
    }

    fn healthy_report() -> MethodReport {
        let result = ExtractionResult {
            method: "unit".to_string(),
            failure_probability: 1e-6,
            standard_error: 1e-7,
            sigma_level: 4.75,
            evaluations: 100,
            sampling_evaluations: 100,
            failures_observed: 10,
            converged: true,
            trace: Vec::new(),
        };
        let outcome = EstimatorOutcome {
            result,
            diagnostics: Diagnostics::MonteCarlo,
        };
        MethodReport {
            estimator: "unit".to_string(),
            seed: 7,
            row: ComparisonRow::from_outcome(&outcome),
            outcome,
            failed: None,
        }
    }

    #[test]
    fn healthy_cell_passes_through_unmodified() {
        let reference = healthy_report();
        let outcome = run_contained("p", "unit", 2, None, healthy_report);
        match outcome {
            CellOutcome::Completed(report) => assert_eq!(report, reference),
            CellOutcome::Failed { .. } => panic!("healthy cell must not fail"),
        }
    }

    #[test]
    fn injected_panic_is_contained_and_typed() {
        let plan = FaultPlan::parse("panic:p/unit").unwrap();
        let outcome = run_contained("p", "unit", 2, Some(&plan), healthy_report);
        match outcome {
            CellOutcome::Failed { reason, attempts } => {
                assert_eq!(attempts, 2);
                match reason {
                    CellFailureReason::Panic { message } => {
                        assert!(message.contains("injected worker panic"))
                    }
                    other => panic!("expected a panic reason, got {other:?}"),
                }
            }
            CellOutcome::Completed(_) => panic!("injected panic must quarantine the cell"),
        }
    }

    #[test]
    fn real_panic_is_contained_with_its_message() {
        let outcome = run_contained("p", "unit", 1, None, || -> MethodReport {
            panic!("the estimator exploded");
        });
        match outcome {
            CellOutcome::Failed { reason, attempts } => {
                assert_eq!(attempts, 1);
                assert_eq!(
                    reason,
                    CellFailureReason::Panic {
                        message: "the estimator exploded".to_string()
                    }
                );
            }
            CellOutcome::Completed(_) => panic!("panicking cell must quarantine"),
        }
    }

    #[test]
    fn bounded_injection_exercises_retry_then_success() {
        // The fault fires on attempt 1 only; the retry completes with a
        // report bit-identical to the fault-free reference.
        let plan = FaultPlan::parse("panic:p/unit:1").unwrap();
        let outcome = run_contained("p", "unit", 2, Some(&plan), healthy_report);
        match outcome {
            CellOutcome::Completed(report) => assert_eq!(report, healthy_report()),
            CellOutcome::Failed { .. } => panic!("retry after a bounded fault must succeed"),
        }
    }

    #[test]
    fn singular_injection_is_typed_non_convergence() {
        let plan = FaultPlan::parse("singular:p/unit").unwrap();
        let outcome = run_contained("p", "unit", 3, Some(&plan), healthy_report);
        match outcome {
            CellOutcome::Failed { reason, attempts } => {
                assert_eq!(attempts, 3);
                assert!(matches!(reason, CellFailureReason::NonConvergence { .. }));
            }
            CellOutcome::Completed(_) => panic!("singular injection must quarantine"),
        }
    }

    #[test]
    fn nan_injection_and_detection_are_typed() {
        let plan = FaultPlan::parse("nan:p/unit").unwrap();
        let outcome = run_contained("p", "unit", 2, Some(&plan), healthy_report);
        assert!(outcome.is_failed());
        match outcome {
            CellOutcome::Failed { reason, .. } => {
                assert!(matches!(reason, CellFailureReason::NanMetric { .. }))
            }
            CellOutcome::Completed(_) => unreachable!(),
        }
        // A genuinely NaN-poisoned (non-injected) estimate is caught too.
        let poisoned = || {
            let mut report = healthy_report();
            report.outcome.result.failure_probability = f64::NAN;
            report
        };
        assert!(run_contained("p", "unit", 1, None, poisoned).is_failed());
    }

    #[test]
    fn failed_report_placeholder_is_inert() {
        let failure = CellFailure {
            reason: CellFailureReason::Panic {
                message: "boom".to_string(),
            },
            attempts: 2,
        };
        let report = failed_report("gradient-is", 99, failure.clone());
        assert_eq!(report.estimator, "gradient-is");
        assert_eq!(report.seed, 99);
        assert_eq!(report.failed, Some(failure));
        assert!(report.row.failure_probability.is_nan());
        assert!(!report.row.converged);
        assert_eq!(report.row.evaluations, 0);
        // The placeholder donates no warm-start hint: dependents of a
        // quarantined donor fall back to blind execution automatically.
        assert!(report.outcome.warm_hint().is_none());
        // The placeholder round-trips through the checkpoint format.
        let json = serde_json::to_string(&report).unwrap();
        let back: MethodReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn failure_reasons_render() {
        let reasons = [
            CellFailureReason::Panic {
                message: "m".into(),
            },
            CellFailureReason::NonConvergence { detail: "d".into() },
            CellFailureReason::NanMetric { detail: "d".into() },
            CellFailureReason::DeadlineExceeded { detail: "d".into() },
        ];
        let rendered: Vec<String> = reasons.iter().map(|r| r.to_string()).collect();
        assert!(rendered[0].contains("panic"));
        assert!(rendered[1].contains("non-convergence"));
        assert!(rendered[2].contains("NaN"));
        assert!(rendered[3].contains("deadline"));
    }
}
