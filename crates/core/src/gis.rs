//! Gradient Importance Sampling (GIS) — the paper's proposed methodology.
//!
//! The method has three ingredients:
//!
//! 1. **Gradient MPFP search** ([`crate::mpfp`]): finite-difference gradients
//!    of the simulated dynamic characteristic drive a damped HL–RF iteration to
//!    the most-probable failure point `z*`, typically in a few tens of
//!    simulator calls — orders of magnitude cheaper than the blind presampling
//!    used by earlier minimum-norm and spherical methods.
//! 2. **Defensive mean-shift proposal**: a Gaussian mixture
//!    `(1 − ε)·N(z*, I) + ε·N(0, I)` centres the sampling effort on the failure
//!    region while the nominal component bounds the importance weights,
//!    protecting the estimator when `z*` is imperfect (curved or multiple
//!    failure regions).
//! 3. **Gradient-informed adaptation**: as failing samples accumulate, the
//!    shifted component is re-centred on their weighted mean, refining the
//!    proposal without further gradient evaluations.
//!
//! The output is the failure probability with confidence information, the
//! equivalent sigma level, and the full cost accounting used by the
//! evaluation tables.

use crate::estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome, WarmStart};
use crate::exec::ExecutionConfig;
use crate::importance::{
    shifts_disagree, ImportanceSamplingConfig, IsAccumulator, IsDiagnostics, Proposal,
};
use crate::model::FailureProblem;
use crate::mpfp::{GradientMpfpSearch, MpfpConfig};
use crate::result::{ConvergencePoint, ExtractionResult};
use gis_linalg::Vector;
use gis_stats::RngStream;
use serde::{Deserialize, Serialize};

/// Configuration of the Gradient Importance Sampling estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GisConfig {
    /// Configuration of the gradient MPFP search phase.
    pub mpfp: MpfpConfig,
    /// Configuration of the sampling phase.
    pub sampling: ImportanceSamplingConfig,
    /// Weight of the nominal density in the defensive mixture (0 disables the
    /// defensive component and uses a pure mean shift).
    pub defensive_fraction: f64,
    /// Weight of an additional "bridge" component centred at
    /// `bridge_position × shift`. Useful when the failure boundary is strongly
    /// curved or steep (e.g. SRAM write contention), where the region between
    /// the nominal point and the MPFP carries non-negligible probability mass;
    /// 0 disables the component.
    pub bridge_fraction: f64,
    /// Relative position of the bridge component along the shift direction
    /// (only used when `bridge_fraction > 0`).
    pub bridge_position: f64,
    /// Re-centre the shifted component on the weighted mean of observed
    /// failures every `recenter_every_batches` batches.
    pub adaptive_recentering: bool,
    /// Batches between re-centring steps.
    pub recenter_every_batches: usize,
    /// Minimum number of failing samples required before a re-centring step.
    pub recenter_min_failures: u64,
}

impl Default for GisConfig {
    fn default() -> Self {
        GisConfig {
            mpfp: MpfpConfig::default(),
            sampling: ImportanceSamplingConfig::default(),
            defensive_fraction: 0.1,
            bridge_fraction: 0.0,
            bridge_position: 0.75,
            adaptive_recentering: true,
            recenter_every_batches: 5,
            recenter_min_failures: 30,
        }
    }
}

impl GisConfig {
    fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.defensive_fraction) {
            return Err(format!(
                "defensive fraction must be in [0, 1), got {}",
                self.defensive_fraction
            ));
        }
        if !(0.0..1.0).contains(&self.bridge_fraction)
            || self.defensive_fraction + self.bridge_fraction >= 1.0
        {
            return Err(format!(
                "bridge fraction must be in [0, 1) and defensive + bridge must stay below 1, got {} + {}",
                self.defensive_fraction, self.bridge_fraction
            ));
        }
        if self.bridge_fraction > 0.0 && !(0.0..=1.0).contains(&self.bridge_position) {
            return Err(format!(
                "bridge position must be in [0, 1], got {}",
                self.bridge_position
            ));
        }
        if self.adaptive_recentering && self.recenter_every_batches == 0 {
            return Err("recenter_every_batches must be at least 1".to_string());
        }
        self.sampling.validate()
    }
}

/// The Gradient Importance Sampling estimator.
#[derive(Debug, Clone, Default)]
pub struct GradientImportanceSampling {
    config: GisConfig,
    exec: ExecutionConfig,
}

impl GradientImportanceSampling {
    /// Creates the estimator with the given configuration (execution defaults
    /// to [`ExecutionConfig::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn new(config: GisConfig) -> Self {
        config.validate().expect("invalid GIS configuration");
        GradientImportanceSampling {
            config,
            exec: ExecutionConfig::default(),
        }
    }

    /// Sets the parallel-execution configuration (thread count changes
    /// wall-clock only, never the estimate).
    pub fn with_execution(mut self, exec: ExecutionConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GisConfig {
        &self.config
    }

    /// The parallel-execution configuration in use.
    pub fn execution(&self) -> ExecutionConfig {
        self.exec
    }

    fn proposal_for_shift(&self, shift: Vector) -> Proposal {
        if self.config.bridge_fraction > 0.0 {
            let bridge = shift.scaled(self.config.bridge_position);
            return Proposal::bridged_mixture(
                shift,
                bridge,
                self.config.bridge_fraction,
                self.config.defensive_fraction,
            );
        }
        if self.config.defensive_fraction > 0.0 {
            Proposal::defensive_mixture(shift, self.config.defensive_fraction)
        } else {
            Proposal::shifted(shift)
        }
    }
}

/// Detects re-centring oscillation in a shift history: two successive
/// adaptation steps that move in substantially opposing directions. A
/// unimodal failure region pulls the shift monotonically towards its mass
/// centre; large back-and-forth jumps mean the weighted failure mean is
/// alternating between separated failure clusters.
fn shift_history_oscillates(history: &[Vector]) -> bool {
    history.windows(3).any(|w| {
        let d1 = &w[1] - &w[0];
        let d2 = &w[2] - &w[1];
        match d1.dot(&d2) {
            Ok(dot) => dot < 0.0 && d1.norm() > 1.0 && d2.norm() > 1.0,
            Err(_) => false,
        }
    })
}

impl GradientImportanceSampling {
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    fn estimate_inner(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        let dim = problem.dim();
        let executor = self.exec.executor();
        let start_evals = problem.evaluations();

        // An applicable hint is a converged neighbor MPFP of the right
        // dimension; anything else falls back to the blind search.
        let warm_shift = match warm {
            Some(WarmStart::MpfpShift { shift, beta }) => {
                if shift.len() == dim && shift.is_finite() && *beta > 0.0 {
                    Some(shift.clone())
                } else {
                    None
                }
            }
            _ => None,
        };
        let warm_seeded = warm_shift.is_some();

        // Phase 1: gradient search for the most-probable failure point (the
        // finite-difference probes of each iteration run as one batch). A
        // warm hint seeds the iterate at the neighbor's MPFP; the blind path
        // starts from the origin (`search_on` == `search_from_on` at zero).
        let mpfp_search = GradientMpfpSearch::new(self.config.mpfp.clone());
        let mpfp = match warm_shift {
            Some(start) => mpfp_search.search_from_on(problem, start, rng, &executor),
            None => mpfp_search.search_on(problem, rng, &executor),
        };
        let search_evaluations = problem.evaluations() - start_evals;

        // Phase 2: adaptive defensive mean-shift importance sampling.
        let mut shift = mpfp.mpfp.clone();
        let mut shift_history = vec![shift.clone()];
        let mut proposal = self.proposal_for_shift(shift.clone());

        let sampling = &self.config.sampling;
        let mut acc = IsAccumulator::new();
        let mut trace = Vec::new();
        let mut converged = false;
        let mut stop = crate::stopping::StopTracker::new();

        // Weighted sum of failing samples since the last re-centring step.
        let mut failing_weight_sum = 0.0;
        let mut failing_weighted_mean = Vector::zeros(dim);
        let mut failures_since_recenter = 0u64;
        let mut batches_since_recenter = 0usize;

        while acc.samples() < sampling.max_samples {
            let batch = sampling
                .batch_size
                .min(sampling.max_samples - acc.samples());
            // Generate-batch (sequential draws, fixed order) → evaluate-batch
            // (executor worker threads) → reduce (sequential, sample order).
            let mut points = Vec::with_capacity(batch as usize);
            let mut weights = Vec::with_capacity(batch as usize);
            for _ in 0..batch {
                let z = proposal.sample(rng);
                weights.push(proposal.importance_weight(&z));
                points.push(z);
            }
            let outcomes = problem.is_failure_batch_on(&executor, &points);
            for ((z, weight), failed) in points.iter().zip(weights).zip(outcomes) {
                acc.push(weight, failed);
                if failed && weight.is_finite() && weight > 0.0 {
                    failing_weight_sum += weight;
                    failing_weighted_mean = failing_weighted_mean
                        .axpy(weight, z)
                        .expect("dimension fixed");
                    failures_since_recenter += 1;
                }
            }
            batches_since_recenter += 1;

            trace.push(ConvergencePoint {
                evaluations: search_evaluations + acc.samples(),
                estimate: acc.estimate(),
                relative_error: acc.relative_error(),
            });

            // Corrected rule: effective (weight-adjusted) failures, so a
            // degenerate-weight run cannot stop on an overstated count.
            let stop_failures = if sampling.corrected_stopping {
                acc.effective_failures()
            } else {
                acc.failures() as f64
            };
            if stop.check(
                stop_failures,
                sampling.min_failures,
                acc.relative_error(),
                sampling.target_relative_error,
                sampling.corrected_stopping,
            ) {
                converged = true;
                break;
            }

            // Gradient-informed adaptation: re-centre the shifted component on
            // the weighted mean of the failures observed so far.
            if self.config.adaptive_recentering
                && batches_since_recenter >= self.config.recenter_every_batches
                && failures_since_recenter >= self.config.recenter_min_failures
                && failing_weight_sum > 0.0
            {
                let new_shift = failing_weighted_mean.scaled(1.0 / failing_weight_sum);
                if new_shift.is_finite() && new_shift.norm() > 1e-9 {
                    shift = new_shift;
                    proposal = self.proposal_for_shift(shift.clone());
                    shift_history.push(shift.clone());
                }
                batches_since_recenter = 0;
                failures_since_recenter = 0;
            }
        }

        let estimate = acc.estimate();
        let result = ExtractionResult {
            method: "gradient-is".to_string(),
            failure_probability: estimate,
            standard_error: crate::stopping::reported_standard_error(
                acc.standard_error(),
                acc.effective_failures(),
                converged,
                sampling.corrected_stopping,
            ),
            sigma_level: ExtractionResult::sigma_from_probability(estimate),
            evaluations: problem.evaluations() - start_evals,
            sampling_evaluations: acc.samples(),
            failures_observed: acc.failures(),
            converged,
            trace,
        };
        // Multimodality heuristics: (a) a warm-seeded search that converged
        // somewhere far from the donor's MPFP means the two grid neighbors
        // see different dominant failure regions; (b) large opposing
        // re-centring jumps mean the failure mass itself is split. Either
        // way a single mean-shift proposal may be missing a mode.
        let warm_disagrees = match warm {
            Some(WarmStart::MpfpShift { shift: hint, .. }) => {
                warm_seeded
                    && mpfp.converged
                    && shifts_disagree(hint.as_slice(), mpfp.mpfp.as_slice())
            }
            _ => false,
        };
        let multimodal_suspected = warm_disagrees || shift_history_oscillates(&shift_history);
        let diagnostics = IsDiagnostics {
            effective_sample_size: acc.effective_sample_size(),
            max_weight: acc.max_weight(),
            shift: Some(shift.as_slice().to_vec()),
            shift_norm: Some(shift.norm()),
            multimodal_suspected,
        };
        EstimatorOutcome {
            result,
            diagnostics: Diagnostics::GradientImportanceSampling {
                is: diagnostics,
                mpfp,
                shift_history,
            },
        }
    }
}

impl Estimator for GradientImportanceSampling {
    fn name(&self) -> &str {
        "gradient-is"
    }

    fn estimate(&self, problem: &FailureProblem, rng: &mut RngStream) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, None)
    }

    fn estimate_warm(
        &self,
        problem: &FailureProblem,
        rng: &mut RngStream,
        warm: Option<&WarmStart>,
    ) -> EstimatorOutcome {
        self.estimate_inner(problem, rng, warm)
    }

    fn configure(&mut self, policy: &ConvergencePolicy) {
        self.config.sampling.max_samples = policy.max_evaluations.max(1);
        self.config.sampling.target_relative_error = policy.target_relative_error;
        self.config.sampling.min_failures = policy.min_failures;
    }

    fn set_execution(&mut self, exec: ExecutionConfig) {
        self.exec = exec;
    }

    fn effective_execution(&self) -> ExecutionConfig {
        self.exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState, QuadraticLimitState};

    fn quick_config() -> GisConfig {
        GisConfig {
            sampling: ImportanceSamplingConfig {
                corrected_stopping: true,
                max_samples: 30_000,
                batch_size: 1_000,
                target_relative_error: 0.05,
                min_failures: 50,
            },
            ..GisConfig::default()
        }
    }

    #[test]
    fn recovers_linear_tail_probability_at_high_sigma() {
        for beta in [4.0_f64, 5.0, 6.0] {
            let ls =
                LinearLimitState::new(Vector::from_slice(&[1.0, -0.5, 2.0, 0.3, 1.0, -1.0]), beta);
            let exact = ls.exact_failure_probability();
            let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
            let gis = GradientImportanceSampling::new(quick_config());
            let mut rng = RngStream::from_seed(100 + beta as u64);
            let outcome = gis.estimate(&problem, &mut rng);
            assert!(
                outcome.result.converged,
                "GIS did not converge at beta {beta}"
            );
            let rel = (outcome.result.failure_probability - exact).abs() / exact;
            assert!(
                rel < 0.15,
                "GIS estimate off by {rel} at beta {beta}: {:e} vs {exact:e}",
                outcome.result.failure_probability
            );
            assert!((outcome.result.sigma_level - beta).abs() < 0.1);
            // The whole extraction must be enormously cheaper than brute force.
            let mc_cost = crate::montecarlo::required_samples(exact, 0.1);
            assert!(
                (outcome.result.evaluations as f64) < mc_cost / 50.0,
                "GIS used {} evaluations, brute force needs {mc_cost:.0}",
                outcome.result.evaluations
            );
            assert!(outcome.mpfp().unwrap().beta > beta - 0.3);
            assert!(outcome.is_diagnostics().unwrap().shift_norm.unwrap() > beta - 0.5);
            assert!(!outcome.shift_history().unwrap().is_empty());
        }
    }

    #[test]
    fn handles_curved_boundary() {
        let q = QuadraticLimitState::new(6, 4.2, 0.06);
        let reference = q.reference_failure_probability();
        let problem = FailureProblem::from_model(q, QuadraticLimitState::spec());
        let gis = GradientImportanceSampling::new(quick_config());
        let mut rng = RngStream::from_seed(7);
        let outcome = gis.estimate(&problem, &mut rng);
        let rel = (outcome.result.failure_probability - reference).abs() / reference;
        assert!(
            rel < 0.25,
            "curved-boundary estimate off by {rel}: {:e} vs {reference:e}",
            outcome.result.failure_probability
        );
    }

    #[test]
    fn pure_mean_shift_variant_also_works() {
        let ls = LinearLimitState::along_first_axis(4, 4.5);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let config = GisConfig {
            defensive_fraction: 0.0,
            adaptive_recentering: false,
            ..quick_config()
        };
        let gis = GradientImportanceSampling::new(config);
        let mut rng = RngStream::from_seed(13);
        let outcome = gis.estimate(&problem, &mut rng);
        let rel = (outcome.result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.15, "pure mean shift off by {rel}");
        assert_eq!(outcome.shift_history().unwrap().len(), 1);
    }

    #[test]
    fn bridged_mixture_variant_remains_unbiased() {
        let ls = LinearLimitState::along_first_axis(5, 4.5);
        let exact = ls.exact_failure_probability();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let config = GisConfig {
            bridge_fraction: 0.25,
            bridge_position: 0.75,
            ..quick_config()
        };
        let gis = GradientImportanceSampling::new(config);
        let mut rng = RngStream::from_seed(77);
        let outcome = gis.estimate(&problem, &mut rng);
        let rel = (outcome.result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.2, "bridged GIS off by {rel}");
    }

    #[test]
    #[should_panic(expected = "invalid GIS configuration")]
    fn bridge_fraction_validation() {
        let _ = GradientImportanceSampling::new(GisConfig {
            bridge_fraction: 0.95,
            defensive_fraction: 0.1,
            ..GisConfig::default()
        });
    }

    #[test]
    fn adaptation_records_shift_history() {
        // Start the search on a problem whose MPFP the search slightly
        // misses (curved boundary), so re-centring has something to do.
        let q = QuadraticLimitState::new(4, 4.0, 0.1);
        let problem = FailureProblem::from_model(q, QuadraticLimitState::spec());
        let config = GisConfig {
            recenter_every_batches: 2,
            recenter_min_failures: 10,
            ..quick_config()
        };
        let gis = GradientImportanceSampling::new(config);
        let mut rng = RngStream::from_seed(21);
        let outcome = gis.estimate(&problem, &mut rng);
        let shift_history = outcome.shift_history().unwrap();
        assert!(shift_history.len() >= 2, "no adaptation happened");
        for shift in shift_history {
            assert!(shift.is_finite());
        }
    }

    #[test]
    fn cost_accounting_is_consistent() {
        let ls = LinearLimitState::along_first_axis(3, 4.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let gis = GradientImportanceSampling::new(quick_config());
        let mut rng = RngStream::from_seed(5);
        let outcome = gis.estimate(&problem, &mut rng);
        let mpfp = outcome.mpfp().unwrap();
        assert_eq!(problem.evaluations(), outcome.result.evaluations);
        assert!(outcome.result.evaluations >= outcome.result.sampling_evaluations);
        assert_eq!(
            outcome.result.evaluations - outcome.result.sampling_evaluations,
            mpfp.evaluations
        );
        // Trace evaluations are cumulative and include the search cost.
        assert!(outcome.result.trace[0].evaluations >= mpfp.evaluations);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(3, 3.5);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let reference = GradientImportanceSampling::new(quick_config())
            .with_execution(ExecutionConfig::serial())
            .estimate(&problem.fork(), &mut RngStream::from_seed(33));
        for threads in [2, 8] {
            let parallel = GradientImportanceSampling::new(quick_config())
                .with_execution(ExecutionConfig::with_threads(threads))
                .estimate(&problem.fork(), &mut RngStream::from_seed(33));
            assert_eq!(parallel.result, reference.result);
            assert_eq!(parallel.diagnostics, reference.diagnostics);
        }
    }

    #[test]
    #[should_panic(expected = "invalid GIS configuration")]
    fn invalid_config_rejected() {
        let _ = GradientImportanceSampling::new(GisConfig {
            defensive_fraction: 1.5,
            ..GisConfig::default()
        });
    }
}
