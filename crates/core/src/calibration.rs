//! Statistical calibration harness: are the reported error bars honest?
//!
//! Every estimator in this crate reports a failure probability *and* a
//! standard error, and every table of the evaluation quotes confidence
//! intervals built from them. This module measures whether those intervals
//! deserve their nominal level: it runs `N` independent replications of each
//! [`Estimator`] on each [`BenchmarkProblem`] (whose true probability is
//! known in closed form) and reduces them to
//!
//! * **empirical coverage** — the fraction of replications whose reported
//!   confidence interval contains the truth, tested against the *binomial
//!   acceptance band* of the nominal level
//!   ([`gis_stats::binomial_acceptance_band`]): with honest error bars the
//!   covered count is `Binomial(N, level)`, so landing outside the band
//!   convicts the method (at the band's `alpha`) of over- or
//!   under-confidence;
//! * **relative bias** — `(mean(p̂) − p) / p`;
//! * **relative RMSE** — the actual accuracy achieved, independent of what
//!   the method claims;
//! * **sample efficiency** — mean evaluations spent and the empirical figure
//!   of merit `1 / (rRMSE² · N̄_evals)`, comparable across methods.
//!
//! Replications are dispatched onto the worker threads of a matrix
//! [`crate::exec::Executor`]; every replication derives its own RNG seed from the master
//! seed, the problem name, the estimator name and the replication index —
//! order-independently — so the report is **bit-identical at any thread
//! count** (and under any `GIS_THREADS`).
//!
//! ```
//! use gis_core::calibration::Calibrator;
//! use gis_core::problems::BenchmarkProblem;
//! use gis_core::{ConvergencePolicy, MonteCarlo, MonteCarloConfig};
//!
//! let report = Calibrator::new()
//!     .master_seed(7)
//!     .replications(20)
//!     .convergence_policy(ConvergencePolicy::with_budget(4_000))
//!     .problem(BenchmarkProblem::linear(4, 2.5))
//!     .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
//!     .run();
//! let row = &report.rows[0];
//! assert_eq!(row.replications, 20);
//! assert!(row.coverage >= 0.0 && row.coverage <= 1.0);
//! ```

use crate::analysis::fnv1a;
use crate::estimator::{ConvergencePolicy, Estimator};
use crate::exec::ExecutionConfig;
use crate::problems::BenchmarkProblem;
use gis_stats::{binomial_acceptance_band, normal, RngStream};
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer used to mix the replication index into the seed
/// derivation without disturbing the name hashes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One replication of one estimator on one problem, reduced to the fields
/// the calibration statistics need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Replication {
    /// The derived RNG seed (reproduces this replication in isolation).
    pub seed: u64,
    /// Reported failure probability.
    pub estimate: f64,
    /// Reported standard error.
    pub standard_error: f64,
    /// Total metric evaluations spent.
    pub evaluations: u64,
    /// Whether the method reported convergence.
    pub converged: bool,
    /// Whether the reported confidence interval covered the true probability.
    /// A replication without a usable error bar (non-finite standard error,
    /// e.g. no failures observed) never covers.
    pub covered: bool,
}

/// Calibration statistics of one (problem, estimator) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationRow {
    /// Benchmark problem name.
    pub problem: String,
    /// Estimator name.
    pub estimator: String,
    /// True failure probability of the problem.
    pub exact_probability: f64,
    /// Number of replications run.
    pub replications: u32,
    /// Replications whose reported confidence interval covered the truth.
    pub covered: u32,
    /// Empirical coverage `covered / replications`.
    pub coverage: f64,
    /// Lower edge of the binomial acceptance band (as a proportion).
    pub band_lower: f64,
    /// Upper edge of the binomial acceptance band (as a proportion).
    pub band_upper: f64,
    /// Whether the empirical coverage lies within the acceptance band —
    /// the honesty verdict of this cell.
    pub within_band: bool,
    /// Mean of the reported estimates.
    pub mean_estimate: f64,
    /// Relative bias `(mean(p̂) − p) / p`.
    pub relative_bias: f64,
    /// Relative root-mean-square error `rms(p̂ − p) / p` — the accuracy the
    /// method actually achieved.
    pub relative_rmse: f64,
    /// Mean of the *reported* relative standard errors (`se/p̂` over the
    /// replications with a usable error bar); compare against
    /// `relative_rmse` to see whether the method's self-assessment matches
    /// reality.
    pub mean_reported_relative_error: f64,
    /// Fraction of replications that reported convergence.
    pub converged_fraction: f64,
    /// Replications that produced a zero estimate (no failure observed).
    pub zero_estimates: u32,
    /// Mean metric evaluations spent per replication.
    pub mean_evaluations: f64,
    /// Empirical figure of merit `1 / (relative_rmse² · mean_evaluations)`:
    /// accuracy actually delivered per simulator call. `0` when the RMSE is
    /// not finite or no evaluations were spent.
    pub empirical_figure_of_merit: f64,
}

impl CalibrationRow {
    /// Signed distance of the covered count from the nearest band edge, in
    /// replications (positive inside the band). Useful for spotting cells
    /// that pass with no margin.
    pub fn band_margin(&self) -> f64 {
        let n = self.replications as f64;
        let lo = self.band_lower * n;
        let hi = self.band_upper * n;
        (self.covered as f64 - lo).min(hi - self.covered as f64)
    }
}

/// The full output of a [`Calibrator`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Master seed every replication seed was derived from.
    pub master_seed: u64,
    /// Nominal confidence level of the tested intervals (e.g. `0.9`).
    pub confidence_level: f64,
    /// Tail mass of the binomial acceptance band.
    pub band_alpha: f64,
    /// Replications per (problem, estimator) cell.
    pub replications: u32,
    /// One row per (problem, estimator) cell, problems outermost, both in
    /// registration order.
    pub rows: Vec<CalibrationRow>,
}

impl CalibrationReport {
    /// Looks up the row of a (problem, estimator) cell.
    pub fn row(&self, problem: &str, estimator: &str) -> Option<&CalibrationRow> {
        self.rows
            .iter()
            .find(|r| r.problem == problem && r.estimator == estimator)
    }

    /// `true` when every cell's empirical coverage lies within its binomial
    /// acceptance band — the pass verdict of the calibration gate.
    pub fn all_within_band(&self) -> bool {
        self.rows.iter().all(|r| r.within_band)
    }

    /// Rows whose coverage falls outside the acceptance band.
    pub fn violations(&self) -> Vec<&CalibrationRow> {
        self.rows.iter().filter(|r| !r.within_band).collect()
    }

    /// The smallest [`CalibrationRow::band_margin`] across all cells.
    pub fn worst_band_margin(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.band_margin())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Derives the deterministic seed of one calibration replication from the
/// master seed, both names and the replication index. Like
/// [`crate::YieldAnalysis::derived_seed`] the derivation hashes the names, so
/// it is independent of registration order and of the replication count of
/// any other cell.
pub fn replication_seed(
    master_seed: u64,
    problem_name: &str,
    estimator_name: &str,
    replication: u32,
) -> u64 {
    let mix = fnv1a(problem_name)
        ^ fnv1a(estimator_name).rotate_left(17)
        ^ splitmix64(0xC2B2_AE3D_27D4_EB4F ^ replication as u64);
    RngStream::from_seed(master_seed).split(mix).seed()
}

/// Builder-style calibration driver: registers benchmark problems and
/// estimators, runs the replication matrix, reduces it to a
/// [`CalibrationReport`]. See the [module documentation](self).
#[derive(Default)]
pub struct Calibrator {
    problems: Vec<BenchmarkProblem>,
    estimators: Vec<Box<dyn Estimator>>,
    master_seed: u64,
    replications: u32,
    confidence_level: f64,
    band_alpha: f64,
    policy: Option<ConvergencePolicy>,
    execution: Option<ExecutionConfig>,
    matrix: ExecutionConfig,
}

impl Calibrator {
    /// Creates an empty calibrator: 100 replications, 90% nominal intervals,
    /// an acceptance band with `alpha = 0.002`, matrix threads from
    /// `GIS_THREADS`.
    pub fn new() -> Self {
        Calibrator {
            problems: Vec::new(),
            estimators: Vec::new(),
            master_seed: 0,
            replications: 100,
            confidence_level: 0.9,
            band_alpha: 0.002,
            policy: None,
            execution: None,
            matrix: ExecutionConfig::default(),
        }
    }

    /// Sets the master seed all replication seeds derive from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the number of replications per (problem, estimator) cell.
    pub fn replications(mut self, replications: u32) -> Self {
        self.replications = replications;
        self
    }

    /// Sets the nominal confidence level whose coverage is tested
    /// (default 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not in `(0, 1)`.
    pub fn confidence_level(mut self, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0, 1)"
        );
        self.confidence_level = level;
        self
    }

    /// Sets the tail mass `alpha` of the binomial acceptance band
    /// (default 0.002).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1)`.
    pub fn band_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "band alpha must be in (0, 1)");
        self.band_alpha = alpha;
        self
    }

    /// Imposes a uniform budget/stopping policy on every estimator.
    pub fn convergence_policy(mut self, policy: ConvergencePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Imposes one within-estimator parallelism configuration on every
    /// estimator (results are invariant to it by the [`crate::exec`]
    /// contract).
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = Some(execution);
        self
    }

    /// Sets the matrix parallelism used to dispatch replications (results
    /// are invariant to it; wall-clock is not).
    pub fn matrix(mut self, matrix: ExecutionConfig) -> Self {
        self.matrix = matrix;
        self
    }

    /// Registers one benchmark problem.
    pub fn problem(mut self, problem: BenchmarkProblem) -> Self {
        self.problems.push(problem);
        self
    }

    /// Registers several benchmark problems (e.g.
    /// [`BenchmarkProblem::standard_suite`]).
    pub fn problems(mut self, problems: Vec<BenchmarkProblem>) -> Self {
        self.problems.extend(problems);
        self
    }

    /// Registers one estimator.
    pub fn estimator(mut self, estimator: Box<dyn Estimator>) -> Self {
        self.estimators.push(estimator);
        self
    }

    /// Registers several estimators (e.g. [`crate::standard_estimators`]).
    pub fn estimators(mut self, estimators: Vec<Box<dyn Estimator>>) -> Self {
        self.estimators.extend(estimators);
        self
    }

    /// Runs the full replication matrix and reduces it to a report.
    ///
    /// Replications are dispatched as independent tasks onto the matrix
    /// executor; each derives its seed via [`replication_seed`] and runs
    /// against its own [`BenchmarkProblem::fork`], so the report depends
    /// only on the registered configuration — never on scheduling.
    ///
    /// # Panics
    ///
    /// Panics if no problems, no estimators or zero replications are
    /// registered.
    pub fn run(&mut self) -> CalibrationReport {
        assert!(
            !self.problems.is_empty(),
            "Calibrator: no problems registered"
        );
        assert!(
            !self.estimators.is_empty(),
            "Calibrator: no estimators registered"
        );
        assert!(self.replications > 0, "Calibrator: zero replications");
        if let Some(policy) = self.policy {
            for estimator in &mut self.estimators {
                estimator.configure(&policy);
            }
        }
        if let Some(execution) = self.execution {
            for estimator in &mut self.estimators {
                estimator.set_execution(execution);
            }
        }

        let z = normal::quantile(0.5 + self.confidence_level / 2.0);
        let reps = self.replications as usize;
        let estimators = self.estimators.len();
        let total = self.problems.len() * estimators * reps;
        let executor = self.matrix.executor();
        // One flat task per replication: task → (problem, estimator, rep) is
        // a pure function of the index, so the output is deterministic at
        // any matrix thread count.
        let flat: Vec<Replication> = executor.map_tasks(total, |index| {
            let pi = index / (estimators * reps);
            let rest = index % (estimators * reps);
            let (ei, rep) = (rest / reps, (rest % reps) as u32);
            let bench = &self.problems[pi];
            let estimator = &self.estimators[ei];
            let seed = replication_seed(self.master_seed, bench.name(), estimator.name(), rep);
            let outcome = estimator.estimate(&bench.fork(), &mut RngStream::from_seed(seed));
            let result = outcome.result;
            let covered = result.standard_error.is_finite()
                && (result.failure_probability - bench.exact_probability()).abs()
                    <= z * result.standard_error;
            Replication {
                seed,
                estimate: result.failure_probability,
                standard_error: result.standard_error,
                evaluations: result.evaluations,
                converged: result.converged,
                covered,
            }
        });

        let (band_lo, band_hi) = binomial_acceptance_band(
            self.replications as u64,
            self.confidence_level,
            self.band_alpha,
        );
        let mut rows = Vec::with_capacity(self.problems.len() * estimators);
        for (pi, bench) in self.problems.iter().enumerate() {
            for (ei, estimator) in self.estimators.iter().enumerate() {
                let start = (pi * estimators + ei) * reps;
                let cell = &flat[start..start + reps];
                rows.push(self.reduce_cell(bench, estimator.name(), cell, band_lo, band_hi));
            }
        }
        CalibrationReport {
            master_seed: self.master_seed,
            confidence_level: self.confidence_level,
            band_alpha: self.band_alpha,
            replications: self.replications,
            rows,
        }
    }

    fn reduce_cell(
        &self,
        bench: &BenchmarkProblem,
        estimator: &str,
        cell: &[Replication],
        band_lo: u64,
        band_hi: u64,
    ) -> CalibrationRow {
        let n = cell.len() as f64;
        let truth = bench.exact_probability();
        let covered = cell.iter().filter(|r| r.covered).count() as u32;
        let mean_estimate = cell.iter().map(|r| r.estimate).sum::<f64>() / n;
        let mse = cell
            .iter()
            .map(|r| (r.estimate - truth) * (r.estimate - truth))
            .sum::<f64>()
            / n;
        let relative_rmse = mse.sqrt() / truth;
        let usable: Vec<f64> = cell
            .iter()
            .filter(|r| r.standard_error.is_finite() && r.estimate > 0.0)
            .map(|r| r.standard_error / r.estimate)
            .collect();
        let mean_reported_relative_error = if usable.is_empty() {
            f64::INFINITY
        } else {
            usable.iter().sum::<f64>() / usable.len() as f64
        };
        let mean_evaluations = cell.iter().map(|r| r.evaluations as f64).sum::<f64>() / n;
        let empirical_figure_of_merit =
            if relative_rmse.is_finite() && relative_rmse > 0.0 && mean_evaluations > 0.0 {
                1.0 / (relative_rmse * relative_rmse * mean_evaluations)
            } else {
                0.0
            };
        CalibrationRow {
            problem: bench.name().to_string(),
            estimator: estimator.to_string(),
            exact_probability: truth,
            replications: cell.len() as u32,
            covered,
            coverage: covered as f64 / n,
            band_lower: band_lo as f64 / n,
            band_upper: band_hi as f64 / n,
            within_band: (band_lo..=band_hi).contains(&(covered as u64)),
            mean_estimate,
            relative_bias: (mean_estimate - truth) / truth,
            relative_rmse,
            mean_reported_relative_error,
            converged_fraction: cell.iter().filter(|r| r.converged).count() as f64 / n,
            zero_estimates: cell.iter().filter(|r| r.estimate == 0.0).count() as u32, // gis-analyze: allow(float-eq, exact-zero sentinel counting estimators that saw no failures)
            mean_evaluations,
            empirical_figure_of_merit,
        }
    }
}

impl std::fmt::Debug for Calibrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calibrator")
            .field("master_seed", &self.master_seed)
            .field("replications", &self.replications)
            .field("confidence_level", &self.confidence_level)
            .field("band_alpha", &self.band_alpha)
            .field(
                "problems",
                &self.problems.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field(
                "estimators",
                &self.estimators.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{MonteCarlo, MonteCarloConfig};
    use crate::problems::BenchmarkProblem;

    fn small_calibrator() -> Calibrator {
        Calibrator::new()
            .master_seed(13)
            .replications(24)
            .convergence_policy(ConvergencePolicy::with_budget(3_000))
            .problem(BenchmarkProblem::linear(4, 2.0))
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
    }

    #[test]
    fn monte_carlo_coverage_is_close_to_nominal_at_low_sigma() {
        // β = 2, 3k samples → ~68 failures/rep: the binomial CI is in its
        // comfort zone, so coverage must land inside a generous band.
        let report = small_calibrator().run();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.replications, 24);
        assert!(row.coverage > 0.6, "coverage {}", row.coverage);
        assert!(row.relative_bias.abs() < 0.2);
        assert!(row.relative_rmse < 0.5);
        assert!(row.mean_evaluations > 0.0);
        assert!(row.empirical_figure_of_merit > 0.0);
        assert!(report.row("linear-4d-2.0s", "monte-carlo").is_some());
        assert!(report.row("linear-4d-2.0s", "nope").is_none());
    }

    #[test]
    fn report_is_bit_identical_at_any_matrix_thread_count() {
        let reference = small_calibrator().matrix(ExecutionConfig::serial()).run();
        for threads in [2, 8] {
            let parallel = small_calibrator()
                .matrix(ExecutionConfig::with_threads(threads))
                .run();
            assert_eq!(parallel, reference, "diverged at {threads} matrix threads");
        }
    }

    #[test]
    fn replication_seeds_are_order_independent_and_distinct() {
        let a = replication_seed(5, "p", "monte-carlo", 0);
        // Independent of anything registered elsewhere — pure function.
        assert_eq!(a, replication_seed(5, "p", "monte-carlo", 0));
        assert_ne!(a, replication_seed(5, "p", "monte-carlo", 1));
        assert_ne!(a, replication_seed(5, "q", "monte-carlo", 0));
        assert_ne!(a, replication_seed(5, "p", "gradient-is", 0));
        assert_ne!(a, replication_seed(6, "p", "monte-carlo", 0));
        // Replication 0 must differ from the YieldAnalysis cell seed so a
        // calibration never reuses the driver's stream.
        let analysis_seed = crate::YieldAnalysis::new()
            .master_seed(5)
            .derived_seed("p", "monte-carlo");
        assert_ne!(a, analysis_seed);
    }

    #[test]
    fn report_serializes_round_trip() {
        let report = small_calibrator().run();
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        let back: CalibrationReport = serde_json::from_str(&json).expect("round trips");
        assert_eq!(back, report);
    }

    #[test]
    fn report_with_non_finite_fields_round_trips() {
        // A cell where no replication ever observes a failure reports an
        // infinite mean relative error; the serializer's ±1e999 convention
        // (valid JSON number syntax) must carry it through the artifact.
        let mut calibrator = Calibrator::new()
            .master_seed(3)
            .replications(4)
            .convergence_policy(ConvergencePolicy::with_budget(300))
            .problem(BenchmarkProblem::linear(4, 4.5))
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())));
        let report = calibrator.run();
        assert!(report.rows[0].mean_reported_relative_error.is_infinite());
        assert_eq!(report.rows[0].zero_estimates, 4);
        let json = serde_json::to_string(&report).expect("serializes");
        assert!(json.contains("1e999"), "non-finite convention missing");
        let back: CalibrationReport = serde_json::from_str(&json).expect("round trips");
        assert_eq!(back, report);
    }

    #[test]
    fn band_margin_is_positive_inside_the_band() {
        let report = small_calibrator().run();
        let row = &report.rows[0];
        if row.within_band {
            assert!(row.band_margin() >= 0.0);
        } else {
            assert!(row.band_margin() < 0.0);
        }
        assert_eq!(report.all_within_band(), report.violations().is_empty());
        assert!(report.worst_band_margin() <= row.band_margin());
    }

    #[test]
    #[should_panic(expected = "no estimators registered")]
    fn empty_estimators_rejected() {
        let _ = Calibrator::new()
            .problem(BenchmarkProblem::linear(3, 2.0))
            .run();
    }

    #[test]
    #[should_panic(expected = "no problems registered")]
    fn empty_problems_rejected() {
        let _ = Calibrator::new()
            .estimator(Box::new(MonteCarlo::new(MonteCarloConfig::default())))
            .run();
    }
}
