//! Common result types reported by every failure-probability estimator.

use serde::{Deserialize, Serialize};

/// One point of a convergence trace: the running estimate after a given number
/// of simulator evaluations.
///
/// Equality compares the floats by bit pattern (see [`ExtractionResult`] for
/// why).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Cumulative number of metric evaluations when the snapshot was taken.
    pub evaluations: u64,
    /// Failure-probability estimate at that point.
    pub estimate: f64,
    /// Relative standard error (σ/μ) of the estimate at that point; `inf` when
    /// no failure has been observed yet.
    pub relative_error: f64,
}

impl PartialEq for ConvergencePoint {
    fn eq(&self, other: &Self) -> bool {
        self.evaluations == other.evaluations
            && self.estimate.to_bits() == other.estimate.to_bits()
            && self.relative_error.to_bits() == other.relative_error.to_bits()
    }
}

/// Figure of merit `1 / (ρ² · N)` where `ρ` is the relative standard error
/// after `N` evaluations — the standard efficiency measure used to compare
/// rare-event estimators independent of where they were stopped.
pub fn figure_of_merit(relative_error: f64, evaluations: u64) -> f64 {
    if relative_error <= 0.0 || !relative_error.is_finite() || evaluations == 0 {
        return 0.0;
    }
    1.0 / (relative_error * relative_error * evaluations as f64)
}

/// Result of a failure-probability extraction.
///
/// Equality compares every float by bit pattern, like
/// [`crate::analysis::ComparisonRow`]: "same statistical content, bit for
/// bit" must hold for results that legitimately contain non-finite values —
/// `sigma_level` is `NaN` when no failure was observed, early trace points
/// carry an `inf` relative error — and the IEEE rule `NaN ≠ NaN` would
/// otherwise make such a result compare unequal *to itself*, breaking
/// determinism and checkpoint-resume assertions for exactly the far-tail runs
/// they matter most for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtractionResult {
    /// Name of the method that produced the result (e.g. `"gradient-is"`).
    pub method: String,
    /// Estimated failure probability.
    pub failure_probability: f64,
    /// Standard error of the estimate.
    pub standard_error: f64,
    /// Equivalent sigma level `Φ⁻¹(1 − P_fail)`; `NaN` if the estimate is zero.
    pub sigma_level: f64,
    /// Total number of metric (simulator) evaluations consumed, including any
    /// search/presampling phase.
    pub evaluations: u64,
    /// Number of sampling-phase evaluations only (excludes MPFP search etc.).
    pub sampling_evaluations: u64,
    /// Number of observed failing samples.
    pub failures_observed: u64,
    /// Whether the configured accuracy target was reached before the evaluation
    /// budget ran out.
    pub converged: bool,
    /// Convergence trace (running estimate vs evaluations).
    pub trace: Vec<ConvergencePoint>,
}

impl PartialEq for ExtractionResult {
    fn eq(&self, other: &Self) -> bool {
        self.method == other.method
            && self.failure_probability.to_bits() == other.failure_probability.to_bits()
            && self.standard_error.to_bits() == other.standard_error.to_bits()
            && self.sigma_level.to_bits() == other.sigma_level.to_bits()
            && self.evaluations == other.evaluations
            && self.sampling_evaluations == other.sampling_evaluations
            && self.failures_observed == other.failures_observed
            && self.converged == other.converged
            && self.trace == other.trace
    }
}

impl ExtractionResult {
    /// Relative standard error σ/μ of the estimate (`inf` when the estimate is zero).
    pub fn relative_error(&self) -> f64 {
        if self.failure_probability > 0.0 {
            self.standard_error / self.failure_probability
        } else {
            f64::INFINITY
        }
    }

    /// 90% confidence interval half-width expressed relative to the estimate —
    /// the stopping quantity quoted in the evaluation tables ("±10% at 90%").
    pub fn relative_confidence_90(&self) -> f64 {
        1.6448536269514722 * self.relative_error()
    }

    /// Figure of merit `1/(ρ²·N)` of this extraction.
    pub fn figure_of_merit(&self) -> f64 {
        figure_of_merit(self.relative_error(), self.evaluations)
    }

    /// Speed-up over a reference result at equal accuracy, computed from the
    /// figures of merit (`FOM_self / FOM_reference`). Returns `inf` when the
    /// reference never observed a failure.
    pub fn speedup_over(&self, reference: &ExtractionResult) -> f64 {
        let fom_ref = reference.figure_of_merit();
        // gis-analyze: allow(float-eq, division guard: FOM is exactly 0.0 when no failure was observed)
        if fom_ref == 0.0 {
            f64::INFINITY
        } else {
            self.figure_of_merit() / fom_ref
        }
    }

    /// Builds the sigma level from a failure probability, handling edge cases.
    pub fn sigma_from_probability(p_fail: f64) -> f64 {
        if p_fail <= 0.0 || p_fail >= 1.0 {
            f64::NAN
        } else {
            gis_stats::normal::sigma_level(p_fail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(p: f64, se: f64, evals: u64) -> ExtractionResult {
        ExtractionResult {
            method: "test".to_string(),
            failure_probability: p,
            standard_error: se,
            sigma_level: ExtractionResult::sigma_from_probability(p),
            evaluations: evals,
            sampling_evaluations: evals,
            failures_observed: 10,
            converged: true,
            trace: vec![],
        }
    }

    #[test]
    fn relative_error_and_fom() {
        let r = result(1e-6, 1e-7, 1000);
        assert!((r.relative_error() - 0.1).abs() < 1e-12);
        assert!((r.figure_of_merit() - 1.0 / (0.01 * 1000.0)).abs() < 1e-9);
        assert!((r.relative_confidence_90() - 0.16448536269514722).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_edge_cases() {
        let r = result(0.0, 0.0, 1000);
        assert!(r.relative_error().is_infinite());
        assert_eq!(r.figure_of_merit(), 0.0);
        assert!(r.sigma_level.is_nan());
    }

    #[test]
    fn speedup_comparison() {
        // Same accuracy, 100x fewer evaluations → 100x speed-up.
        let fast = result(1e-6, 1e-7, 1_000);
        let slow = result(1e-6, 1e-7, 100_000);
        assert!((fast.speedup_over(&slow) - 100.0).abs() < 1e-9);
        // Speed-up over a method that found nothing is infinite.
        let nothing = result(0.0, 0.0, 100);
        assert!(fast.speedup_over(&nothing).is_infinite());
    }

    #[test]
    fn sigma_conversion() {
        let s = ExtractionResult::sigma_from_probability(
            gis_stats::normal::upper_tail_probability(4.5),
        );
        assert!((s - 4.5).abs() < 1e-3);
        assert!(ExtractionResult::sigma_from_probability(0.0).is_nan());
        assert!(ExtractionResult::sigma_from_probability(1.5).is_nan());
    }

    #[test]
    fn figure_of_merit_edge_cases() {
        assert_eq!(figure_of_merit(0.0, 100), 0.0);
        assert_eq!(figure_of_merit(f64::INFINITY, 100), 0.0);
        assert_eq!(figure_of_merit(0.1, 0), 0.0);
        assert!(figure_of_merit(0.1, 100) > 0.0);
    }
}
