//! Shared importance-sampling machinery: proposal distributions, the weighted
//! estimator/accumulator, and a generic fixed-proposal IS driver.
//!
//! The failure probability is written as an expectation under the nominal
//! standard-normal density `f` of the whitened variation space and re-expressed
//! under a proposal `q`:
//!
//! `P_fail = E_f[ 1_fail(z) ] = E_q[ 1_fail(z) · f(z)/q(z) ]`
//!
//! so the estimator is the sample mean of `w(z)·1_fail(z)` with
//! `w = exp(log f − log q)`. All concrete methods (gradient IS, minimum-norm
//! IS, scaled-sigma sampling) reduce to choosing `q` — they share the machinery
//! in this module.

use crate::exec::Executor;
use crate::model::FailureProblem;
use crate::result::{ConvergencePoint, ExtractionResult};
use gis_linalg::Vector;
use gis_stats::{GaussianMixture, MultivariateNormal, RngStream};
use serde::{Deserialize, Serialize};

/// A proposal distribution for importance sampling in whitened space.
#[derive(Debug, Clone)]
pub enum Proposal {
    /// A single multivariate normal.
    Gaussian(MultivariateNormal),
    /// A finite Gaussian mixture (e.g. defensive mixture with the nominal density).
    Mixture(GaussianMixture),
}

impl Proposal {
    /// Mean-shifted standard normal centred at `shift` — the classic
    /// minimum-norm / mean-shift proposal.
    pub fn shifted(shift: Vector) -> Self {
        Proposal::Gaussian(MultivariateNormal::shifted_standard(shift))
    }

    /// Isotropic Gaussian with standard deviation `scale` centred at the origin
    /// — the scaled-sigma-sampling proposal.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn scaled(dim: usize, scale: f64) -> Self {
        Proposal::Gaussian(MultivariateNormal::isotropic(Vector::zeros(dim), scale))
    }

    /// Defensive mixture: weight `1 − defensive_fraction` on the shifted
    /// proposal and `defensive_fraction` on the nominal standard normal. The
    /// nominal component bounds the importance weights by
    /// `1/defensive_fraction`, protecting the estimator when the shift is
    /// imperfect.
    ///
    /// # Panics
    ///
    /// Panics if `defensive_fraction` is not in `(0, 1)`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn defensive_mixture(shift: Vector, defensive_fraction: f64) -> Self {
        assert!(
            defensive_fraction > 0.0 && defensive_fraction < 1.0,
            "defensive fraction must be in (0, 1)"
        );
        let dim = shift.len();
        let shifted = MultivariateNormal::shifted_standard(shift);
        let nominal = MultivariateNormal::standard(dim);
        let mixture = GaussianMixture::new(
            vec![shifted, nominal],
            vec![1.0 - defensive_fraction, defensive_fraction],
        )
        .expect("two valid components with positive weights");
        Proposal::Mixture(mixture)
    }

    /// Three-component mixture used for steep or curved failure boundaries:
    /// the main component at `shift`, a "bridge" component at `bridge`
    /// (typically a fraction of the shift, covering the region between the
    /// nominal point and the MPFP), and the nominal density as a defensive
    /// component. `defensive_fraction` may be zero; the remaining weight is
    /// assigned to the main component.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1)` or sum to 1 or more, or if
    /// the two centres have different dimensions.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn bridged_mixture(
        shift: Vector,
        bridge: Vector,
        bridge_fraction: f64,
        defensive_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&bridge_fraction)
                && (0.0..1.0).contains(&defensive_fraction)
                && bridge_fraction + defensive_fraction < 1.0,
            "bridge and defensive fractions must be in [0, 1) and sum below 1"
        );
        assert_eq!(
            shift.len(),
            bridge.len(),
            "shift and bridge dimensions differ"
        );
        let dim = shift.len();
        let main_weight = 1.0 - bridge_fraction - defensive_fraction;
        let mut components = vec![
            MultivariateNormal::shifted_standard(shift),
            MultivariateNormal::shifted_standard(bridge),
        ];
        let mut weights = vec![main_weight, bridge_fraction];
        if defensive_fraction > 0.0 {
            components.push(MultivariateNormal::standard(dim));
            weights.push(defensive_fraction);
        }
        let mixture =
            GaussianMixture::new(components, weights).expect("valid components and weights");
        Proposal::Mixture(mixture)
    }

    /// Dimensionality of the proposal.
    pub fn dim(&self) -> usize {
        match self {
            Proposal::Gaussian(g) => g.dim(),
            Proposal::Mixture(m) => m.dim(),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut RngStream) -> Vector {
        match self {
            Proposal::Gaussian(g) => g.sample(rng),
            Proposal::Mixture(m) => m.sample(rng),
        }
    }

    /// Log-density of the proposal at `z`.
    #[allow(clippy::expect_used)] // invariants stated in the expect messages
    pub fn log_pdf(&self, z: &Vector) -> f64 {
        match self {
            Proposal::Gaussian(g) => g.log_pdf(z).expect("dimension fixed at construction"),
            Proposal::Mixture(m) => m.log_pdf(z).expect("dimension fixed at construction"),
        }
    }

    /// Importance weight `f(z)/q(z)` against the nominal standard normal `f`.
    pub fn importance_weight(&self, z: &Vector) -> f64 {
        let log_f: f64 = z.iter().map(|&zi| gis_stats::normal::log_pdf(zi)).sum();
        (log_f - self.log_pdf(z)).exp()
    }
}

/// Streaming accumulator of the unnormalized importance-sampling estimator.
///
/// Tracks everything needed for the estimate, its standard error, the effective
/// sample size and the weight diagnostics — without storing samples.
///
/// The variance is carried in the Welford form (running mean + sum of squared
/// deviations `M2`), not the textbook `E[x²] − mean²`: the latter cancels
/// catastrophically when the weighted indicators are concentrated (all weights
/// similar, as a well-shifted proposal produces) and forced silent clamping of
/// negative variances to zero — under-reporting the relative error exactly
/// when the stopping rule leaned on it. `M2` is non-negative by construction
/// (each Welford increment is a product of same-signed factors), which
/// [`IsAccumulator::standard_error`] asserts instead of masking. Merging two
/// accumulators combines the moments with Chan's parallel update, so chunked /
/// multi-threaded accumulation reproduces the sequential statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IsAccumulator {
    samples: u64,
    failures: u64,
    sum_weighted_indicator: f64,
    mean_weighted_indicator: f64,
    m2_weighted_indicator: f64,
    sum_weights_failing: f64,
    sum_weights_sq_failing: f64,
    max_weight_failing: f64,
}

impl IsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        IsAccumulator::default()
    }

    /// Records one sample with importance weight `weight` and failure indicator
    /// `failed`.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    /// gis-analyze: no_alloc
    pub fn push(&mut self, weight: f64, failed: bool) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "importance weight must be non-negative and finite, got {weight}"
        );
        self.samples += 1;
        // Welford update on x = w·1_fail (zero for passing samples: they still
        // shape the variance of the mean).
        let x = if failed { weight } else { 0.0 };
        let delta = x - self.mean_weighted_indicator;
        self.mean_weighted_indicator += delta / self.samples as f64;
        self.m2_weighted_indicator += delta * (x - self.mean_weighted_indicator);
        if failed {
            self.failures += 1;
            self.sum_weighted_indicator += weight; // gis-analyze: allow(naive-accum, asserted non-negative terms: no cancellation; Welford tracks variance)
            self.sum_weights_failing += weight; // gis-analyze: allow(naive-accum, asserted non-negative terms: no cancellation; Welford tracks variance)
            self.sum_weights_sq_failing += weight * weight; // gis-analyze: allow(naive-accum, asserted non-negative squared terms: no cancellation possible)
            self.max_weight_failing = self.max_weight_failing.max(weight);
        }
        debug_assert!(
            self.mean_weighted_indicator.is_finite() && self.m2_weighted_indicator.is_finite(),
            "IsAccumulator moments went non-finite after push (mean={}, m2={})",
            self.mean_weighted_indicator,
            self.m2_weighted_indicator
        );
    }

    /// Merges another accumulator (e.g. from a different batch or thread),
    /// combining the variance moments with Chan's parallel update so the
    /// merged statistics match sequential accumulation.
    /// gis-analyze: no_alloc
    pub fn merge(&mut self, other: &IsAccumulator) {
        if other.samples == 0 {
            return;
        }
        let n_a = self.samples as f64;
        let n_b = other.samples as f64;
        let n = n_a + n_b;
        let delta = other.mean_weighted_indicator - self.mean_weighted_indicator;
        self.m2_weighted_indicator += other.m2_weighted_indicator + delta * delta * (n_a * n_b / n);
        self.mean_weighted_indicator += delta * (n_b / n);
        self.samples += other.samples;
        self.failures += other.failures;
        self.sum_weighted_indicator += other.sum_weighted_indicator; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
        self.sum_weights_failing += other.sum_weights_failing; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
        self.sum_weights_sq_failing += other.sum_weights_sq_failing; // gis-analyze: allow(naive-accum, merge of non-negative partial sums in deterministic lane order)
        self.max_weight_failing = self.max_weight_failing.max(other.max_weight_failing);
        debug_assert!(
            self.mean_weighted_indicator.is_finite()
                && self.m2_weighted_indicator.is_finite()
                && self.sum_weighted_indicator.is_finite(),
            "IsAccumulator moments went non-finite after merge (mean={}, m2={}, sum={})",
            self.mean_weighted_indicator,
            self.m2_weighted_indicator,
            self.sum_weighted_indicator
        );
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of failing samples recorded.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Unbiased failure-probability estimate `Σ(w·1_fail)/N`.
    pub fn estimate(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_weighted_indicator / self.samples as f64
        }
    }

    /// Standard error of the estimate, from the merge-safe Welford moments.
    ///
    /// # Panics
    ///
    /// Panics if the internal sum of squared deviations has gone negative,
    /// which the Welford/Chan updates make impossible for valid inputs — a
    /// negative value indicates corruption and must not be silently clamped
    /// into an optimistic error bar.
    pub fn standard_error(&self) -> f64 {
        if self.samples < 2 {
            return f64::INFINITY;
        }
        assert!(
            self.m2_weighted_indicator >= 0.0,
            "negative sum of squared deviations ({}) in IsAccumulator",
            self.m2_weighted_indicator
        );
        let n = self.samples as f64;
        // Sample variance of x over n, i.e. the variance of the sample mean.
        (self.m2_weighted_indicator / (n - 1.0) / n).sqrt()
    }

    /// Relative standard error (σ/μ); `inf` until a failure has been observed.
    pub fn relative_error(&self) -> f64 {
        let est = self.estimate();
        if est <= 0.0 {
            f64::INFINITY
        } else {
            self.standard_error() / est
        }
    }

    /// Effective failure count for the corrected stopping rule: the Kish
    /// effective sample size of the failing weights, capped by the raw
    /// count. Equal weights give back the raw count (rounded to absorb
    /// accumulation round-off); weight degeneracy shrinks it, which both
    /// delays the optional stop and widens the first-passage inflation —
    /// with heavy weight tails the raw count overstates the information
    /// actually present in the error bar.
    pub fn effective_failures(&self) -> f64 {
        let ess = self.effective_sample_size();
        if !ess.is_finite() {
            return self.failures as f64;
        }
        ess.round().min(self.failures as f64)
    }

    /// Kish effective sample size of the failing-sample weights.
    pub fn effective_sample_size(&self) -> f64 {
        // gis-analyze: allow(float-eq, division guard: the sum of squares is exactly 0.0 only when empty)
        if self.sum_weights_sq_failing == 0.0 {
            0.0
        } else {
            self.sum_weights_failing * self.sum_weights_failing / self.sum_weights_sq_failing
        }
    }

    /// Largest importance weight observed on a failing sample (weight
    /// degeneracy diagnostic).
    pub fn max_weight(&self) -> f64 {
        self.max_weight_failing
    }
}

/// Configuration shared by the importance-sampling methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceSamplingConfig {
    /// Maximum number of sampling-phase evaluations.
    pub max_samples: u64,
    /// Samples per batch (between convergence checks / adaptation steps).
    pub batch_size: u64,
    /// Target relative standard error.
    pub target_relative_error: f64,
    /// Minimum number of failing samples before the stopping rule may fire.
    pub min_failures: u64,
    /// Use the first-passage-corrected stopping rule and error bar (see
    /// [`crate::stopping`]). `false` restores the legacy anti-conservative
    /// rule, kept for the calibration harness's before/after measurement.
    pub corrected_stopping: bool,
}

impl Default for ImportanceSamplingConfig {
    fn default() -> Self {
        ImportanceSamplingConfig {
            max_samples: 50_000,
            batch_size: 500,
            target_relative_error: 0.1,
            min_failures: 20,
            corrected_stopping: true,
        }
    }
}

impl ImportanceSamplingConfig {
    /// Validates the configuration, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_samples == 0 || self.batch_size == 0 {
            return Err("sample budget and batch size must be positive".to_string());
        }
        if !(self.target_relative_error > 0.0) {
            return Err("target relative error must be positive".to_string());
        }
        Ok(())
    }
}

/// Diagnostics of an importance-sampling run, reported alongside the estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsDiagnostics {
    /// Effective sample size of the failing-sample weights.
    pub effective_sample_size: f64,
    /// Largest importance weight among failing samples.
    pub max_weight: f64,
    /// Final shift vector (mean of the proposal's dominant component), if
    /// applicable to the method.
    pub shift: Option<Vec<f64>>,
    /// Norm of the final shift vector (the β distance), if applicable.
    pub shift_norm: Option<f64>,
    /// Whether the run saw evidence of a multimodal failure region that a
    /// single mean-shift proposal cannot cover honestly: the adaptive shift
    /// history oscillated between distant centers, or a warm-start neighbor's
    /// MPFP disagreed with the locally found one beyond
    /// [`shifts_disagree`]'s threshold. When set, the reported error bar
    /// covers only the mode the proposal found — treat the estimate as a
    /// lower bound, not a clean interval.
    pub multimodal_suspected: bool,
}

/// Whether two mean-shift centers are far enough apart to suggest they sit on
/// different failure modes: the distance between them exceeds one sigma *and*
/// a quarter of the larger center's norm (so far-tail centers tolerate
/// proportionally more drift before raising suspicion).
pub fn shifts_disagree(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() {
        return true;
    }
    let distance = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let scale = norm(a).max(norm(b));
    distance > 1.0 && distance > 0.25 * scale
}

/// Runs fixed-proposal importance sampling on `problem` and reports the result
/// under `method` name, charging `search_evaluations` extra evaluations (spent
/// earlier, e.g. on an MPFP search) to the total.
///
/// Each batch is generated sequentially from `rng` (fixed draw order),
/// evaluated on the worker threads of `exec`, and reduced in sample order, so
/// the result is bit-identical at every thread count.
#[allow(clippy::expect_used)] // invariants stated in the expect messages
pub fn run_importance_sampling(
    problem: &FailureProblem,
    proposal: &Proposal,
    config: &ImportanceSamplingConfig,
    rng: &mut RngStream,
    exec: &Executor,
    method: &str,
    search_evaluations: u64,
) -> (ExtractionResult, IsDiagnostics) {
    config
        .validate()
        .expect("invalid importance sampling configuration");
    assert_eq!(
        proposal.dim(),
        problem.dim(),
        "proposal dimension must match the problem"
    );

    let mut acc = IsAccumulator::new();
    let mut trace = Vec::new();
    let mut converged = false;
    let mut stop = crate::stopping::StopTracker::new();

    while acc.samples() < config.max_samples {
        let batch = config.batch_size.min(config.max_samples - acc.samples());
        let mut points = Vec::with_capacity(batch as usize);
        let mut weights = Vec::with_capacity(batch as usize);
        for _ in 0..batch {
            let z = proposal.sample(rng);
            weights.push(proposal.importance_weight(&z));
            points.push(z);
        }
        let failed = problem.is_failure_batch_on(exec, &points);
        for (weight, failed) in weights.into_iter().zip(failed) {
            acc.push(weight, failed);
        }
        trace.push(ConvergencePoint {
            evaluations: search_evaluations + acc.samples(),
            estimate: acc.estimate(),
            relative_error: acc.relative_error(),
        });
        // The corrected rule counts *effective* (weight-adjusted) failures:
        // with degenerate importance weights the raw count overstates how
        // much information the error bar rests on. The legacy rule keeps
        // the raw count so the before/after comparison measures exactly the
        // historical behavior.
        let stop_failures = if config.corrected_stopping {
            acc.effective_failures()
        } else {
            acc.failures() as f64
        };
        if stop.check(
            stop_failures,
            config.min_failures,
            acc.relative_error(),
            config.target_relative_error,
            config.corrected_stopping,
        ) {
            converged = true;
            break;
        }
    }

    let estimate = acc.estimate();
    let shift = match proposal {
        Proposal::Gaussian(g) => Some(g.mean().as_slice().to_vec()),
        Proposal::Mixture(m) => Some(m.components()[0].mean().as_slice().to_vec()),
    };
    let shift_norm = shift
        .as_ref()
        .map(|s| s.iter().map(|x| x * x).sum::<f64>().sqrt());

    let result = ExtractionResult {
        method: method.to_string(),
        failure_probability: estimate,
        standard_error: crate::stopping::reported_standard_error(
            acc.standard_error(),
            acc.effective_failures(),
            converged,
            config.corrected_stopping,
        ),
        sigma_level: ExtractionResult::sigma_from_probability(estimate),
        evaluations: search_evaluations + acc.samples(),
        sampling_evaluations: acc.samples(),
        failures_observed: acc.failures(),
        converged,
        trace,
    };
    let diagnostics = IsDiagnostics {
        effective_sample_size: acc.effective_sample_size(),
        max_weight: acc.max_weight(),
        shift,
        shift_norm,
        multimodal_suspected: false,
    };
    (result, diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FailureProblem, LinearLimitState};

    #[test]
    fn proposal_constructors_and_weights() {
        let shift = Vector::from_slice(&[3.0, 0.0]);
        let p = Proposal::shifted(shift.clone());
        assert_eq!(p.dim(), 2);
        // At the shift point the nominal density is much smaller than the
        // proposal density, so the weight is < 1.
        assert!(p.importance_weight(&shift) < 1.0);
        // At the origin the weight is > 1 (proposal rarely goes there).
        assert!(p.importance_weight(&Vector::zeros(2)) > 1.0);

        let scaled = Proposal::scaled(3, 2.0);
        assert_eq!(scaled.dim(), 3);
        // Scaled proposal is wider, so at the origin nominal/scaled > 1.
        assert!(scaled.importance_weight(&Vector::zeros(3)) > 1.0);

        let defensive = Proposal::defensive_mixture(Vector::from_slice(&[4.0]), 0.2);
        // Defensive mixture bounds weights by 1/0.2 = 5.
        for x in [-3.0, 0.0, 2.0, 4.0, 8.0] {
            let w = defensive.importance_weight(&Vector::from_slice(&[x]));
            assert!(w <= 5.0 + 1e-9, "weight {w} exceeds the defensive bound");
        }
    }

    #[test]
    #[should_panic(expected = "defensive fraction")]
    fn defensive_fraction_validated() {
        let _ = Proposal::defensive_mixture(Vector::zeros(2), 1.5);
    }

    #[test]
    fn accumulator_basics() {
        let mut acc = IsAccumulator::new();
        assert_eq!(acc.estimate(), 0.0);
        assert!(acc.standard_error().is_infinite());
        acc.push(0.5, true);
        acc.push(0.1, false);
        acc.push(0.3, true);
        acc.push(2.0, false);
        assert_eq!(acc.samples(), 4);
        assert_eq!(acc.failures(), 2);
        assert!((acc.estimate() - 0.2).abs() < 1e-12);
        assert!(acc.standard_error() > 0.0);
        assert!(acc.relative_error().is_finite());
        assert!(acc.effective_sample_size() > 1.0);
        assert_eq!(acc.max_weight(), 0.5);

        let mut other = IsAccumulator::new();
        other.push(1.0, true);
        acc.merge(&other);
        assert_eq!(acc.samples(), 5);
        assert_eq!(acc.failures(), 3);
        assert_eq!(acc.max_weight(), 1.0);
    }

    #[test]
    #[should_panic(expected = "importance weight must be non-negative")]
    fn accumulator_rejects_bad_weight() {
        IsAccumulator::new().push(f64::NAN, true);
    }

    /// Two-pass reference: exact mean, then exact sum of squared deviations —
    /// the ground truth any streaming variance must reproduce.
    fn two_pass_standard_error(samples: &[(f64, bool)]) -> f64 {
        let n = samples.len() as f64;
        let xs: Vec<f64> = samples
            .iter()
            .map(|&(w, failed)| if failed { w } else { 0.0 })
            .collect();
        let mean = xs.iter().sum::<f64>() / n;
        let m2 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        (m2 / (n - 1.0) / n).sqrt()
    }

    #[test]
    fn standard_error_matches_two_pass_reference_under_chunked_merging() {
        // Weights spanning ten orders of magnitude, accumulated three ways:
        // sequentially, merged in chunks, and merged in a different chunking.
        let mut rng = RngStream::from_seed(321);
        let samples: Vec<(f64, bool)> = (0..5_000)
            .map(|_| {
                let w = (10.0 * rng.uniform() - 5.0).exp();
                (w, rng.uniform() < 0.3)
            })
            .collect();
        let reference = two_pass_standard_error(&samples);

        let mut sequential = IsAccumulator::new();
        for &(w, failed) in &samples {
            sequential.push(w, failed);
        }
        for chunk_size in [1, 7, 128, 5_000] {
            let mut merged = IsAccumulator::new();
            for chunk in samples.chunks(chunk_size) {
                let mut acc = IsAccumulator::new();
                for &(w, failed) in chunk {
                    acc.push(w, failed);
                }
                merged.merge(&acc);
            }
            assert_eq!(merged.samples(), sequential.samples());
            assert_eq!(merged.failures(), sequential.failures());
            let rel = (merged.standard_error() - reference).abs() / reference;
            assert!(
                rel < 1e-10,
                "chunk {chunk_size}: merged SE {} vs reference {reference}, rel {rel:e}",
                merged.standard_error()
            );
        }
        let rel = (sequential.standard_error() - reference).abs() / reference;
        assert!(rel < 1e-10, "sequential SE off by {rel:e}");
    }

    #[test]
    fn concentrated_weights_keep_a_truthful_error_bar() {
        // All samples fail with nearly identical large weights — the regime a
        // well-centred proposal produces. The textbook E[x²] − mean² form
        // cancels to round-off garbage here (mean² ≈ 1e16, true variance
        // ≈ 1e-2) and the old clamp reported a standard error of exactly 0,
        // i.e. spurious instant convergence. The Welford form keeps ~15
        // digits.
        let mut rng = RngStream::from_seed(99);
        let samples: Vec<(f64, bool)> = (0..2_000)
            .map(|_| (1.0e8 * (1.0 + 1.0e-9 * (rng.uniform() - 0.5)), true))
            .collect();
        let reference = two_pass_standard_error(&samples);
        assert!(reference > 0.0);

        let mut acc = IsAccumulator::new();
        for &(w, failed) in &samples {
            acc.push(w, failed);
        }
        let se = acc.standard_error();
        assert!(se > 0.0, "standard error collapsed to zero");
        let rel = (se - reference).abs() / reference;
        assert!(rel < 1e-6, "SE {se} vs two-pass {reference}, rel {rel:e}");
        // And the relative error is honest instead of a free convergence pass.
        assert!(acc.relative_error() > 0.0);
    }

    #[test]
    fn shifted_is_recovers_exact_tail_probability() {
        // β = 4: brute force would need ~3e7 samples for 10% error; shifted IS
        // needs a few thousand.
        let ls = LinearLimitState::along_first_axis(4, 4.0);
        let exact = ls.exact_failure_probability();
        let mpfp = ls.exact_mpfp();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let proposal = Proposal::shifted(mpfp);
        let config = ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 20_000,
            batch_size: 1_000,
            target_relative_error: 0.05,
            min_failures: 50,
        };
        let mut rng = RngStream::from_seed(5);
        let (result, diag) = run_importance_sampling(
            &problem,
            &proposal,
            &config,
            &mut rng,
            &Executor::serial(),
            "mean-shift-is",
            0,
        );
        assert!(result.converged);
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.1, "IS estimate off by {rel}: {result:?}");
        assert!((result.sigma_level - 4.0).abs() < 0.05);
        assert!(diag.effective_sample_size > 10.0);
        assert!(diag.shift_norm.unwrap() > 3.9);
        assert!(result.sampling_evaluations < 25_000);
    }

    #[test]
    fn defensive_mixture_is_also_unbiased() {
        let ls = LinearLimitState::along_first_axis(3, 3.5);
        let exact = ls.exact_failure_probability();
        let mpfp = ls.exact_mpfp();
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let proposal = Proposal::defensive_mixture(mpfp, 0.1);
        let config = ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 40_000,
            batch_size: 2_000,
            target_relative_error: 0.05,
            min_failures: 50,
        };
        let mut rng = RngStream::from_seed(19);
        let (result, _) = run_importance_sampling(
            &problem,
            &proposal,
            &config,
            &mut rng,
            &Executor::new(4),
            "defensive-is",
            100,
        );
        let rel = (result.failure_probability - exact).abs() / exact;
        assert!(rel < 0.12, "defensive IS off by {rel}");
        // The search cost is charged on top of the sampling cost.
        assert_eq!(result.evaluations, result.sampling_evaluations + 100);
    }

    #[test]
    fn badly_shifted_proposal_does_not_converge_quickly() {
        // Shift pointing away from the failure region: weights of failing
        // samples are huge, ESS collapses, and the stopping rule refuses to
        // declare convergence within a small budget.
        let ls = LinearLimitState::along_first_axis(2, 4.0);
        let problem = FailureProblem::from_model(ls, LinearLimitState::spec());
        let proposal = Proposal::shifted(Vector::from_slice(&[-4.0, 0.0]));
        let config = ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 5_000,
            batch_size: 1_000,
            target_relative_error: 0.1,
            min_failures: 10,
        };
        let mut rng = RngStream::from_seed(23);
        let (result, _) = run_importance_sampling(
            &problem,
            &proposal,
            &config,
            &mut rng,
            &Executor::serial(),
            "bad-is",
            0,
        );
        assert!(!result.converged);
    }

    #[test]
    fn importance_sampling_is_bit_identical_across_thread_counts() {
        let ls = LinearLimitState::along_first_axis(5, 4.0);
        let problem = FailureProblem::from_model(ls.clone(), LinearLimitState::spec());
        let proposal = Proposal::defensive_mixture(ls.exact_mpfp(), 0.1);
        let config = ImportanceSamplingConfig {
            corrected_stopping: true,
            max_samples: 10_000,
            batch_size: 500,
            target_relative_error: 0.05,
            min_failures: 30,
        };
        let run = |threads: usize| {
            run_importance_sampling(
                &problem.fork(),
                &proposal,
                &config,
                &mut RngStream::from_seed(11),
                &Executor::new(threads).with_chunk_size(13),
                "is",
                7,
            )
        };
        let (reference, reference_diag) = run(1);
        for threads in [2, 8] {
            let (result, diag) = run(threads);
            assert_eq!(result, reference, "diverged at {threads} threads");
            assert_eq!(diag, reference_diag);
        }
    }
}
