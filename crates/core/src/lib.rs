//! Gradient importance sampling and baseline estimators for high-sigma SRAM
//! statistical extraction.
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! estimates the probability that an SRAM dynamic characteristic (read access
//! time, write delay, read-disturb margin) violates its specification, when
//! that probability lives far in the tail of the process-variation
//! distribution (4σ–6σ, i.e. 10⁻⁵…10⁻⁹).
//!
//! # Methods
//!
//! | Method | Type | Search phase | Module |
//! |---|---|---|---|
//! | Brute-force Monte Carlo | reference | none | [`montecarlo`] |
//! | **Gradient Importance Sampling** (the contribution) | mean-shift IS | finite-difference gradient HL–RF | [`gis`], [`mpfp`] |
//! | Minimum-norm IS | mean-shift IS | blind presampling + bisection | [`baselines::mnis`] |
//! | Spherical sampling | boundary integration | radial bisection per direction | [`baselines::spherical`] |
//! | Scaled-sigma sampling | extrapolation | none | [`baselines::sss`] |
//!
//! All methods consume a [`FailureProblem`]: a [`PerformanceModel`] (the map
//! from whitened variation space to the metric) plus a [`Spec`]. Models backed
//! by the transient SRAM testbench and by the analytical surrogate are provided
//! in [`sram_models`]; analytic limit states with exactly known probabilities
//! (used for validation everywhere) are in [`model`].
//!
//! # Batched, multi-threaded evaluation
//!
//! Every estimator structures its hot loop as *generate-batch →
//! evaluate-batch → reduce*: metric evaluations fan out over the worker
//! threads of an [`exec::Executor`] while generation and reduction stay
//! sequential, so estimates and evaluation counts are **bit-identical at any
//! thread count** (see [`exec`] for the contract). Parallelism is configured
//! once — via the `GIS_THREADS` environment variable, a method's
//! `with_execution`, or [`YieldAnalysis::execution`] — and models with
//! expensive per-point setup (the transient testbench) override
//! [`PerformanceModel::evaluate_batch`] to hoist it out of the loop.
//!
//! # The unified `Estimator` API
//!
//! Every method implements the object-safe [`Estimator`] trait and returns an
//! [`EstimatorOutcome`]: the shared [`ExtractionResult`] plus a typed
//! [`Diagnostics`] payload with the method's extras (MPFP trace, search
//! outcome, scale points). Comparisons across methods go through the
//! [`YieldAnalysis`] driver, which handles problem registration, per-method
//! deterministic seeding from a master seed, uniform budgets via
//! [`ConvergencePolicy`], and serde-serializable reports.
//!
//! # Sweep orchestration
//!
//! Production sign-off runs the matrix at scale: many operating scenarios ×
//! many estimators. The [`sweep`] module adds a matrix scheduler that
//! dispatches independent (problem, estimator) cells onto worker threads
//! ([`YieldAnalysis::run_on`] / [`SweepRunner`]) with reports bit-identical
//! to the sequential path, durable JSON-lines checkpointing so a killed
//! sweep resumes without re-simulating ([`SweepRunner::checkpoint`],
//! [`SweepStatus`]), and a scenario library spanning supply-voltage /
//! temperature / process-corner / Pelgrom-mismatch grids with array-capacity
//! sigma targets ([`SweepPlan`], [`CapacityTarget`]).
//!
//! # Validation: benchmark problems & statistical calibration
//!
//! The claims above are statistical, so the crate carries its own yardstick:
//! [`problems`] generates analytic benchmark problems with *exactly* known
//! failure probabilities (tilted hyperplanes at arbitrary sigma, disjoint
//! multi-region and union geometries, Cholesky-correlated specifications,
//! curved boundaries, a 6→576 dimensionality ladder), and [`calibration`]
//! runs N independent replications of any [`Estimator`] on them and reduces
//! the replications to empirical confidence-interval coverage (tested
//! against binomial acceptance bands), relative bias, RMSE and sample
//! efficiency. Every numerics or estimator change is judged against this
//! harness (`bench_calibration` in `gis-bench`).
//!
//! # Quick example: one method
//!
//! ```
//! use gis_core::{
//!     Estimator, FailureProblem, GisConfig, GradientImportanceSampling, LinearLimitState,
//! };
//! use gis_stats::RngStream;
//!
//! // A 4.5-sigma failure plane in 6 dimensions: P_fail ≈ 3.4e-6.
//! let limit_state = LinearLimitState::along_first_axis(6, 4.5);
//! let exact = limit_state.exact_failure_probability();
//! let problem = FailureProblem::from_model(limit_state, LinearLimitState::spec());
//!
//! let gis = GradientImportanceSampling::new(GisConfig::default());
//! let mut rng = RngStream::from_seed(7);
//! let outcome = gis.estimate(&problem, &mut rng);
//!
//! let relative_error = (outcome.result.failure_probability - exact).abs() / exact;
//! assert!(relative_error < 0.2);
//! assert!(outcome.result.evaluations < 100_000); // brute force would need ~3e7
//! assert!(outcome.mpfp().unwrap().beta > 4.0); // the gradient search found the MPFP
//! ```
//!
//! # Quick example: comparing all five methods
//!
//! ```
//! use gis_core::{
//!     standard_estimators, ConvergencePolicy, FailureProblem, LinearLimitState, YieldAnalysis,
//! };
//!
//! let report = YieldAnalysis::new()
//!     .master_seed(20180319)
//!     .convergence_policy(ConvergencePolicy::with_budget(20_000))
//!     .problem(
//!         "linear-4-sigma",
//!         FailureProblem::from_model(
//!             LinearLimitState::along_first_axis(6, 4.0),
//!             LinearLimitState::spec(),
//!         ),
//!     )
//!     .estimators(standard_estimators())
//!     .run();
//!
//! for method in &report.problems[0].methods {
//!     println!(
//!         "{:<22} P_fail = {:.3e} after {} simulations",
//!         method.estimator, method.row.failure_probability, method.row.evaluations
//!     );
//! }
//! # assert_eq!(report.problems[0].methods.len(), 5);
//! ```

// The workspace has zero unsafe code; lock that in per crate. (A crate
// attribute rather than a workspace lint so the counting-allocator
// integration test, which needs an unsafe GlobalAlloc impl, stays possible.)
#![forbid(unsafe_code)]
// Library code must justify every panic site (clippy::unwrap_used/expect_used
// are warn in [workspace.lints.clippy]); tests are free to unwrap.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod analysis;
pub mod array_yield;
pub mod baselines;
pub mod calibration;
pub mod estimator;
pub mod exec;
pub mod fault;
pub mod gis;
pub mod importance;
pub mod model;
pub mod montecarlo;
pub mod mpfp;
pub mod problems;
pub mod result;
pub mod special;
pub mod sram_models;
pub mod stopping;
pub mod sweep;

pub use analysis::{
    standard_estimators, AnalysisReport, ComparisonRow, MethodReport, ProblemReport, YieldAnalysis,
};
pub use array_yield::ArrayYield;
pub use baselines::{
    MinimumNormIs, MnisConfig, MnisSearchOutcome, ScalePoint, ScaledSigmaSampling,
    SphericalSampling, SphericalSamplingConfig, SssConfig,
};
pub use calibration::{CalibrationReport, CalibrationRow, Calibrator, Replication};
pub use estimator::{ConvergencePolicy, Diagnostics, Estimator, EstimatorOutcome, WarmStart};
pub use exec::{ExecutionConfig, Executor};
pub use fault::{
    crc32, run_contained, CellFailure, CellFailureReason, CellOutcome, FaultPlan,
    DEFAULT_CELL_ATTEMPTS, FAULTS_ENV_VAR,
};
pub use gis::{GisConfig, GradientImportanceSampling};
pub use gis_sram::TransientKernel;
pub use importance::{
    run_importance_sampling, ImportanceSamplingConfig, IsAccumulator, IsDiagnostics, Proposal,
};
pub use model::{
    FailureProblem, FnModel, LinearLimitState, PerformanceModel, QuadraticLimitState, Spec,
};
pub use montecarlo::{required_samples, MonteCarlo, MonteCarloConfig};
pub use mpfp::{GradientMpfpSearch, MpfpConfig, MpfpResult};
pub use problems::{BenchmarkProblem, GroundTruth};
pub use result::{figure_of_merit, ConvergencePoint, ExtractionResult};
pub use sram_models::{
    default_sram_variation_space, SramMetric, SramSurrogateModel, SramTransientModel,
};
pub use sweep::{
    CapacityMargin, CapacityTarget, Scenario, SweepCellRecord, SweepCellUpdate, SweepLogEntry,
    SweepOutcome, SweepPlan, SweepRunner, SweepStatus, SweepSummaryRow, SWEEP_LOG_KIND_CELL,
    SWEEP_LOG_KIND_JOB, SWEEP_LOG_VERSION,
};
